"""Linear-sweep disassembly helpers for VM64 code.

Used by the static analyzer (basic-block discovery), the tracer (block
sizing), and debugging tools.  Decoding is tolerant at the API level:
:func:`disassemble_range` stops at the first undecodable byte and
reports how far it got, which is what a disassembler sees when it walks
into data or wiped code.
"""

from __future__ import annotations

from dataclasses import dataclass

from .encoding import DecodeError, decode
from .instructions import (
    BLOCK_TERMINATORS,
    CONDITIONAL_BRANCHES,
    DIRECT_BRANCHES,
    Instruction,
)


@dataclass(frozen=True)
class DecodedInstruction:
    """An instruction plus the address it was decoded at."""

    address: int
    instruction: Instruction

    @property
    def length(self) -> int:
        return self.instruction.length

    @property
    def end(self) -> int:
        return self.address + self.instruction.length

    @property
    def mnemonic(self) -> str:
        return self.instruction.mnemonic

    def is_terminator(self) -> bool:
        return self.mnemonic in BLOCK_TERMINATORS

    def is_conditional(self) -> bool:
        return self.mnemonic in CONDITIONAL_BRANCHES

    def branch_target(self) -> int | None:
        """Absolute target of a direct branch/call, else ``None``."""
        if self.mnemonic in DIRECT_BRANCHES:
            return self.end + self.instruction.operands[-1]
        return None

    def lea_target(self) -> int | None:
        """Absolute address computed by ``lea``, else ``None``."""
        if self.mnemonic == "lea":
            return self.end + self.instruction.operands[1]
        return None

    def __str__(self) -> str:
        return f"{self.address:#010x}: {self.instruction}"


def disassemble_one(data: bytes, address: int, base: int = 0) -> DecodedInstruction:
    """Decode the instruction at virtual ``address``.

    ``data`` holds the bytes of the region starting at virtual ``base``.
    """
    instruction = decode(data, address - base)
    return DecodedInstruction(address, instruction)


def disassemble_range(
    data: bytes, start: int, end: int, base: int = 0
) -> tuple[list[DecodedInstruction], int]:
    """Linearly decode ``[start, end)``.

    Returns the decoded instructions and the address decoding stopped
    at (== ``end`` when everything decoded cleanly).
    """
    out: list[DecodedInstruction] = []
    address = start
    while address < end:
        try:
            decoded = disassemble_one(data, address, base)
        except DecodeError:
            break
        if decoded.end > end:
            break
        out.append(decoded)
        address = decoded.end
    return out, address


def format_listing(instructions: list[DecodedInstruction]) -> str:
    """Human-readable multi-line listing."""
    return "\n".join(str(ins) for ins in instructions)
