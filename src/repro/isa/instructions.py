"""VM64 instruction set definition.

VM64 is the guest ISA of this reproduction.  It is a 64-bit,
variable-length-encoded register machine designed to mirror the x86-64
properties DynaCut depends on:

* ``INT3`` is the single byte ``0xCC``, so "replace the first byte of a
  basic block with int3" is expressible byte-for-byte.
* Instructions have different lengths, so jumping into the middle of a
  basic block decodes different (possibly invalid) instructions — the
  property that makes wiping whole blocks (not just their first byte)
  meaningful against code-reuse attacks.
* PC-relative addressing (``LEA``) exists, so shared objects are
  position independent and an injected signal-handler library can run
  at any base address.

Sixteen general registers ``r0..r15``.  ``r15`` is the stack pointer
(``sp``), ``r14`` the frame pointer (``fp``), ``r11`` is reserved as the
PLT scratch register.  The calling convention passes arguments in
``r1..r6`` and returns in ``r0``; ``r7..r10`` are callee-saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


NUM_REGISTERS = 16

#: Conventional register aliases accepted by the assembler.
REGISTER_ALIASES = {
    "sp": 15,
    "fp": 14,
}


class Operand(Enum):
    """Kinds of instruction operand fields."""

    REG = "reg"        # one byte, register index 0..15
    IMM64 = "imm64"    # 64-bit little-endian immediate
    IMM32 = "imm32"    # 32-bit little-endian signed immediate
    REL32 = "rel32"    # 32-bit signed offset, relative to the end of the field

    @property
    def size(self) -> int:
        """Encoded width in bytes."""
        return _OPERAND_SIZES[self]


_OPERAND_SIZES = {
    Operand.REG: 1,
    Operand.IMM64: 8,
    Operand.IMM32: 4,
    Operand.REL32: 4,
}


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one VM64 instruction."""

    mnemonic: str
    opcode: int
    operands: tuple[Operand, ...]

    @property
    def length(self) -> int:
        """Total encoded length in bytes, including the opcode byte."""
        return 1 + sum(op.size for op in self.operands)


def _spec(mnemonic: str, opcode: int, *operands: Operand) -> InstructionSpec:
    return InstructionSpec(mnemonic, opcode, tuple(operands))


R, I64, I32, REL = Operand.REG, Operand.IMM64, Operand.IMM32, Operand.REL32

#: Every VM64 instruction, in opcode order.
INSTRUCTION_SPECS: tuple[InstructionSpec, ...] = (
    _spec("hlt", 0x00),
    _spec("movi", 0x01, R, I64),          # rd <- imm64
    _spec("mov", 0x02, R, R),             # rd <- rs
    _spec("ld8", 0x03, R, R, I32),        # rd <- zero-extended byte [rs+imm]
    _spec("ld64", 0x04, R, R, I32),       # rd <- qword [rs+imm]
    _spec("st8", 0x05, R, R, I32),        # byte [rd+imm] <- low byte of rs
    _spec("st64", 0x06, R, R, I32),       # qword [rd+imm] <- rs
    _spec("lea", 0x07, R, REL),           # rd <- address of next instr + rel
    _spec("add", 0x08, R, R),
    _spec("sub", 0x09, R, R),
    _spec("mul", 0x0A, R, R),
    _spec("div", 0x0B, R, R),             # signed; divide by zero raises #DE
    _spec("mod", 0x0C, R, R),
    _spec("and", 0x0D, R, R),
    _spec("or", 0x0E, R, R),
    _spec("xor", 0x0F, R, R),
    _spec("shl", 0x10, R, R),
    _spec("shr", 0x11, R, R),             # logical right shift
    _spec("addi", 0x12, R, I32),
    _spec("subi", 0x13, R, I32),
    _spec("muli", 0x14, R, I32),
    _spec("andi", 0x15, R, I32),
    _spec("ori", 0x16, R, I32),
    _spec("xori", 0x17, R, I32),
    _spec("shli", 0x18, R, I32),
    _spec("shri", 0x19, R, I32),
    _spec("neg", 0x1A, R),
    _spec("not", 0x1B, R),
    _spec("cmp", 0x20, R, R),             # set ZF/LT from signed rs1 - rs2
    _spec("cmpi", 0x21, R, I32),
    _spec("jmp", 0x30, REL),
    _spec("je", 0x31, REL),
    _spec("jne", 0x32, REL),
    _spec("jl", 0x33, REL),
    _spec("jle", 0x34, REL),
    _spec("jg", 0x35, REL),
    _spec("jge", 0x36, REL),
    _spec("jmpr", 0x37, R),               # indirect jump
    _spec("call", 0x40, REL),             # push return address, jump
    _spec("callr", 0x41, R),              # indirect call
    _spec("ret", 0x42),
    _spec("push", 0x50, R),
    _spec("pop", 0x51, R),
    _spec("syscall", 0x60),               # number in r0, args in r1..r6
    _spec("nop", 0x90),
    _spec("int3", 0xCC),                  # one-byte breakpoint, raises SIGTRAP
)

#: Lookup tables.
SPEC_BY_OPCODE: dict[int, InstructionSpec] = {s.opcode: s for s in INSTRUCTION_SPECS}
SPEC_BY_MNEMONIC: dict[str, InstructionSpec] = {s.mnemonic: s for s in INSTRUCTION_SPECS}

#: Opcode of the one-byte breakpoint instruction (mirrors x86 int3).
INT3_OPCODE = 0xCC

#: Mnemonics that end a basic block (any control transfer or halt).
BLOCK_TERMINATORS = frozenset(
    {"jmp", "je", "jne", "jl", "jle", "jg", "jge", "jmpr", "call", "callr",
     "ret", "hlt", "int3"}
)

#: Conditional branches: fall-through successor exists.
CONDITIONAL_BRANCHES = frozenset({"je", "jne", "jl", "jle", "jg", "jge"})

#: Direct branches carrying a REL32 target.
DIRECT_BRANCHES = frozenset({"jmp", "je", "jne", "jl", "jle", "jg", "jge", "call"})


@dataclass(frozen=True)
class Instruction:
    """A decoded VM64 instruction.

    ``operands`` holds the operand values in spec order: register
    indices for ``REG`` fields and Python ints for immediate fields
    (``IMM32``/``REL32`` are sign-extended, ``IMM64`` is unsigned).
    """

    spec: InstructionSpec
    operands: tuple[int, ...]

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def length(self) -> int:
        return self.spec.length

    def __str__(self) -> str:
        parts = []
        for kind, value in zip(self.spec.operands, self.operands):
            if kind is Operand.REG:
                parts.append(f"r{value}")
            else:
                parts.append(hex(value) if abs(value) > 9 else str(value))
        if parts:
            return f"{self.mnemonic} " + ", ".join(parts)
        return self.mnemonic
