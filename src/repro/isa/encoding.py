"""Binary encoding and decoding of VM64 instructions.

The encoding is deliberately simple and byte-exact:

* byte 0 is the opcode;
* operand fields follow in spec order, little-endian;
* ``IMM32``/``REL32`` fields are signed 32-bit, ``IMM64`` unsigned 64-bit.

Decoding is fail-fast: an unknown opcode or a truncated operand field
raises :class:`DecodeError`, which the CPU maps to ``SIGILL`` — exactly
what happens on x86 when control flow lands on wiped (garbage) bytes.
"""

from __future__ import annotations

import struct

from .instructions import (
    NUM_REGISTERS,
    SPEC_BY_OPCODE,
    Instruction,
    InstructionSpec,
    Operand,
)

_U64 = struct.Struct("<Q")
_I32 = struct.Struct("<i")

_MASK64 = (1 << 64) - 1


class DecodeError(ValueError):
    """Raised when bytes do not decode to a valid VM64 instruction."""


class EncodeError(ValueError):
    """Raised when operand values do not fit an instruction's fields."""


def encode(instruction: Instruction) -> bytes:
    """Encode a decoded instruction back to its byte representation."""
    return encode_fields(instruction.spec, instruction.operands)


def encode_fields(spec: InstructionSpec, operands: tuple[int, ...]) -> bytes:
    """Encode ``spec`` with the given operand values."""
    if len(operands) != len(spec.operands):
        raise EncodeError(
            f"{spec.mnemonic} expects {len(spec.operands)} operands, "
            f"got {len(operands)}"
        )
    out = bytearray([spec.opcode])
    for kind, value in zip(spec.operands, operands):
        if kind is Operand.REG:
            if not 0 <= value < NUM_REGISTERS:
                raise EncodeError(f"register r{value} out of range")
            out.append(value)
        elif kind is Operand.IMM64:
            out += _U64.pack(value & _MASK64)
        else:  # IMM32 / REL32
            if not -(1 << 31) <= value < (1 << 31):
                raise EncodeError(
                    f"{spec.mnemonic}: immediate {value:#x} does not fit 32 bits"
                )
            out += _I32.pack(value)
    return bytes(out)


def decode(data: bytes, offset: int = 0) -> Instruction:
    """Decode one instruction from ``data`` starting at ``offset``.

    Raises :class:`DecodeError` on an unknown opcode, an out-of-range
    register field, or if the buffer ends mid-instruction.
    """
    if offset >= len(data):
        raise DecodeError("empty instruction stream")
    opcode = data[offset]
    spec = SPEC_BY_OPCODE.get(opcode)
    if spec is None:
        raise DecodeError(f"unknown opcode {opcode:#04x} at offset {offset:#x}")
    if offset + spec.length > len(data):
        raise DecodeError(
            f"truncated {spec.mnemonic} at offset {offset:#x}: "
            f"need {spec.length} bytes, have {len(data) - offset}"
        )
    pos = offset + 1
    operands = []
    for kind in spec.operands:
        if kind is Operand.REG:
            reg = data[pos]
            if reg >= NUM_REGISTERS:
                raise DecodeError(
                    f"register index {reg} out of range in {spec.mnemonic} "
                    f"at offset {offset:#x}"
                )
            operands.append(reg)
            pos += 1
        elif kind is Operand.IMM64:
            operands.append(_U64.unpack_from(data, pos)[0])
            pos += 8
        else:
            operands.append(_I32.unpack_from(data, pos)[0])
            pos += 4
    return Instruction(spec, tuple(operands))


def instruction_length_at(data: bytes, offset: int = 0) -> int:
    """Return the encoded length of the instruction at ``offset``.

    Only the opcode byte is inspected; raises :class:`DecodeError` for
    unknown opcodes.
    """
    if offset >= len(data):
        raise DecodeError("empty instruction stream")
    spec = SPEC_BY_OPCODE.get(data[offset])
    if spec is None:
        raise DecodeError(f"unknown opcode {data[offset]:#04x}")
    return spec.length
