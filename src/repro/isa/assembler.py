"""Two-pass-free VM64 assembler.

Translates assembly text into a relocatable
:class:`~repro.binfmt.object.ObjectModule`.  Because every VM64
instruction has a statically known length, label offsets are final the
moment code is emitted, so the assembler runs in a single pass and
records a relocation for *every* symbolic reference (local ones
included); the static linker resolves them uniformly.

Syntax::

    ; comment (also "#")
    .section text            ; text | rodata | data | bss
    .global main
    .align 8
    main:
        movi r1, 64          ; decimal, 0x40, or 'A'
        movi r2, @buffer     ; 64-bit absolute address of a symbol
        lea  r3, message     ; pc-relative address of a symbol
        ld64 r4, [r2+8]      ; memory operands: [reg], [reg+imm], [reg-imm]
        st8  [r2], r4
        call strlen          ; pc-relative, PLT-routed if imported
        jne  main
        ret
    .section rodata
    message: .asciiz "hi\\n"
    .section bss
    buffer: .space 4096
"""

from __future__ import annotations

import re
import struct

from ..binfmt.object import ObjectModule, RelocType
from .instructions import (
    REGISTER_ALIASES,
    SPEC_BY_MNEMONIC,
    Operand,
)
from .encoding import encode_fields

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_SYMBOL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_MEM_RE = re.compile(r"^\[\s*(\w+)\s*(?:([+-])\s*(.+?)\s*)?\]$")

_VALID_SECTIONS = ("text", "rodata", "data", "bss")


class AssemblyError(ValueError):
    """Raised on malformed assembly input, with file/line context."""

    def __init__(self, message: str, line_no: int, line: str):
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


class Assembler:
    """Assemble VM64 source text into an :class:`ObjectModule`."""

    def __init__(self, module_name: str = "a.o"):
        self.module = ObjectModule(module_name)
        self._section = "text"
        self._globals: set[str] = set()
        self._line_no = 0
        self._line = ""

    # ------------------------------------------------------------------
    # public API

    def assemble(self, source: str) -> ObjectModule:
        """Assemble ``source`` and return the populated module."""
        for self._line_no, raw in enumerate(source.splitlines(), start=1):
            self._line = raw
            line = self._strip_comment(raw).strip()
            while line:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                self._define_label(match.group(1))
                line = line[match.end():].strip()
            if not line:
                continue
            if line.startswith("."):
                self._directive(line)
            else:
                self._instruction(line)
        self._apply_global_marks()
        return self.module

    # ------------------------------------------------------------------
    # helpers

    def _error(self, message: str) -> AssemblyError:
        return AssemblyError(message, self._line_no, self._line)

    @staticmethod
    def _strip_comment(line: str) -> str:
        out = []
        in_string = False
        escaped = False
        for ch in line:
            if in_string:
                out.append(ch)
                if escaped:
                    escaped = False
                elif ch == "\\":
                    escaped = True
                elif ch == '"':
                    in_string = False
                continue
            if ch in ";#":
                break
            out.append(ch)
            if ch == '"':
                in_string = True
        return "".join(out)

    def _offset(self) -> int:
        if self._section == "bss":
            return self.module.bss_size
        return self.module.section_size(self._section)

    def _define_label(self, name: str) -> None:
        # text labels are function entries unless they use the compiler's
        # local-label convention (leading "_L" or "."), which marks
        # branch targets inside a function
        is_function = self._section == "text" and not name.startswith(("_L", "."))
        try:
            self.module.define(
                name, self._section, self._offset(), is_global=False,
                is_function=is_function,
            )
        except ValueError as exc:
            raise self._error(str(exc)) from exc

    def _apply_global_marks(self) -> None:
        for name in self._globals:
            sym = self.module.symbols.get(name)
            if sym is not None:
                sym.is_global = True

    # ------------------------------------------------------------------
    # directives

    def _directive(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        handler = getattr(self, "_dir_" + name[1:], None)
        if handler is None:
            raise self._error(f"unknown directive {name!r}")
        handler(rest)

    def _dir_section(self, rest: str) -> None:
        section = rest.strip().lstrip(".")
        if section not in _VALID_SECTIONS:
            raise self._error(f"unknown section {section!r}")
        self._section = section

    def _dir_global(self, rest: str) -> None:
        for name in rest.replace(",", " ").split():
            self._globals.add(name)

    def _dir_marker(self, rest: str) -> None:
        """Define a non-function symbol at the current offset.

        Used for in-function landmarks such as DynaCut redirect targets:
        addressable by name, but not a function boundary.
        """
        name = rest.strip()
        if not _SYMBOL_RE.match(name):
            raise self._error(f"bad marker name {name!r}")
        try:
            self.module.define(
                name, self._section, self._offset(), is_global=False,
                is_function=False,
            )
        except ValueError as exc:
            raise self._error(str(exc)) from exc

    def _dir_align(self, rest: str) -> None:
        align = self._parse_int(rest.strip())
        if align <= 0 or align & (align - 1):
            raise self._error(f"alignment must be a power of two, got {align}")
        if self._section == "bss":
            self.module.reserve_bss(0, align=align)
            return
        buf = self.module.section(self._section)
        pad = (-len(buf)) % align
        filler = b"\x90" if self._section == "text" else b"\x00"
        buf += filler * pad

    def _dir_byte(self, rest: str) -> None:
        data = bytes(self._parse_int(tok) & 0xFF for tok in self._split_args(rest))
        self.module.append(self._section, data)

    def _dir_quad(self, rest: str) -> None:
        for tok in self._split_args(rest):
            if tok.startswith("@"):
                symbol, addend = self._parse_symref(tok[1:])
                offset = self.module.append(self._section, b"\x00" * 8)
                self.module.relocate(
                    self._section, offset, RelocType.ABS64, symbol, addend
                )
            else:
                value = self._parse_int(tok) & ((1 << 64) - 1)
                self.module.append(self._section, struct.pack("<Q", value))

    def _dir_ascii(self, rest: str) -> None:
        self.module.append(self._section, self._parse_string(rest))

    def _dir_asciiz(self, rest: str) -> None:
        self.module.append(self._section, self._parse_string(rest) + b"\x00")

    def _dir_space(self, rest: str) -> None:
        size = self._parse_int(rest.strip())
        if size < 0:
            raise self._error(f"negative .space size {size}")
        if self._section == "bss":
            self.module.reserve_bss(size, align=1)
        else:
            self.module.append(self._section, b"\x00" * size)

    # ------------------------------------------------------------------
    # instructions

    def _instruction(self, line: str) -> None:
        if self._section != "text":
            raise self._error(f"instruction outside text section ({self._section})")
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        spec = SPEC_BY_MNEMONIC.get(mnemonic)
        if spec is None:
            raise self._error(f"unknown mnemonic {mnemonic!r}")
        args = self._split_args(parts[1]) if len(parts) > 1 else []

        # Memory-form instructions are written with bracketed operands in
        # source order ([base+disp] first for stores), but encode as
        # (reg, reg, imm32); normalize here.
        if mnemonic in ("ld8", "ld64"):
            args = self._normalize_load(args)
        elif mnemonic in ("st8", "st64"):
            args = self._normalize_store(args)

        if len(args) != len(spec.operands):
            raise self._error(
                f"{mnemonic} expects {len(spec.operands)} operands, got {len(args)}"
            )

        operands: list[int] = []
        reloc: tuple[RelocType, str, int] | None = None
        reloc_field_offset = 0
        field_pos = 1  # byte position of the current field within the encoding
        for kind, arg in zip(spec.operands, args):
            if kind is Operand.REG:
                operands.append(self._parse_register(arg))
            elif kind is Operand.IMM64:
                if arg.startswith("@"):
                    symbol, addend = self._parse_symref(arg[1:])
                    reloc = (RelocType.ABS64, symbol, addend)
                    reloc_field_offset = field_pos
                    operands.append(0)
                else:
                    operands.append(self._parse_int(arg))
            elif kind is Operand.IMM32:
                operands.append(self._parse_int(arg))
            else:  # REL32: symbol or explicit numeric offset
                if _SYMBOL_RE.match(arg):
                    reloc = (RelocType.PCREL32, arg, 0)
                    reloc_field_offset = field_pos
                    operands.append(0)
                else:
                    operands.append(self._parse_int(arg))
            field_pos += kind.size

        try:
            data = encode_fields(spec, tuple(operands))
        except ValueError as exc:
            raise self._error(str(exc)) from exc
        offset = self.module.append("text", data)
        if reloc is not None:
            rtype, symbol, addend = reloc
            self.module.relocate(
                "text", offset + reloc_field_offset, rtype, symbol, addend
            )

    def _normalize_load(self, args: list[str]) -> list[str]:
        if len(args) != 2:
            raise self._error("load expects: rd, [base+disp]")
        base, disp = self._parse_mem(args[1])
        return [args[0], base, disp]

    def _normalize_store(self, args: list[str]) -> list[str]:
        if len(args) != 2:
            raise self._error("store expects: [base+disp], rs")
        base, disp = self._parse_mem(args[0])
        return [base, args[1], disp]

    def _parse_mem(self, text: str) -> tuple[str, str]:
        match = _MEM_RE.match(text.strip())
        if not match:
            raise self._error(f"bad memory operand {text!r}")
        base, sign, disp = match.groups()
        if disp is None:
            return base, "0"
        value = self._parse_int(disp)
        if sign == "-":
            value = -value
        return base, str(value)

    # ------------------------------------------------------------------
    # token parsing

    def _split_args(self, text: str) -> list[str]:
        args: list[str] = []
        depth = 0
        in_string = False
        escaped = False
        current = []
        for ch in text:
            if in_string:
                current.append(ch)
                if escaped:
                    escaped = False
                elif ch == "\\":
                    escaped = True
                elif ch == '"':
                    in_string = False
                continue
            if ch == '"':
                in_string = True
                current.append(ch)
            elif ch == "[":
                depth += 1
                current.append(ch)
            elif ch == "]":
                depth -= 1
                current.append(ch)
            elif ch == "," and depth == 0:
                args.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
        tail = "".join(current).strip()
        if tail:
            args.append(tail)
        return args

    def _parse_register(self, text: str) -> int:
        name = text.strip().lower()
        if name in REGISTER_ALIASES:
            return REGISTER_ALIASES[name]
        if name.startswith("r") and name[1:].isdigit():
            index = int(name[1:])
            if index < 16:
                return index
        raise self._error(f"bad register {text!r}")

    def _parse_int(self, text: str) -> int:
        text = text.strip()
        try:
            if len(text) >= 3 and text.startswith("'") and text.endswith("'"):
                body = text[1:-1].encode().decode("unicode_escape")
                if len(body) != 1:
                    raise ValueError
                return ord(body)
            return int(text, 0)
        except ValueError:
            raise self._error(f"bad integer {text!r}") from None

    def _parse_symref(self, text: str) -> tuple[str, int]:
        """Parse ``symbol``, ``symbol+N`` or ``symbol-N``."""
        match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*(?:([+-])\s*(\d+|0x[0-9a-fA-F]+))?$", text.strip())
        if not match:
            raise self._error(f"bad symbol reference {text!r}")
        name, sign, num = match.groups()
        addend = int(num, 0) if num else 0
        if sign == "-":
            addend = -addend
        return name, addend

    def _parse_string(self, text: str) -> bytes:
        text = text.strip()
        if len(text) < 2 or not text.startswith('"') or not text.endswith('"'):
            raise self._error(f"bad string literal {text!r}")
        return text[1:-1].encode().decode("unicode_escape").encode("latin-1")


def assemble(source: str, module_name: str = "a.o") -> ObjectModule:
    """Convenience wrapper: assemble ``source`` into a fresh module."""
    return Assembler(module_name).assemble(source)
