"""VM64 instruction set: definitions, encoding, assembler, disassembler."""

from .instructions import (
    BLOCK_TERMINATORS,
    CONDITIONAL_BRANCHES,
    DIRECT_BRANCHES,
    INSTRUCTION_SPECS,
    INT3_OPCODE,
    NUM_REGISTERS,
    SPEC_BY_MNEMONIC,
    SPEC_BY_OPCODE,
    Instruction,
    InstructionSpec,
    Operand,
)
from .encoding import DecodeError, EncodeError, decode, encode, encode_fields
from .assembler import Assembler, AssemblyError, assemble
from .disassembler import (
    DecodedInstruction,
    disassemble_one,
    disassemble_range,
    format_listing,
)

__all__ = [
    "BLOCK_TERMINATORS",
    "CONDITIONAL_BRANCHES",
    "DIRECT_BRANCHES",
    "INSTRUCTION_SPECS",
    "INT3_OPCODE",
    "NUM_REGISTERS",
    "SPEC_BY_MNEMONIC",
    "SPEC_BY_OPCODE",
    "Assembler",
    "AssemblyError",
    "DecodeError",
    "DecodedInstruction",
    "EncodeError",
    "Instruction",
    "InstructionSpec",
    "Operand",
    "assemble",
    "decode",
    "disassemble_one",
    "disassemble_range",
    "encode",
    "encode_fields",
    "format_listing",
]
