"""Interprocedural call graph over a SELF image.

Functions are recovered from the symbol table (each function extends to
the next function symbol, the standard extent heuristic `enclosing
function` queries already use) and call edges from decoding every
static CFG block: a direct ``call`` produces an edge to the function
containing its target — or to the PLT stub's import when the target is
a PLT entry — while ``callr`` records an indirect call site with no
static callee (sound-but-incomplete, as in real binary analysis).

The removal-set refiner uses the graph to report which functions a
removal set *fully owns* (every block and every call site inside the
removal set): those are the per-feature handlers whose pages can be
dropped wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..binfmt.linker import PLT_STUB_SIZE
from ..binfmt.self_format import SelfImage
from .cfg import ControlFlowGraph, build_cfg


@dataclass(frozen=True)
class FunctionNode:
    """A recovered function: [start, end) within the image."""

    name: str
    start: int
    end: int

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end


@dataclass(frozen=True)
class CallSite:
    """One call instruction inside ``caller``."""

    caller: str
    address: int
    target: int | None       # None for indirect calls
    callee: str | None       # resolved function or PLT import name
    kind: str                # "direct" | "plt" | "indirect"


@dataclass
class CallGraph:
    """Functions plus caller→callee edges of one image."""

    image_name: str
    functions: dict[str, FunctionNode] = field(default_factory=dict)
    sites: list[CallSite] = field(default_factory=list)
    edges: dict[str, set[str]] = field(default_factory=dict)
    rev_edges: dict[str, set[str]] = field(default_factory=dict)

    def function_of(self, address: int) -> str | None:
        """Name of the function whose extent contains ``address``."""
        for node in self.functions.values():
            if node.contains(address):
                return node.name
        return None

    def callees(self, name: str) -> set[str]:
        return set(self.edges.get(name, ()))

    def callers(self, name: str) -> set[str]:
        return set(self.rev_edges.get(name, ()))

    def reachable_from(self, roots: set[str]) -> set[str]:
        """Functions transitively callable from ``roots``."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.functions or r in self.edges]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.edges.get(name, set()) - seen)
        return seen

    def call_sites_into(self, name: str) -> list[CallSite]:
        return [site for site in self.sites if site.callee == name]


def build_callgraph(
    image: SelfImage,
    cfg: ControlFlowGraph | None = None,
    resolved_indirect: dict[int, tuple[int, ...]] | None = None,
) -> CallGraph:
    """Recover the call graph of ``image`` (reusing ``cfg`` if given).

    ``resolved_indirect`` maps ``callr`` instruction addresses to the
    in-module targets the value-set analysis proved for them (see
    :meth:`repro.analysis.dataflow.FlowReport.resolved_targets`); those
    sites become ``"indirect-resolved"`` edges instead of opaque
    indirect sites.
    """
    if cfg is None:
        cfg = build_cfg(image)
    resolved_indirect = resolved_indirect or {}
    graph = CallGraph(image.name)

    functions = sorted(
        (sym.vaddr, name) for name, sym in image.functions().items()
    )
    text_end = max((b.end for b in cfg.blocks), default=0)
    for (start, name), nxt in zip(
        functions, functions[1:] + [(text_end, "")]
    ):
        graph.functions[name] = FunctionNode(name, start, max(nxt[0], start))

    plt_by_addr = {stub: name for name, stub in image.plt_entries.items()}

    builder = _BlockDecoder(image)
    for block in cfg.blocks:
        caller = graph.function_of(block.start)
        if caller is None:
            caller = plt_by_addr.get(block.start, "")
        for decoded in builder.decode_block(block.start, block.end):
            if decoded.mnemonic == "call":
                target = decoded.branch_target()
                if target is None:
                    continue
                stub = _plt_stub_of(plt_by_addr, target)
                if stub is not None:
                    site = CallSite(caller, decoded.address, target, stub, "plt")
                else:
                    callee = graph.function_of(target)
                    site = CallSite(
                        caller, decoded.address, target, callee, "direct"
                    )
            elif decoded.mnemonic == "callr":
                targets = resolved_indirect.get(decoded.address)
                if targets:
                    for target in targets:
                        callee = graph.function_of(target)
                        graph.sites.append(
                            CallSite(
                                caller, decoded.address, target, callee,
                                "indirect-resolved",
                            )
                        )
                        if callee is not None and caller:
                            graph.edges.setdefault(caller, set()).add(callee)
                            graph.rev_edges.setdefault(callee, set()).add(caller)
                    continue
                site = CallSite(caller, decoded.address, None, None, "indirect")
            else:
                continue
            graph.sites.append(site)
            if site.callee is not None and caller:
                graph.edges.setdefault(caller, set()).add(site.callee)
                graph.rev_edges.setdefault(site.callee, set()).add(caller)
    return graph


def _plt_stub_of(plt_by_addr: dict[int, str], target: int) -> str | None:
    for stub, name in plt_by_addr.items():
        if stub <= target < stub + PLT_STUB_SIZE:
            return name
    return None


class _BlockDecoder:
    """Linear decoder over the text/plt regions of one image."""

    def __init__(self, image: SelfImage):
        self._regions: list[tuple[int, int, bytes]] = []
        for seg in image.segments:
            if seg.name in ("text", "plt") and seg.data:
                self._regions.append(
                    (seg.vaddr, seg.vaddr + len(seg.data), seg.data)
                )

    def decode_block(self, start: int, end: int) -> list:
        from ..isa.disassembler import disassemble_range

        for base, region_end, data in self._regions:
            if base <= start < region_end:
                out, __ = disassemble_range(
                    data, start, min(end, region_end), base=base
                )
                return out
        return []


def owned_functions(
    graph: CallGraph, removed_starts: set[int], removed_bytes: set[int]
) -> set[str]:
    """Functions a removal set fully owns.

    A function is owned when its entry lies in the removal set and
    every static call site targeting it sits inside removed bytes —
    wanted traffic has no path into it, so its pages are droppable.
    """
    owned: set[str] = set()
    for name, node in graph.functions.items():
        if node.start not in removed_starts:
            continue
        sites = graph.call_sites_into(name)
        if all(site.address in removed_bytes for site in sites):
            owned.add(name)
    return owned
