"""DynaLint image lint: static checks over rewritten CRIU images.

The rewriter mutates checkpoint images between dump and restore; a bug
in that pipeline (or a corrupted image on disk) surfaces only after
restore, as a crash in the customized process.  The lint decodes the
rewritten image against the pristine binaries registered with the
kernel and flags structural damage *before* restore.

Diagnostic codes (stable, used by tests and the CLI):

========  ============================================================
``DL101``  an ``int3`` patch run starts mid-instruction (not on a
           decoded instruction boundary of a recovered block)
``DL102``  a kept instruction decodes into wiped bytes: its first byte
           is intact but later bytes were overwritten
``DL103``  executable bytes differ from the pristine binary and are
           not ``int3`` (and not a load-time relocation site)
``DL201``  an injected (``dynacut:*``) VMA overlaps another VMA
``DL202``  an injected VMA's permissions do not match the handler
           library's segment
``DL203``  an injected VMA is not fully backed by dumped pages
``DL301``  a GOT/relocation word of the injected library does not
           resolve into a mapped VMA
``DL401``  the SIGTRAP sigaction handler does not point at mapped
           executable bytes
``DL402``  the SIGTRAP restorer does not point at mapped executable
           bytes
``DL501``  the guest contains a definite self-modifying store: a store
           whose value-set provably intersects executable bytes
``DL502``  a store derived from a code pointer is unbounded and *may*
           alias executable bytes (warning severity — unprovable)
``DL503``  a definite self-modifying store rewrites a live decoded CFG
           block (icache-coherence hazard for cached superblocks)
========  ============================================================

The DL50x rules come from the DynaFlow value-set analysis
(:mod:`repro.analysis.dataflow`); they lint the *guest's own* code, not
the rewrite, because a self-modifying guest silently invalidates every
static proof the customization pipeline makes about its text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..binfmt.self_format import DynRelocType, SelfImage
from ..isa.disassembler import disassemble_range
from ..isa.instructions import INT3_OPCODE
from ..kernel.kernel import Kernel
from ..kernel.signals import Signal
from ..criu.images import CheckpointImage, ImageError, ProcessImage, VmaEntry
from .cfg import ControlFlowGraph, cached_cfg

INJECT_TAG_PREFIX = "dynacut:"


@dataclass(frozen=True)
class LintDiagnostic:
    """One lint finding, attributed to a process and an address."""

    code: str
    pid: int
    address: int
    message: str
    severity: str = "error"     # "error" | "warning"

    def __str__(self) -> str:
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        return (
            f"{self.code}{tag} pid={self.pid} @{self.address:#x}: "
            f"{self.message}"
        )


@dataclass
class LintReport:
    """All findings over one checkpoint image."""

    diagnostics: list[LintDiagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Clean of *errors* — warning-severity findings don't fail."""
        return not self.errors

    @property
    def errors(self) -> list[LintDiagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[LintDiagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def codes(self) -> set[str]:
        return {diag.code for diag in self.diagnostics}

    def by_code(self, code: str) -> list[LintDiagnostic]:
        return [diag for diag in self.diagnostics if diag.code == code]

    def summary(self) -> str:
        if not self.diagnostics:
            return "dynalint: image clean"
        lines = [f"dynalint: {len(self.diagnostics)} finding(s)"]
        lines += [f"  {diag}" for diag in self.diagnostics]
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """Deterministic JSON-ready form (stable diagnostic order)."""
        return {
            "ok": self.ok,
            "counts": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
            },
            "diagnostics": [
                {
                    "code": d.code,
                    "severity": d.severity,
                    "pid": d.pid,
                    "address": d.address,
                    "message": d.message,
                }
                for d in sorted(
                    self.diagnostics,
                    key=lambda d: (d.pid, d.code, d.address, d.message),
                )
            ],
        }


class ImageLinter:
    """Lints one checkpoint against the kernel's registered binaries."""

    def __init__(self, kernel: Kernel, checkpoint: CheckpointImage):
        self.kernel = kernel
        self.checkpoint = checkpoint
        self.report = LintReport()
        self._cfgs: dict[str, ControlFlowGraph] = {}

    # ------------------------------------------------------------------

    def run(self) -> LintReport:
        for image in self.checkpoint.processes:
            self._lint_code_patches(image)
            self._lint_injected_vmas(image)
            self._lint_handler_got(image)
            self._lint_sigtrap(image)
            self._lint_store_hazards(image)
        self.report.diagnostics.sort(
            key=lambda d: (d.pid, d.code, d.address, d.message)
        )
        return self.report

    def _emit(
        self, code: str, pid: int, address: int, message: str,
        severity: str = "error",
    ) -> None:
        self.report.diagnostics.append(
            LintDiagnostic(code, pid, address, message, severity)
        )

    def _cfg(self, module: str, binary: SelfImage) -> ControlFlowGraph:
        if module not in self._cfgs:
            self._cfgs[module] = cached_cfg(binary)
        return self._cfgs[module]

    # ------------------------------------------------------------------
    # DL1xx: code-patch checks

    def _module_bases(self, image: ProcessImage) -> dict[str, int]:
        bases: dict[str, int] = {}
        for vma in image.mm.vmas:
            module = vma.file_path
            if not module or module not in self.kernel.binaries:
                continue
            candidate = vma.start - vma.file_offset
            if module not in bases or candidate < bases[module]:
                bases[module] = candidate
        return bases

    def _lint_code_patches(self, image: ProcessImage) -> None:
        for module, base in self._module_bases(image).items():
            binary = self.kernel.binaries[module]
            for seg in binary.segments:
                if seg.name not in ("text", "plt") or not seg.data:
                    continue
                self._lint_segment(image, module, binary, base, seg)

    def _lint_segment(
        self, image: ProcessImage, module: str, binary: SelfImage,
        base: int, seg,
    ) -> None:
        pristine = seg.data
        current = self._read_dumped(image, base + seg.vaddr, len(pristine))
        # link-base-relative offsets of modified bytes, split by kind
        patched: set[int] = set()
        foreign: set[int] = set()
        # bytes that are int3 both before and after the rewrite: a wipe
        # over a pristine 0xCC (e.g. inside a movi immediate) leaves no
        # diff there, and must not split the patch run in two
        cc_same: set[int] = set()
        for index, byte in enumerate(current):
            if byte is None:
                continue
            offset = seg.vaddr + index
            if byte == pristine[index]:
                if byte == INT3_OPCODE:
                    cc_same.add(offset)
                continue
            if byte == INT3_OPCODE:
                patched.add(offset)
            else:
                foreign.add(offset)

        reloc_bytes = self._reloc_bytes(binary, seg)
        for offset in sorted(foreign - reloc_bytes):
            if offset - 1 in foreign - reloc_bytes:
                continue        # one diagnostic per run
            self._emit(
                "DL103", image.pid, base + offset,
                f"{module}: executable bytes differ from the pristine "
                "binary and are not int3",
            )
        if not patched:
            return

        cfg = self._cfg(module, binary)
        starts, extents = self._instruction_map(cfg, binary, seg)
        run_member = patched | cc_same
        for offset in sorted(patched):
            if offset - 1 in run_member:
                continue        # check the start of each patch run
            if offset not in starts:
                self._emit(
                    "DL101", image.pid, base + offset,
                    f"{module}: int3 patch does not start on an "
                    "instruction boundary",
                )
        for start, end in extents:
            if start in patched:
                continue        # entry byte trapped: the block is guarded
            tail = [o for o in range(start + 1, end) if o in patched]
            if tail:
                self._emit(
                    "DL102", image.pid, base + start,
                    f"{module}: kept instruction at {base + start:#x} "
                    f"decodes into wiped bytes at {base + tail[0]:#x}",
                )

    def _read_dumped(
        self, image: ProcessImage, address: int, size: int
    ) -> list[int | None]:
        """Bytes of ``[address, address+size)``; None where not dumped."""
        try:
            return list(image.read_memory(address, size))
        except ImageError:
            out: list[int | None] = []
            for index in range(size):
                addr = address + index
                if image.has_dumped(addr):
                    out.append(image.read_memory(addr, 1)[0])
                else:
                    out.append(None)
            return out

    def _reloc_bytes(self, binary: SelfImage, seg) -> set[int]:
        """Offsets load-time relocation may legitimately rewrite."""
        out: set[int] = set()
        seg_end = seg.vaddr + len(seg.data)
        for reloc in binary.dynamic_relocs:
            if seg.vaddr <= reloc.vaddr < seg_end:
                out.update(range(reloc.vaddr, reloc.vaddr + 8))
        return out

    def _instruction_map(
        self, cfg: ControlFlowGraph, binary: SelfImage, seg
    ) -> tuple[set[int], list[tuple[int, int]]]:
        """Instruction starts and [start, end) extents in one segment."""
        starts: set[int] = set()
        extents: list[tuple[int, int]] = []
        seg_end = seg.vaddr + len(seg.data)
        for block in cfg.blocks:
            if not (seg.vaddr <= block.start < seg_end):
                continue
            decoded, __ = disassemble_range(
                seg.data, block.start, min(block.end, seg_end), base=seg.vaddr
            )
            for insn in decoded:
                starts.add(insn.address)
                extents.append((insn.address, insn.end))
        return starts, extents

    # ------------------------------------------------------------------
    # DL2xx: injected-library VMA checks

    def _handler_library(self) -> SelfImage | None:
        libc = self.kernel.binaries.get("libc.so")
        if libc is None:
            return None
        from ..core.sighandler import build_handler_library

        return build_handler_library(libc)

    def _lint_injected_vmas(self, image: ProcessImage) -> None:
        library = self._handler_library()
        seg_perms = (
            {seg.name: seg.perms for seg in library.segments}
            if library is not None else {}
        )
        for vma in image.mm.vmas:
            if not vma.tag.startswith(INJECT_TAG_PREFIX):
                continue
            for other in image.mm.vmas:
                if other is vma:
                    continue
                if other.start < vma.end and vma.start < other.end:
                    self._emit(
                        "DL201", image.pid, vma.start,
                        f"injected VMA [{vma.start:#x}, {vma.end:#x}) "
                        f"overlaps [{other.start:#x}, {other.end:#x}) "
                        f"({other.tag or other.file_path or 'anon'})",
                    )
            seg_name = vma.tag[len(INJECT_TAG_PREFIX):]
            expected = seg_perms.get(seg_name)
            if expected is not None and vma.perms != expected:
                self._emit(
                    "DL202", image.pid, vma.start,
                    f"injected {seg_name!r} VMA has perms {vma.perms!r}, "
                    f"library segment wants {expected!r}",
                )
            undumped = self._first_undumped(image, vma)
            if undumped is not None:
                self._emit(
                    "DL203", image.pid, undumped,
                    f"injected {seg_name!r} VMA byte {undumped:#x} has no "
                    "dumped page backing it",
                )

    def _first_undumped(self, image: ProcessImage, vma: VmaEntry) -> int | None:
        from ..kernel.memory import PAGE_SIZE

        addr = vma.start
        while addr < vma.end:
            if not image.has_dumped(addr):
                return addr
            addr += PAGE_SIZE
        return None

    # ------------------------------------------------------------------
    # DL301: injected-library relocation words

    def _injected_base(self, image: ProcessImage, library: SelfImage) -> int | None:
        """Handler base from its text VMA (independent of sigactions)."""
        text_vaddr = next(
            (seg.vaddr for seg in library.segments if seg.name == "text"), None
        )
        if text_vaddr is None:
            return None
        for vma in image.mm.vmas:
            if vma.tag == f"{INJECT_TAG_PREFIX}text":
                return vma.start - text_vaddr
        return None

    def _lint_handler_got(self, image: ProcessImage) -> None:
        library = self._handler_library()
        if library is None:
            return
        base = self._injected_base(image, library)
        if base is None:
            return
        span = max(seg.end for seg in library.segments)
        for reloc in library.dynamic_relocs:
            site = base + reloc.vaddr
            if not image.has_dumped(site):
                continue
            word = int.from_bytes(image.read_memory(site, 8), "little")
            if reloc.type is DynRelocType.RELATIVE:
                inside = base <= word < base + span
            else:
                inside = image.mm.vma_at(word) is not None
            if not inside:
                what = reloc.symbol or "RELATIVE"
                self._emit(
                    "DL301", image.pid, site,
                    f"injected-library relocation word for {what} holds "
                    f"{word:#x}, which maps to nothing",
                )

    # ------------------------------------------------------------------
    # DL4xx: SIGTRAP sigaction

    def _lint_sigtrap(self, image: ProcessImage) -> None:
        sig = int(Signal.SIGTRAP)
        for action in image.core.sigactions:
            if action.signal != sig:
                continue
            if action.handler and not self._executable_at(image, action.handler):
                self._emit(
                    "DL401", image.pid, action.handler,
                    "SIGTRAP handler does not point at mapped executable "
                    "dumped bytes",
                )
            if action.restorer and not self._executable_at(
                image, action.restorer
            ):
                self._emit(
                    "DL402", image.pid, action.restorer,
                    "SIGTRAP restorer does not point at mapped executable "
                    "dumped bytes",
                )

    # ------------------------------------------------------------------
    # DL5xx: self-modifying-store hazards (DynaFlow)

    def _lint_store_hazards(self, image: ProcessImage) -> None:
        from .dataflow.valueset import analyze_image_flow

        for module, base in sorted(self._module_bases(image).items()):
            binary = self.kernel.binaries[module]
            flow = analyze_image_flow(binary, self._cfg(module, binary))
            for hazard in flow.hazards:
                self._emit(
                    hazard.code, image.pid, base + hazard.address,
                    f"{module}: {hazard.mnemonic} — {hazard.detail}",
                    severity=hazard.severity,
                )

    def _executable_at(self, image: ProcessImage, address: int) -> bool:
        vma = image.mm.vma_at(address)
        if vma is None or not vma.executable:
            return False
        # injected/anonymous executable code must also be in the dump;
        # file-backed text is restored from the binary either way
        if vma.is_anon and not image.has_dumped(address):
            return False
        return True


def lint_checkpoint(kernel: Kernel, checkpoint: CheckpointImage) -> LintReport:
    """Run every DynaLint image check over ``checkpoint``."""
    return ImageLinter(kernel, checkpoint).run()
