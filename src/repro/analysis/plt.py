"""PLT-entry analysis (the ret2plt / BROP attack-surface metric).

The paper counts how many *executed* PLT entries DynaCut removes after
initialization (43/56 for Nginx, 33/57 for Lighttpd) and argues the
removal defeats ret2plt and BROP.  These helpers map basic blocks to
PLT stubs and back.
"""

from __future__ import annotations

from ..binfmt.linker import PLT_STUB_SIZE
from ..binfmt.self_format import SelfImage
from ..tracing.drcov import BlockRecord, CoverageTrace


def plt_entry_at(image: SelfImage, offset: int) -> str | None:
    """Name of the PLT entry whose stub contains ``offset``."""
    for name, stub in image.plt_entries.items():
        if stub <= offset < stub + PLT_STUB_SIZE:
            return name
    return None


def plt_entries_in_blocks(
    image: SelfImage, blocks: list[BlockRecord] | tuple[BlockRecord, ...]
) -> set[str]:
    """PLT entries whose stub is covered by any of ``blocks``."""
    out: set[str] = set()
    for block in blocks:
        for name, stub in image.plt_entries.items():
            if block.offset < stub + PLT_STUB_SIZE and stub < block.offset + block.size:
                out.add(name)
    return out


def executed_plt_entries(image: SelfImage, trace: CoverageTrace) -> set[str]:
    """PLT entries executed in ``trace`` (module-filtered to the image)."""
    return plt_entries_in_blocks(
        image, list(trace.module_blocks(image.name))
    )
