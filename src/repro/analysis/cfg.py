"""Static basic-block discovery over SELF images (the Angr stand-in).

Figure 9's "total number of basic blocks" row comes from static
analysis, not traces.  This module recovers a conservative CFG with the
classic recursive-descent recipe:

1. seed the worklist with the entry point, every function symbol, and
   every PLT stub;
2. linearly decode from each seed, collecting **leaders**: branch
   targets, fall-through successors of conditional branches, and
   call-return sites;
3. iterate to a fixpoint, then cut blocks at leaders and terminators.

Indirect jumps/calls (``jmpr``/``callr``) end a block without adding
targets — the sound-but-incomplete behaviour real binary CFG recovery
has, which is why symbol seeds matter.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .. import telemetry
from ..binfmt.self_format import SelfImage
from ..isa.disassembler import DecodedInstruction, disassemble_one
from ..isa.encoding import DecodeError


@dataclass(frozen=True, order=True)
class BasicBlock:
    """A static basic block: [start, start+size) within the image."""

    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size


@dataclass
class ControlFlowGraph:
    """Recovered blocks plus edges between block start addresses."""

    image_name: str
    blocks: list[BasicBlock] = field(default_factory=list)
    edges: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    def block_at(self, address: int) -> BasicBlock | None:
        for block in self.blocks:
            if block.start <= address < block.end:
                return block
        return None

    def block_starts(self) -> set[int]:
        return {b.start for b in self.blocks}


class CfgBuilder:
    """Recovers the static CFG of one SELF image."""

    def __init__(self, image: SelfImage):
        self.image = image
        self._regions: list[tuple[int, int, bytes]] = []
        for seg in image.segments:
            if seg.name in ("text", "plt") and seg.data:
                self._regions.append((seg.vaddr, seg.vaddr + len(seg.data), seg.data))

    # ------------------------------------------------------------------

    def build(self) -> ControlFlowGraph:
        seeds = self._seeds()
        leaders, terminator_ends = self._discover(seeds)
        blocks, edges = self._cut_blocks(leaders, terminator_ends)
        return ControlFlowGraph(self.image.name, blocks, edges)

    # ------------------------------------------------------------------

    def _seeds(self) -> set[int]:
        seeds: set[int] = set()
        if self.image.entry:
            seeds.add(self.image.entry)
        for sym in self.image.symbols.values():
            if sym.is_function and self._region_of(sym.vaddr) is not None:
                seeds.add(sym.vaddr)
        for stub in self.image.plt_entries.values():
            seeds.add(stub)
        return seeds

    def _region_of(self, address: int) -> tuple[int, int, bytes] | None:
        for start, end, data in self._regions:
            if start <= address < end:
                return start, end, data
        return None

    def _decode_at(self, address: int) -> DecodedInstruction | None:
        region = self._region_of(address)
        if region is None:
            return None
        start, end, data = region
        try:
            decoded = disassemble_one(data, address, base=start)
        except DecodeError:
            return None
        if decoded.end > end:
            return None
        return decoded

    def _discover(self, seeds: set[int]) -> tuple[set[int], set[int]]:
        """Walk from seeds, returning (leaders, addresses-after-terminators)."""
        leaders = set(seeds)
        terminator_ends: set[int] = set()
        visited: set[int] = set()
        worklist = list(seeds)
        while worklist:
            address = worklist.pop()
            while address not in visited:
                visited.add(address)
                decoded = self._decode_at(address)
                if decoded is None:
                    break
                mnemonic = decoded.mnemonic
                target = decoded.branch_target()
                if target is not None and self._region_of(target) is not None:
                    if target not in leaders:
                        leaders.add(target)
                        worklist.append(target)
                    elif target not in visited:
                        worklist.append(target)
                if decoded.is_terminator():
                    terminator_ends.add(decoded.end)
                    # conditional branches and calls fall through
                    if decoded.is_conditional() or mnemonic in ("call", "callr"):
                        if decoded.end not in leaders:
                            leaders.add(decoded.end)
                            worklist.append(decoded.end)
                        address = decoded.end
                        continue
                    break
                address = decoded.end
        return leaders, terminator_ends

    def _cut_blocks(
        self, leaders: set[int], terminator_ends: set[int]
    ) -> tuple[list[BasicBlock], dict[int, tuple[int, ...]]]:
        blocks: list[BasicBlock] = []
        edges: dict[int, tuple[int, ...]] = {}
        for leader in sorted(leaders):
            if self._region_of(leader) is None:
                continue
            address = leader
            successors: list[int] = []
            while True:
                decoded = self._decode_at(address)
                if decoded is None:
                    break
                end = decoded.end
                if decoded.is_terminator():
                    target = decoded.branch_target()
                    if target is not None:
                        successors.append(target)
                    if decoded.is_conditional() or decoded.mnemonic in (
                        "call", "callr",
                    ):
                        successors.append(end)
                    address = end
                    break
                if end in leaders:
                    successors.append(end)
                    address = end
                    break
                address = end
            if address > leader:
                blocks.append(BasicBlock(leader, address - leader))
                edges[leader] = tuple(successors)
        return blocks, edges


def build_cfg(image: SelfImage) -> ControlFlowGraph:
    """Recover the static CFG of ``image``."""
    return CfgBuilder(image).build()


def image_digest(image: SelfImage) -> str:
    """Content digest over everything static analysis reads.

    Covers every segment's bytes, the entry point, symbols, PLT stubs,
    and dynamic relocations — two images with equal digests produce
    identical CFGs *and* identical dataflow results, which is what
    makes :func:`cached_cfg` (and the DynaFlow report cache) safe
    across rewrites: a patched segment changes the digest.
    """
    h = hashlib.sha256()
    h.update(image.entry.to_bytes(8, "little"))
    h.update(image.kind.value.encode())
    for seg in sorted(image.segments, key=lambda s: s.vaddr):
        h.update(seg.name.encode())
        h.update(seg.vaddr.to_bytes(8, "little"))
        h.update(seg.perms.encode())
        h.update(seg.data)
    for name, sym in sorted(image.symbols.items()):
        h.update(name.encode())
        h.update(sym.vaddr.to_bytes(8, "little"))
        h.update(bytes([sym.is_function, sym.is_global]))
    for name, stub in sorted(image.plt_entries.items()):
        h.update(name.encode())
        h.update(stub.to_bytes(8, "little"))
    for reloc in image.dynamic_relocs:
        h.update(reloc.vaddr.to_bytes(8, "little"))
        h.update(reloc.type.value.encode())
        h.update(reloc.symbol.encode())
        h.update(reloc.addend.to_bytes(8, "little", signed=True))
    return h.hexdigest()


#: digest → recovered CFG, shared by every linter/analyzer instance
_CFG_CACHE: dict[str, ControlFlowGraph] = {}
_CFG_CACHE_LIMIT = 64


def cached_cfg(image: SelfImage) -> ControlFlowGraph:
    """``build_cfg`` with a content-digest cache.

    CFG recovery is the dominant cost of linting a checkpoint; the same
    pristine binary is decoded once per lint invocation otherwise.  The
    cache key is :func:`image_digest`, so a rewritten image never hits
    a stale entry.
    """
    digest = image_digest(image)
    cached = _CFG_CACHE.get(digest)
    if cached is not None:
        telemetry.count("cfg_cache_hits", image=image.name)
        return cached
    telemetry.count("cfg_cache_misses", image=image.name)
    cfg = CfgBuilder(image).build()
    if len(_CFG_CACHE) >= _CFG_CACHE_LIMIT:
        _CFG_CACHE.pop(next(iter(_CFG_CACHE)))
    _CFG_CACHE[digest] = cfg
    return cfg


def total_basic_blocks(image: SelfImage) -> int:
    """Figure 9's "total BB" metric for one binary."""
    return build_cfg(image).block_count
