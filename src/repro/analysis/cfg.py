"""Static basic-block discovery over SELF images (the Angr stand-in).

Figure 9's "total number of basic blocks" row comes from static
analysis, not traces.  This module recovers a conservative CFG with the
classic recursive-descent recipe:

1. seed the worklist with the entry point, every function symbol, and
   every PLT stub;
2. linearly decode from each seed, collecting **leaders**: branch
   targets, fall-through successors of conditional branches, and
   call-return sites;
3. iterate to a fixpoint, then cut blocks at leaders and terminators.

Indirect jumps/calls (``jmpr``/``callr``) end a block without adding
targets — the sound-but-incomplete behaviour real binary CFG recovery
has, which is why symbol seeds matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..binfmt.self_format import SelfImage
from ..isa.disassembler import DecodedInstruction, disassemble_one
from ..isa.encoding import DecodeError


@dataclass(frozen=True, order=True)
class BasicBlock:
    """A static basic block: [start, start+size) within the image."""

    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size


@dataclass
class ControlFlowGraph:
    """Recovered blocks plus edges between block start addresses."""

    image_name: str
    blocks: list[BasicBlock] = field(default_factory=list)
    edges: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    def block_at(self, address: int) -> BasicBlock | None:
        for block in self.blocks:
            if block.start <= address < block.end:
                return block
        return None

    def block_starts(self) -> set[int]:
        return {b.start for b in self.blocks}


class CfgBuilder:
    """Recovers the static CFG of one SELF image."""

    def __init__(self, image: SelfImage):
        self.image = image
        self._regions: list[tuple[int, int, bytes]] = []
        for seg in image.segments:
            if seg.name in ("text", "plt") and seg.data:
                self._regions.append((seg.vaddr, seg.vaddr + len(seg.data), seg.data))

    # ------------------------------------------------------------------

    def build(self) -> ControlFlowGraph:
        seeds = self._seeds()
        leaders, terminator_ends = self._discover(seeds)
        blocks, edges = self._cut_blocks(leaders, terminator_ends)
        return ControlFlowGraph(self.image.name, blocks, edges)

    # ------------------------------------------------------------------

    def _seeds(self) -> set[int]:
        seeds: set[int] = set()
        if self.image.entry:
            seeds.add(self.image.entry)
        for sym in self.image.symbols.values():
            if sym.is_function and self._region_of(sym.vaddr) is not None:
                seeds.add(sym.vaddr)
        for stub in self.image.plt_entries.values():
            seeds.add(stub)
        return seeds

    def _region_of(self, address: int) -> tuple[int, int, bytes] | None:
        for start, end, data in self._regions:
            if start <= address < end:
                return start, end, data
        return None

    def _decode_at(self, address: int) -> DecodedInstruction | None:
        region = self._region_of(address)
        if region is None:
            return None
        start, end, data = region
        try:
            decoded = disassemble_one(data, address, base=start)
        except DecodeError:
            return None
        if decoded.end > end:
            return None
        return decoded

    def _discover(self, seeds: set[int]) -> tuple[set[int], set[int]]:
        """Walk from seeds, returning (leaders, addresses-after-terminators)."""
        leaders = set(seeds)
        terminator_ends: set[int] = set()
        visited: set[int] = set()
        worklist = list(seeds)
        while worklist:
            address = worklist.pop()
            while address not in visited:
                visited.add(address)
                decoded = self._decode_at(address)
                if decoded is None:
                    break
                mnemonic = decoded.mnemonic
                target = decoded.branch_target()
                if target is not None and self._region_of(target) is not None:
                    if target not in leaders:
                        leaders.add(target)
                        worklist.append(target)
                    elif target not in visited:
                        worklist.append(target)
                if decoded.is_terminator():
                    terminator_ends.add(decoded.end)
                    # conditional branches and calls fall through
                    if decoded.is_conditional() or mnemonic in ("call", "callr"):
                        if decoded.end not in leaders:
                            leaders.add(decoded.end)
                            worklist.append(decoded.end)
                        address = decoded.end
                        continue
                    break
                address = decoded.end
        return leaders, terminator_ends

    def _cut_blocks(
        self, leaders: set[int], terminator_ends: set[int]
    ) -> tuple[list[BasicBlock], dict[int, tuple[int, ...]]]:
        blocks: list[BasicBlock] = []
        edges: dict[int, tuple[int, ...]] = {}
        for leader in sorted(leaders):
            if self._region_of(leader) is None:
                continue
            address = leader
            successors: list[int] = []
            while True:
                decoded = self._decode_at(address)
                if decoded is None:
                    break
                end = decoded.end
                if decoded.is_terminator():
                    target = decoded.branch_target()
                    if target is not None:
                        successors.append(target)
                    if decoded.is_conditional() or decoded.mnemonic in (
                        "call", "callr",
                    ):
                        successors.append(end)
                    address = end
                    break
                if end in leaders:
                    successors.append(end)
                    address = end
                    break
                address = end
            if address > leader:
                blocks.append(BasicBlock(leader, address - leader))
                edges[leader] = tuple(successors)
        return blocks, edges


def build_cfg(image: SelfImage) -> ControlFlowGraph:
    """Recover the static CFG of ``image``."""
    return CfgBuilder(image).build()


def total_basic_blocks(image: SelfImage) -> int:
    """Figure 9's "total BB" metric for one binary."""
    return build_cfg(image).block_count
