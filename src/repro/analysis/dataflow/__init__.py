"""DynaFlow: lattice-generic dataflow analyses over the VM64 CFG.

The package provides a small worklist solver (:mod:`framework`) and
three clients used by the customization pipeline:

* :mod:`valueset` — value-set analysis resolving indirect branch
  targets and address-taken code, the basis for the ``prove`` mode of
  :func:`repro.analysis.reachability.refine_removal_set`;
* :mod:`liveness` — backward register liveness at block boundaries;
* :mod:`hazards` — DL50x self-modifying-store classification consumed
  by :class:`repro.analysis.lint.ImageLinter`.
"""

from .framework import (
    DataflowError,
    DataflowProblem,
    Direction,
    FixpointError,
    MonotonicityError,
    Solution,
    solve,
)
from .hazards import HAZARD_RULES, StoreHazard, classify_store
from .lattice import ValueSet, join_all
from .liveness import LivenessResult, block_liveness, live_in_registers
from .regions import FunctionRegion, RegionMap
from .valueset import (
    FlowReport,
    IndirectSite,
    MachineState,
    analyze_image_flow,
    scan_address_taken,
)

__all__ = [
    "DataflowError",
    "DataflowProblem",
    "Direction",
    "FixpointError",
    "MonotonicityError",
    "Solution",
    "solve",
    "HAZARD_RULES",
    "StoreHazard",
    "classify_store",
    "ValueSet",
    "join_all",
    "LivenessResult",
    "block_liveness",
    "live_in_registers",
    "FunctionRegion",
    "RegionMap",
    "FlowReport",
    "IndirectSite",
    "MachineState",
    "analyze_image_flow",
    "scan_address_taken",
]
