"""The value-set lattice used by the DynaFlow clients.

A :class:`ValueSet` approximates the set of 64-bit integers a register
(or stack slot) may hold, split into two *regions* in the classic VSA
style:

* the **global** region — absolute virtual addresses and plain
  integers.  Tracked as a finite set of constants (up to
  :data:`MAX_CONSTS`), widened to an interval ``[lo, hi]``, widened
  again to ``TOP`` when the interval grows past :data:`MAX_SPAN`.
* the **stack** region — offsets relative to the stack pointer at
  function entry.  Tracked as a finite offset set or ``TOP``.

Two taint bits ride along and survive joins and arithmetic:

* ``code`` — the global component was derived from a code address
  (a ``movi``/``lea`` of a text address, or a value loaded from a
  code-pointer word).  The store-hazard client uses it to flag
  unbounded stores that may alias executable bytes.
* ``external`` — the value was loaded from a load-time relocation site
  (a GOT word).  An indirect branch on such a value leaves the module
  through an import and is *resolved-external*, not unknown.

The lattice has finite height by construction (finite set → interval →
TOP), so every monotone client terminates without widening; the
framework's widening hook only accelerates interval growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

BinOp = Callable[[int, int], int]

MASK64 = (1 << 64) - 1

#: finite constant sets larger than this widen to an interval
MAX_CONSTS = 16
#: intervals wider than this widen to TOP
MAX_SPAN = 1 << 24
#: stack offset sets larger than this widen to stack-TOP
MAX_STACK_OFFSETS = 16


@dataclass(frozen=True)
class ValueSet:
    """One lattice element.

    ``consts`` — finite global constants, or ``None`` when the global
    component is an interval/TOP/empty.  ``lo``/``hi`` — interval
    bounds when ``consts`` is None; both ``None`` with ``global_top``
    False means the global component is empty.  ``stack`` — finite
    entry-sp-relative offsets, or ``None`` with ``stack_top`` marking
    TOP/empty.
    """

    consts: frozenset[int] | None = None
    lo: int | None = None
    hi: int | None = None
    global_top: bool = False
    stack: frozenset[int] | None = None
    stack_top: bool = False
    code: bool = False
    external: bool = False

    # ------------------------------------------------------------------
    # constructors

    @staticmethod
    def bottom() -> "ValueSet":
        return ValueSet()

    @staticmethod
    def top() -> "ValueSet":
        return ValueSet(global_top=True, stack_top=True)

    @staticmethod
    def const(value: int, code: bool = False) -> "ValueSet":
        return ValueSet(consts=frozenset({value & MASK64}), code=code)

    @staticmethod
    def const_set(values: frozenset[int], code: bool = False) -> "ValueSet":
        if not values:
            return ValueSet(code=code)
        if len(values) > MAX_CONSTS:
            return ValueSet(
                lo=min(values), hi=max(values), code=code
            )._check_span()
        return ValueSet(consts=frozenset(v & MASK64 for v in values), code=code)

    @staticmethod
    def stack_offset(offset: int) -> "ValueSet":
        return ValueSet(stack=frozenset({offset}))

    @staticmethod
    def unknown_int() -> "ValueSet":
        """TOP in the global region only (no stack aliasing)."""
        return ValueSet(global_top=True)

    @staticmethod
    def interval(lo: int, hi: int, code: bool = False) -> "ValueSet":
        if lo > hi:
            lo, hi = hi, lo
        return ValueSet(lo=lo, hi=hi, code=code)._check_span()

    # ------------------------------------------------------------------
    # structure

    @property
    def is_bottom(self) -> bool:
        return (
            self.consts is None
            and self.lo is None
            and not self.global_top
            and self.stack is None
            and not self.stack_top
        )

    @property
    def has_global(self) -> bool:
        return self.consts is not None or self.lo is not None or self.global_top

    @property
    def has_stack(self) -> bool:
        return self.stack is not None or self.stack_top

    @property
    def is_finite(self) -> bool:
        """Exactly a finite set of global constants (no stack, no TOP)."""
        return (
            self.consts is not None
            and not self.global_top
            and not self.has_stack
        )

    def _check_span(self) -> "ValueSet":
        if self.lo is not None and self.hi is not None:
            if self.hi - self.lo > MAX_SPAN:
                return ValueSet(
                    global_top=True,
                    stack=self.stack,
                    stack_top=self.stack_top,
                    code=self.code,
                    external=self.external,
                )
        return self

    def global_bounds(self) -> tuple[int, int] | None:
        """``[lo, hi]`` covering the global component, None if TOP/empty."""
        if self.global_top:
            return None
        if self.consts is not None:
            return min(self.consts), max(self.consts)
        if self.lo is not None and self.hi is not None:
            return self.lo, self.hi
        return None

    def may_contain(self, lo: int, hi: int) -> bool:
        """May the global component intersect ``[lo, hi)``?"""
        if self.global_top:
            return self.code    # unbounded: only code-derived values count
        if self.consts is not None:
            return any(lo <= v < hi for v in self.consts)
        if self.lo is not None and self.hi is not None:
            return self.lo < hi and lo <= self.hi
        return False

    # ------------------------------------------------------------------
    # lattice operations

    def join(self, other: "ValueSet") -> "ValueSet":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        # Taint bits are or'd — EXCEPT that an *untainted* global-TOP
        # absorbs them.  Without absorption plain TOP would sit below
        # "TOP with taint" and a transfer reading an absent (= TOP)
        # stack slot could produce output below its previous one,
        # breaking monotonicity.  The cost is that taint does not
        # survive a merge with fully-unknown data, which only ever
        # drops a DL502 *warning*.
        code = (
            (self.code or other.code)
            and not (self.global_top and not self.code)
            and not (other.global_top and not other.code)
        )
        external = (
            (self.external or other.external)
            and not (self.global_top and not self.external)
            and not (other.global_top and not other.external)
        )
        # stack component
        if self.stack_top or other.stack_top:
            stack, stack_top = None, True
        elif self.stack is not None or other.stack is not None:
            merged = (self.stack or frozenset()) | (other.stack or frozenset())
            if len(merged) > MAX_STACK_OFFSETS:
                stack, stack_top = None, True
            else:
                stack, stack_top = merged, False
        else:
            stack, stack_top = None, False
        # global component
        if self.global_top or other.global_top:
            return ValueSet(
                global_top=True, stack=stack, stack_top=stack_top,
                code=code, external=external,
            )
        if self.consts is not None and other.consts is not None:
            merged_consts = self.consts | other.consts
            if len(merged_consts) <= MAX_CONSTS:
                return ValueSet(
                    consts=merged_consts, stack=stack, stack_top=stack_top,
                    code=code, external=external,
                )
            lo, hi = min(merged_consts), max(merged_consts)
            return ValueSet(
                lo=lo, hi=hi, stack=stack, stack_top=stack_top,
                code=code, external=external,
            )._check_span()
        bounds_a = self.global_bounds()
        bounds_b = other.global_bounds()
        if bounds_a is None and bounds_b is None:
            return ValueSet(
                stack=stack, stack_top=stack_top, code=code, external=external
            )
        if bounds_a is None:
            lo, hi = bounds_b  # type: ignore[misc]
        elif bounds_b is None:
            lo, hi = bounds_a
        else:
            lo = min(bounds_a[0], bounds_b[0])
            hi = max(bounds_a[1], bounds_b[1])
        return ValueSet(
            lo=lo, hi=hi, stack=stack, stack_top=stack_top,
            code=code, external=external,
        )._check_span()

    def widen(self, newer: "ValueSet") -> "ValueSet":
        """Accelerated join: any global growth jumps straight to TOP."""
        joined = self.join(newer)
        if joined == self:
            return self
        return ValueSet(
            global_top=joined.has_global or joined.global_top,
            stack=None if joined.stack_top else joined.stack,
            stack_top=joined.stack_top,
            code=joined.code,
            external=joined.external,
        ) if joined.has_global else joined

    # ------------------------------------------------------------------
    # arithmetic transfers

    def shifted(self, delta: int) -> "ValueSet":
        """``self + delta`` for a known constant delta."""
        stack = (
            frozenset(o + delta for o in self.stack)
            if self.stack is not None else None
        )
        if self.global_top:
            return ValueSet(
                global_top=True, stack=stack, stack_top=self.stack_top,
                code=self.code, external=self.external,
            )
        if self.consts is not None:
            return ValueSet(
                consts=frozenset((v + delta) & MASK64 for v in self.consts),
                stack=stack, stack_top=self.stack_top,
                code=self.code, external=self.external,
            )
        if self.lo is not None and self.hi is not None:
            return ValueSet(
                lo=self.lo + delta, hi=self.hi + delta,
                stack=stack, stack_top=self.stack_top,
                code=self.code, external=self.external,
            )._check_span()
        return ValueSet(
            stack=stack, stack_top=self.stack_top,
            code=self.code, external=self.external,
        )

    def add(self, other: "ValueSet") -> "ValueSet":
        if self.is_bottom or other.is_bottom:
            return ValueSet.bottom()
        # stack + constant => shifted stack offsets
        if other.is_finite and len(other.consts or ()) == 1 and self.has_stack:
            shifted = self.shifted(next(iter(other.consts or frozenset())))
            return shifted._tainted_by(other)
        if self.is_finite and len(self.consts or ()) == 1 and other.has_stack:
            shifted = other.shifted(next(iter(self.consts or frozenset())))
            return shifted._tainted_by(self)
        return self._binop(other, lambda a, b: (a + b) & MASK64)

    def sub(self, other: "ValueSet") -> "ValueSet":
        if self.is_bottom or other.is_bottom:
            return ValueSet.bottom()
        if other.is_finite and len(other.consts or ()) == 1 and self.has_stack:
            shifted = self.shifted(-next(iter(other.consts or frozenset())))
            return shifted._tainted_by(other)
        return self._binop(other, lambda a, b: (a - b) & MASK64)

    def _tainted_by(self, other: "ValueSet") -> "ValueSet":
        """Carry ``other``'s taint bits into an arithmetic result."""
        if (self.code or not other.code) and (
            self.external or not other.external
        ):
            return self
        return ValueSet(
            consts=self.consts, lo=self.lo, hi=self.hi,
            global_top=self.global_top,
            stack=self.stack, stack_top=self.stack_top,
            code=self.code or other.code,
            external=self.external or other.external,
        )

    def _binop(self, other: "ValueSet", op: BinOp) -> "ValueSet":
        code = self.code or other.code
        if self.has_stack or other.has_stack:
            # arithmetic mixing stack pointers beyond +/- const: give up
            # on the offsets but remember a stack address may be inside
            return ValueSet(global_top=True, stack_top=True, code=code)
        if (
            self.consts is not None
            and other.consts is not None
            and len(self.consts) * len(other.consts) <= MAX_CONSTS * 4
        ):
            values = frozenset(
                op(a, b) for a in self.consts for b in other.consts
            )
            return ValueSet.const_set(values, code=code)
        return ValueSet(global_top=True, code=code)


def join_all(values: "list[ValueSet]") -> ValueSet:
    out = ValueSet.bottom()
    for value in values:
        out = out.join(value)
    return out
