"""Lattice-generic worklist dataflow solver.

The engine is deliberately small: a :class:`DataflowProblem` supplies
the lattice (``bottom``/``join``/``equals``), the direction, and a
block-level ``transfer`` function; :func:`solve` iterates a worklist in
(reverse) postorder until the block states stop changing.

Two guards keep a buggy client from hanging the analyzer:

* **monotonicity** — every recomputed output must sit above the old one
  in the lattice (``join(old, new) == new``).  A transfer function that
  loses information would otherwise oscillate forever; the violation is
  reported as :class:`MonotonicityError` at the offending block.  The
  check stops once widening starts on a block: the widened output
  over-approximates ``transfer(input)`` by design, so later exact
  recomputations may sit below it without any client bug.
* **fixpoint bound** — after ``widen_after`` visits of one block the
  client's ``widen`` hook is applied to accelerate convergence, and
  after ``max_visits`` visits :class:`FixpointError` is raised instead
  of looping.

States are treated as immutable values; ``None`` marks an unreached
block (the implicit bottom below the client lattice).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Generic, Mapping, Sequence, TypeVar

S = TypeVar("S")

Edges = Mapping[int, tuple[int, ...]]


class Direction(Enum):
    """Propagation direction of an analysis."""

    FORWARD = "forward"
    BACKWARD = "backward"


class DataflowError(RuntimeError):
    """Base class for solver failures."""


class FixpointError(DataflowError):
    """The worklist did not converge within the visit budget."""


class MonotonicityError(DataflowError):
    """A transfer function produced a state below its previous output."""


@dataclass
class DataflowProblem(Generic[S]):
    """One analysis instance over a set of blocks.

    ``transfer(block, state)`` maps the block's input state to its
    output state (for backward problems "input" is the join over the
    successors).  ``boundary`` is the state injected at entry blocks
    (exit blocks for backward problems).
    """

    direction: Direction
    boundary: S
    join: Callable[[S, S], S]
    transfer: Callable[[int, S], S]
    equals: Callable[[S, S], bool]
    widen: Callable[[S, S], S] | None = None
    widen_after: int = 8
    max_visits: int = 128
    check_monotone: bool = True


@dataclass
class Solution(Generic[S]):
    """Fixpoint states per block plus solver statistics."""

    inputs: dict[int, S] = field(default_factory=dict)
    outputs: dict[int, S] = field(default_factory=dict)
    visits: int = 0

    def input_of(self, block: int) -> S | None:
        return self.inputs.get(block)

    def output_of(self, block: int) -> S | None:
        return self.outputs.get(block)


def _postorder(blocks: Sequence[int], edges: Edges, roots: Sequence[int]) -> list[int]:
    known = set(blocks)
    order: list[int] = []
    visited: set[int] = set()
    for root in roots:
        if root in visited or root not in known:
            continue
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                order.append(node)
                continue
            if node in visited:
                continue
            visited.add(node)
            stack.append((node, True))
            for succ in edges.get(node, ()):
                if succ in known and succ not in visited:
                    stack.append((succ, False))
    # unreachable blocks keep a stable position after the reachable ones
    order.extend(b for b in blocks if b not in visited)
    return order


def _invert(blocks: Sequence[int], edges: Edges) -> dict[int, tuple[int, ...]]:
    rev: dict[int, list[int]] = {b: [] for b in blocks}
    known = set(blocks)
    for src in blocks:
        for dst in edges.get(src, ()):
            if dst in known:
                rev[dst].append(src)
    return {b: tuple(preds) for b, preds in rev.items()}


def solve(
    blocks: Sequence[int],
    edges: Edges,
    entries: Sequence[int],
    problem: DataflowProblem[S],
) -> Solution[S]:
    """Run ``problem`` to fixpoint over ``blocks``.

    ``entries`` are the boundary blocks: entry blocks of the region for
    forward problems, exit blocks for backward ones.  Blocks never
    reached by propagation keep no state (``None`` from the accessors).
    """
    blocks = list(dict.fromkeys(blocks))
    known = set(blocks)
    entries = [b for b in dict.fromkeys(entries) if b in known]

    if problem.direction is Direction.FORWARD:
        flow = {b: tuple(s for s in edges.get(b, ()) if s in known) for b in blocks}
        preds = _invert(blocks, edges)
        order = _postorder(blocks, edges, entries)[::-1]
    else:
        preds_fwd = _invert(blocks, edges)
        flow = preds_fwd
        preds = {b: tuple(s for s in edges.get(b, ()) if s in known) for b in blocks}
        order = _postorder(blocks, preds_fwd, entries)[::-1]

    position = {b: i for i, b in enumerate(order)}
    solution: Solution[S] = Solution()
    visit_counts: dict[int, int] = {b: 0 for b in blocks}

    pending = set(order)
    worklist = sorted(pending, key=lambda b: position[b])
    while worklist:
        block = worklist.pop(0)
        pending.discard(block)

        state: S | None = None
        for pred in preds.get(block, ()):
            pred_out = solution.outputs.get(pred)
            if pred_out is None:
                continue
            state = pred_out if state is None else problem.join(state, pred_out)
        if block in entries:
            state = (
                problem.boundary
                if state is None
                else problem.join(state, problem.boundary)
            )
        if state is None:
            continue    # unreached so far

        visit_counts[block] += 1
        solution.visits += 1
        if visit_counts[block] > problem.max_visits:
            raise FixpointError(
                f"block {block:#x} visited more than {problem.max_visits} "
                "times without converging"
            )

        new_out = problem.transfer(block, state)
        old_out = solution.outputs.get(block)
        if old_out is not None:
            # Once widening has lifted this block's stored output above
            # transfer(input), a recomputed output legitimately lands
            # below it — the monotonicity guard is only meaningful while
            # outputs are still exact transfer results.
            widening = (
                problem.widen is not None
                and visit_counts[block] > problem.widen_after
            )
            if widening:
                assert problem.widen is not None
                new_out = problem.widen(old_out, new_out)
            elif problem.check_monotone:
                joined = problem.join(old_out, new_out)
                if not problem.equals(joined, new_out):
                    raise MonotonicityError(
                        f"transfer at block {block:#x} dropped below its "
                        "previous output"
                    )
        if old_out is not None and problem.equals(old_out, new_out):
            solution.inputs[block] = state
            continue

        solution.inputs[block] = state
        solution.outputs[block] = new_out
        for succ in flow.get(block, ()):
            if succ not in pending:
                pending.add(succ)
                worklist.append(succ)
        worklist.sort(key=lambda b: position[b])
    return solution
