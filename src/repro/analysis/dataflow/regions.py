"""Function regions: the per-function sub-CFGs the clients run over.

The whole-image CFG mixes interprocedural edges (call targets, call
fall-throughs) with intraprocedural ones; running a register analysis
over that soup would smear every callee's effects into its caller.
This module partitions the image's blocks into *regions* — function
extents from the symbol table, one region per PLT stub, and singleton
regions for orphan blocks — and derives the **intra-region** edge map:

* direct jumps/branches stay edges only when the target is inside the
  region (a jump out is a tail-transfer: the block becomes an exit);
* ``call``/``callr`` contribute only their fall-through edge, tagged so
  transfer functions can apply the calling convention's clobbers;
* ``jmpr`` starts out as an exit; the value-set client re-enters with
  resolved intra-region targets (jump tables) when it finds any;
* ``ret``/``hlt``/``int3`` end the region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...binfmt.linker import PLT_STUB_SIZE
from ...binfmt.self_format import SelfImage
from ...isa.disassembler import DecodedInstruction, disassemble_range
from ..cfg import ControlFlowGraph


@dataclass
class FunctionRegion:
    """One analysis region: ``[start, end)`` plus its intra-region CFG."""

    name: str
    start: int
    end: int
    blocks: list[int] = field(default_factory=list)
    edges: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: block starts ending in a call/callr (their single fall-through
    #: edge crosses a callee, so transfer must clobber scratch state)
    call_blocks: set[int] = field(default_factory=set)
    #: block starts that leave the region (ret/hlt/tail-jump/indirect)
    exits: set[int] = field(default_factory=set)

    @property
    def entry(self) -> int:
        return self.blocks[0]

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end


class RegionMap:
    """The image's blocks partitioned into :class:`FunctionRegion`."""

    def __init__(self, image: SelfImage, cfg: ControlFlowGraph):
        self.image = image
        self.cfg = cfg
        self._decoded: dict[int, list[DecodedInstruction]] = {}
        self._segments = [
            (seg.vaddr, seg.vaddr + len(seg.data), seg.data)
            for seg in image.segments
            if seg.name in ("text", "plt") and seg.data
        ]
        self.regions: list[FunctionRegion] = self._partition()
        self._by_block: dict[int, FunctionRegion] = {}
        for region in self.regions:
            for block in region.blocks:
                self._by_block[block] = region

    # ------------------------------------------------------------------

    def region_of(self, block_start: int) -> FunctionRegion | None:
        return self._by_block.get(block_start)

    def decode_block(self, start: int) -> list[DecodedInstruction]:
        """Decoded instructions of the block starting at ``start``."""
        cached = self._decoded.get(start)
        if cached is not None:
            return cached
        block = next((b for b in self.cfg.blocks if b.start == start), None)
        out: list[DecodedInstruction] = []
        if block is not None:
            for base, end, data in self._segments:
                if base <= block.start < end:
                    out, __ = disassemble_range(
                        data, block.start, min(block.end, end), base=base
                    )
                    break
        self._decoded[start] = out
        return out

    # ------------------------------------------------------------------

    def _partition(self) -> list[FunctionRegion]:
        extents: list[tuple[int, int, str]] = []
        functions = sorted(
            (sym.vaddr, name)
            for name, sym in self.image.functions().items()
        )
        text_end = max((b.end for b in self.cfg.blocks), default=0)
        for (start, name), nxt in zip(
            functions, functions[1:] + [(text_end, "")]
        ):
            extents.append((start, max(nxt[0], start), name))
        for name, stub in sorted(self.image.plt_entries.items()):
            extents.append((stub, stub + PLT_STUB_SIZE, f"plt:{name}"))

        regions: list[FunctionRegion] = []
        claimed: set[int] = set()
        # PLT stubs claim their blocks first: the trailing function's
        # symbol extent runs to the end of code and would swallow them
        ordered = sorted(extents, key=lambda e: (not e[2].startswith("plt:"), e[0]))
        for start, end, name in ordered:
            members = sorted(
                b.start for b in self.cfg.blocks
                if start <= b.start < end and b.start not in claimed
            )
            if not members:
                continue
            claimed.update(members)
            regions.append(FunctionRegion(name, start, end, members))
        regions.sort(key=lambda r: r.start)
        for block in sorted(self.cfg.block_starts() - claimed):
            extent = next(b for b in self.cfg.blocks if b.start == block)
            regions.append(
                FunctionRegion(f"orphan:{block:#x}", block, extent.end, [block])
            )
        for region in regions:
            self._wire(region)
        return regions

    def _wire(self, region: FunctionRegion) -> None:
        members = set(region.blocks)
        for start in region.blocks:
            decoded = self.decode_block(start)
            if not decoded:
                region.exits.add(start)
                region.edges[start] = ()
                continue
            last = decoded[-1]
            successors: list[int] = []
            if last.is_terminator():
                mnemonic = last.mnemonic
                if mnemonic in ("call", "callr"):
                    region.call_blocks.add(start)
                    if last.end in members:
                        successors.append(last.end)
                    else:
                        region.exits.add(start)
                elif mnemonic == "jmpr":
                    region.exits.add(start)
                elif mnemonic in ("ret", "hlt", "int3"):
                    region.exits.add(start)
                else:
                    target = last.branch_target()
                    if target is not None and target in members:
                        successors.append(target)
                    elif target is not None:
                        region.exits.add(start)      # tail transfer
                    if last.is_conditional():
                        if last.end in members:
                            successors.append(last.end)
                        else:
                            region.exits.add(start)
            else:
                if last.end in members:
                    successors.append(last.end)
                else:
                    region.exits.add(start)
            region.edges[start] = tuple(dict.fromkeys(successors))
