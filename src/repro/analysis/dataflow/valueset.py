"""Value-set analysis (VSA): constants and intervals through registers.

The client runs the :mod:`framework` forward over every
:class:`~repro.analysis.dataflow.regions.FunctionRegion` of an image
and produces a :class:`FlowReport`:

* **indirect-branch resolution** — every ``jmpr``/``callr`` site with
  the value-set of its target register: a finite set of in-module
  addresses (``resolved``), a load-time import (``external``, the PLT
  tail pattern ``lea; ld64; jmpr``), or unresolved;
* **address-taken code** — every code address that materializes as a
  value anywhere (instruction immediates, ``lea`` targets, pointer
  words in data segments, dynamic-relocation addends).  Unresolved
  indirect sites can only reach address-taken code, which is what
  makes the liveness proofs in ``reachability.prove`` sound;
* **store hazards** — the DL50x classification of every store
  (:mod:`~repro.analysis.dataflow.hazards`).

Machine state is sixteen :class:`~.lattice.ValueSet` registers plus a
bounded map of entry-sp-relative stack slots.  Calls clobber the
caller-saved registers and every tracked slot (a callee may write any
escaped frame byte), so a function-pointer local survives resolution
only when no call intervenes — precision the tests pin, conservatism
the proofs rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ... import telemetry
from ...binfmt.self_format import DynRelocType, ImageKind, SelfImage
from ...isa.disassembler import DecodedInstruction
from ..cfg import ControlFlowGraph, build_cfg, image_digest
from .framework import DataflowProblem, Direction, solve
from .hazards import StoreHazard, classify_store
from .lattice import MASK64, ValueSet
from .regions import FunctionRegion, RegionMap

#: registers the VM64 calling convention lets a callee clobber
CALLER_SAVED: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 11, 12, 13)
SP = 15
FP = 14

#: cap on tracked stack slots per state (beyond it the frame is TOP)
MAX_TRACKED_SLOTS = 64


@dataclass(frozen=True)
class MachineState:
    """Register file plus tracked stack slots (both immutable)."""

    regs: tuple[ValueSet, ...]
    slots: tuple[tuple[int, ValueSet], ...] = ()

    @staticmethod
    def entry() -> "MachineState":
        regs = [ValueSet.top()] * 16
        regs[SP] = ValueSet.stack_offset(0)
        return MachineState(tuple(regs))

    def reg(self, index: int) -> ValueSet:
        return self.regs[index]

    def with_reg(self, index: int, value: ValueSet) -> "MachineState":
        regs = list(self.regs)
        regs[index] = value
        return MachineState(tuple(regs), self.slots)

    def slot_map(self) -> dict[int, ValueSet]:
        return dict(self.slots)

    def with_slots(self, slots: dict[int, ValueSet]) -> "MachineState":
        if len(slots) > MAX_TRACKED_SLOTS:
            slots = {}
        return MachineState(
            self.regs, tuple(sorted(slots.items(), key=lambda kv: kv[0]))
        )

    def havoc_calls(self) -> "MachineState":
        regs = list(self.regs)
        for index in CALLER_SAVED:
            regs[index] = ValueSet.top()
        return MachineState(tuple(regs), ())

    def join(self, other: "MachineState") -> "MachineState":
        regs = tuple(
            a.join(b) for a, b in zip(self.regs, other.regs)
        )
        mine, theirs = self.slot_map(), other.slot_map()
        slots = {
            offset: mine[offset].join(theirs[offset])
            for offset in mine.keys() & theirs.keys()
        }
        return MachineState(regs, tuple(sorted(slots.items())))

    def widen(self, newer: "MachineState") -> "MachineState":
        regs = tuple(a.widen(b) for a, b in zip(self.regs, newer.regs))
        mine, theirs = self.slot_map(), newer.slot_map()
        slots = {
            offset: mine[offset].widen(theirs[offset])
            for offset in mine.keys() & theirs.keys()
        }
        return MachineState(regs, tuple(sorted(slots.items())))


@dataclass(frozen=True)
class IndirectSite:
    """One ``jmpr``/``callr`` instruction and what its target may be."""

    address: int
    mnemonic: str                 # jmpr | callr
    region: str                   # containing function region
    targets: tuple[int, ...] = () # resolved in-module code targets
    external: bool = False        # resolves through an import (GOT word)
    resolved: bool = False

    @property
    def is_call(self) -> bool:
        return self.mnemonic == "callr"


@dataclass
class FlowReport:
    """Everything the downstream consumers need from one image's VSA."""

    image_name: str
    sites: list[IndirectSite] = field(default_factory=list)
    address_taken: frozenset[int] = frozenset()
    hazards: list[StoreHazard] = field(default_factory=list)
    blocks_analyzed: int = 0
    solver_visits: int = 0

    def resolved_targets(self) -> dict[int, tuple[int, ...]]:
        """Site address → in-module targets, for resolved sites only."""
        return {
            site.address: site.targets
            for site in self.sites
            if site.resolved and not site.external
        }

    def unresolved_sites(self) -> list[IndirectSite]:
        return [site for site in self.sites if not site.resolved]

    @property
    def definite_hazards(self) -> list[StoreHazard]:
        return [h for h in self.hazards if h.rule != "possible"]


class _ImageContext:
    """Shared read-only facts about the image under analysis."""

    def __init__(self, image: SelfImage):
        self.image = image
        #: position-independent: segment vaddrs are load-base-relative,
        #: so a *plain integer constant* never aliases this module's own
        #: text (the base is unknown at analysis time) — only values
        #: derived from actual code addresses (lea, relocated words) do
        self.pic = image.kind is ImageKind.DYN
        self.exec_ranges: list[tuple[int, int]] = [
            (seg.vaddr, seg.vaddr + len(seg.data))
            for seg in image.segments
            if seg.name in ("text", "plt") and seg.data
        ]
        self.reloc_sites: frozenset[int] = frozenset(
            reloc.vaddr for reloc in image.dynamic_relocs
        )
        self._ro_segments = [
            seg for seg in image.segments
            if "w" not in seg.perms and seg.name not in ("text", "plt")
            and seg.data
        ]

    def in_code(self, value: int) -> bool:
        return any(lo <= value < hi for lo, hi in self.exec_ranges)

    def load_qword(self, address: int) -> ValueSet:
        """Abstract value of an 8-byte load from absolute ``address``."""
        if address in self.reloc_sites:
            # a GOT/relocation word: resolved at load time to an import
            return ValueSet(global_top=True, external=True)
        for seg in self._ro_segments:
            if seg.vaddr <= address and address + 8 <= seg.vaddr + len(seg.data):
                word = int.from_bytes(
                    seg.data[address - seg.vaddr:address - seg.vaddr + 8],
                    "little",
                )
                return ValueSet.const(
                    word, code=self.in_code(word) and not self.pic
                )
        return ValueSet.top()


def _step(
    state: MachineState, decoded: DecodedInstruction, ctx: _ImageContext
) -> MachineState:
    """Abstract semantics of one instruction."""
    mnemonic = decoded.mnemonic
    ops = decoded.instruction.operands

    if mnemonic == "movi":
        value = ops[1] & MASK64
        taint = ctx.in_code(value) and not ctx.pic
        return state.with_reg(ops[0], ValueSet.const(value, taint))
    if mnemonic == "mov":
        return state.with_reg(ops[0], state.reg(ops[1]))
    if mnemonic == "lea":
        target = decoded.end + ops[1]
        return state.with_reg(ops[0], ValueSet.const(target, ctx.in_code(target)))
    if mnemonic in ("ld8", "ld64"):
        address = state.reg(ops[1]).shifted(ops[2])
        if mnemonic == "ld8":
            return state.with_reg(ops[0], ValueSet.interval(0, 255))
        return state.with_reg(ops[0], _load(state, address, ctx))
    if mnemonic in ("st8", "st64"):
        address = state.reg(ops[0]).shifted(ops[2])
        return _store(state, address, state.reg(ops[1]))
    if mnemonic == "push":
        sp = state.reg(SP).shifted(-8)
        state = state.with_reg(SP, sp)
        return _store(state, sp, state.reg(ops[0]))
    if mnemonic == "pop":
        sp = state.reg(SP)
        state = state.with_reg(ops[0], _load(state, sp, ctx))
        return state.with_reg(SP, sp.shifted(8))
    if mnemonic in _BINOPS:
        return state.with_reg(
            ops[0], _BINOPS[mnemonic](state.reg(ops[0]), state.reg(ops[1]))
        )
    if mnemonic in _IMMOPS:
        rhs = ValueSet.const(ops[1] & MASK64)
        return state.with_reg(
            ops[0], _IMMOPS[mnemonic](state.reg(ops[0]), rhs)
        )
    if mnemonic == "neg":
        return state.with_reg(ops[0], ValueSet.const(0).sub(state.reg(ops[0])))
    if mnemonic == "not":
        value = state.reg(ops[0])._binop(
            ValueSet.const(0), lambda a, __: (~a) & MASK64
        )
        return state.with_reg(ops[0], value)
    if mnemonic == "syscall":
        return state.with_reg(0, ValueSet.top()).with_slots({})
    # cmp/cmpi/branches/ret/hlt/nop/int3: no register effect we track
    return state


def _load(state: MachineState, address: ValueSet, ctx: _ImageContext) -> ValueSet:
    parts: list[ValueSet] = []
    if address.stack_top:
        return ValueSet.top()
    if address.stack is not None:
        slots = state.slot_map()
        for offset in address.stack:
            parts.append(slots.get(offset, ValueSet.top()))
    if address.global_top:
        return ValueSet.top()
    if address.consts is not None:
        for target in address.consts:
            parts.append(ctx.load_qword(target))
    elif address.lo is not None:
        return ValueSet.top()
    if not parts:
        return ValueSet.top()
    out = ValueSet.bottom()
    for part in parts:
        out = out.join(part)
    return out


def _store(state: MachineState, address: ValueSet, value: ValueSet) -> MachineState:
    slots = state.slot_map()
    if address.stack_top or address.global_top:
        return state.with_slots({})     # may overwrite any tracked slot
    if address.stack is not None:
        if len(address.stack) == 1 and not address.has_global:
            slots[next(iter(address.stack))] = value            # strong
        else:
            # weak update: an absent slot is already TOP and stays TOP
            for offset in address.stack:
                if offset in slots:
                    slots[offset] = slots[offset].join(value)
    return state.with_slots(slots)


def _divop(a: ValueSet, b: ValueSet, mod: bool) -> ValueSet:
    def op(x: int, y: int) -> int:
        if y == 0:
            return 0
        return (x % y if mod else x // y) & MASK64

    if a.is_finite and b.is_finite:
        return a._binop(b, op)
    return ValueSet(global_top=True, code=a.code or b.code)


_BINOPS = {
    "add": ValueSet.add,
    "sub": ValueSet.sub,
    "mul": lambda a, b: a._binop(b, lambda x, y: (x * y) & MASK64),
    "div": lambda a, b: _divop(a, b, mod=False),
    "mod": lambda a, b: _divop(a, b, mod=True),
    "and": lambda a, b: a._binop(b, lambda x, y: x & y),
    "or": lambda a, b: a._binop(b, lambda x, y: x | y),
    "xor": lambda a, b: a._binop(b, lambda x, y: x ^ y),
    "shl": lambda a, b: a._binop(b, lambda x, y: (x << (y & 63)) & MASK64),
    "shr": lambda a, b: a._binop(b, lambda x, y: x >> (y & 63)),
}

_IMMOPS = {
    "addi": ValueSet.add,
    "subi": ValueSet.sub,
    "muli": _BINOPS["mul"],
    "andi": _BINOPS["and"],
    "ori": _BINOPS["or"],
    "xori": _BINOPS["xor"],
    "shli": _BINOPS["shl"],
    "shri": _BINOPS["shr"],
}


# ----------------------------------------------------------------------
# per-region solving


def _solve_region(
    regions: RegionMap, region: FunctionRegion, ctx: _ImageContext
) -> tuple[dict[int, MachineState], int]:
    """Fixpoint register states at each block entry of ``region``.

    Runs up to three rounds: resolved intra-region ``jmpr`` targets
    (jump tables) found in round N become edges in round N+1.
    """
    extra_edges: dict[int, tuple[int, ...]] = {}
    members = set(region.blocks)
    visits = 0

    def transfer(block: int, state: MachineState) -> MachineState:
        for decoded in regions.decode_block(block):
            state = _step(state, decoded, ctx)
        if block in region.call_blocks:
            state = state.havoc_calls()
        return state

    inputs: dict[int, MachineState] = {}
    for _round in range(3):
        edges = {
            b: tuple(dict.fromkeys(region.edges.get(b, ()) + extra_edges.get(b, ())))
            for b in region.blocks
        }
        problem: DataflowProblem[MachineState] = DataflowProblem(
            direction=Direction.FORWARD,
            boundary=MachineState.entry(),
            join=MachineState.join,
            transfer=transfer,
            equals=lambda a, b: a == b,
            widen=MachineState.widen,
        )
        solution = solve(region.blocks, edges, [region.entry], problem)
        visits += solution.visits
        inputs = dict(solution.inputs)

        grown = False
        for block in region.blocks:
            state = inputs.get(block)
            if state is None:
                continue
            for decoded in regions.decode_block(block):
                if decoded.mnemonic != "jmpr":
                    continue
                # re-simulate up to the jmpr for its register state
                at_site = _states_at(regions, block, state, ctx)[decoded.address]
                target = at_site.reg(decoded.instruction.operands[0])
                if target.is_finite:
                    intra = tuple(
                        sorted(
                            t for t in (target.consts or frozenset())
                            if t in members
                        )
                    )
                    if intra and intra != extra_edges.get(block, ()):
                        extra_edges[block] = intra
                        grown = True
        if not grown:
            break
    return inputs, visits


def _states_at(
    regions: RegionMap,
    block: int,
    entry_state: MachineState,
    ctx: _ImageContext,
) -> dict[int, MachineState]:
    """Per-instruction input states inside one block."""
    out: dict[int, MachineState] = {}
    state = entry_state
    for decoded in regions.decode_block(block):
        out[decoded.address] = state
        state = _step(state, decoded, ctx)
    return out


# ----------------------------------------------------------------------
# image-level driver


def scan_address_taken(image: SelfImage, cfg: ControlFlowGraph | None = None) -> frozenset[int]:
    """Every code address that materializes as a value somewhere.

    Sources: instruction immediates (``movi``), ``lea`` targets,
    8-byte windows of every non-code segment, and dynamic-relocation
    addends.  Over-approximate by design — indirect control flow can
    only land on an address-taken byte, so missing one would break the
    liveness proofs while an extra one merely costs precision.
    """
    if cfg is None:
        cfg = build_cfg(image)
    ctx = _ImageContext(image)
    regions = RegionMap(image, cfg)
    taken: set[int] = set()
    for block in cfg.block_starts():
        for decoded in regions.decode_block(block):
            if decoded.mnemonic == "movi" and not ctx.pic:
                # in a PIC image a movi constant is absolute and can't
                # name base-relative code; lea targets always can
                value = decoded.instruction.operands[1] & MASK64
                if ctx.in_code(value):
                    taken.add(value)
            lea_target = decoded.lea_target()
            if lea_target is not None and ctx.in_code(lea_target):
                taken.add(lea_target)
    if not ctx.pic:
        for seg in image.segments:
            if seg.name in ("text", "plt") or not seg.data:
                continue
            data = seg.data
            for offset in range(0, len(data) - 7):
                word = int.from_bytes(data[offset:offset + 8], "little")
                if ctx.in_code(word):
                    taken.add(word)
    for reloc in image.dynamic_relocs:
        if reloc.type is DynRelocType.RELATIVE and ctx.in_code(reloc.addend):
            taken.add(reloc.addend)
    return frozenset(taken)


#: digest → flow report; a rewritten text changes the digest, so stale
#: hits are impossible (same invariant as ``repro.analysis.cfg.cached_cfg``)
_FLOW_CACHE: dict[str, FlowReport] = {}
_FLOW_CACHE_LIMIT = 32


def analyze_image_flow(
    image: SelfImage, cfg: ControlFlowGraph | None = None
) -> FlowReport:
    """Run the full value-set analysis over ``image`` (digest-cached)."""
    digest = image_digest(image)
    cached = _FLOW_CACHE.get(digest)
    if cached is not None:
        telemetry.count("dynaflow_cache_hits", image=image.name)
        return cached
    telemetry.count("dynaflow_cache_misses", image=image.name)
    if cfg is None:
        cfg = build_cfg(image)
    ctx = _ImageContext(image)
    regions = RegionMap(image, cfg)
    block_extents = [(b.start, b.end) for b in cfg.blocks]
    report = FlowReport(image.name)

    with telemetry.span("dynaflow.vsa", image=image.name):
        for region in regions.regions:
            states, visits = _solve_region(regions, region, ctx)
            report.solver_visits += visits
            report.blocks_analyzed += len(region.blocks)
            for block in region.blocks:
                entry_state = states.get(block)
                if entry_state is None:
                    continue
                per_insn = _states_at(regions, block, entry_state, ctx)
                for decoded in regions.decode_block(block):
                    state = per_insn[decoded.address]
                    if decoded.mnemonic in ("jmpr", "callr"):
                        report.sites.append(
                            _classify_site(decoded, state, region, ctx)
                        )
                    elif decoded.mnemonic in ("st8", "st64"):
                        ops = decoded.instruction.operands
                        address = state.reg(ops[0]).shifted(ops[2])
                        report.hazards.extend(
                            classify_store(
                                decoded.address, decoded.mnemonic, address,
                                ctx.exec_ranges, block_extents,
                                require_taint=ctx.pic,
                            )
                        )

    report.address_taken = scan_address_taken(image, cfg)
    report.sites.sort(key=lambda s: s.address)
    report.hazards.sort(key=lambda h: (h.address, h.rule))
    telemetry.count("dynaflow_blocks_analyzed", report.blocks_analyzed,
                    image=image.name)
    telemetry.count("dynaflow_solver_visits", report.solver_visits,
                    image=image.name)
    resolved = sum(1 for s in report.sites if s.resolved)
    telemetry.count("dynaflow_indirect_resolved", resolved, image=image.name)
    telemetry.count("dynaflow_indirect_unresolved",
                    len(report.sites) - resolved, image=image.name)
    telemetry.count("dynaflow_store_hazards", len(report.hazards),
                    image=image.name)
    if len(_FLOW_CACHE) >= _FLOW_CACHE_LIMIT:
        _FLOW_CACHE.pop(next(iter(_FLOW_CACHE)))
    _FLOW_CACHE[digest] = report
    return report


def _classify_site(
    decoded: DecodedInstruction,
    state: MachineState,
    region: FunctionRegion,
    ctx: _ImageContext,
) -> IndirectSite:
    value = state.reg(decoded.instruction.operands[0])
    if value.external and not value.is_finite:
        return IndirectSite(
            decoded.address, decoded.mnemonic, region.name,
            external=True, resolved=True,
        )
    if value.is_finite and (value.code or not ctx.pic):
        # in a PIC image only code-derived constants are base-relative;
        # a plain absolute constant's meaning depends on the load base
        targets = tuple(
            sorted(t for t in (value.consts or frozenset()) if ctx.in_code(t))
        )
        return IndirectSite(
            decoded.address, decoded.mnemonic, region.name,
            targets=targets, resolved=True,
        )
    return IndirectSite(decoded.address, decoded.mnemonic, region.name)
