"""Self-modifying-code hazard classification for store instructions.

DynaCut patches code pages *from outside* the process (between dump
and restore); a guest that writes its own text from *inside* breaks
every static proof this package makes — and is exactly the icache-
coherence hazard the DynaJIT superblock cache must invalidate on.  The
value-set client classifies every ``st8``/``st64`` address against the
image's executable ranges and reports:

``DL501``
    The address value-set is finite (or a bounded interval) and
    intersects executable bytes: a definite/probable self-modifying
    store.

``DL502``
    The address is unbounded but *derived from a code pointer* (the
    ``code`` taint survived arithmetic): the store may alias executable
    bytes.  Reported at warning severity — it cannot be proven either
    way.

``DL503``
    A ``DL501`` store lands inside a *recovered CFG block*: the target
    bytes are live decoded instructions, so a cached predecoded form of
    that block would go stale (the DynaJIT invalidation invariant).

Plain unknown addresses (``TOP`` without the code taint) are **not**
flagged: every pointer a server receives from its allocator or its
peers is statically unknown, and flagging them all would make the lint
useless.  The taint rule is the signal/noise line, and it is what the
tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass

from .lattice import ValueSet

#: hazard rule → (lint code, severity)
HAZARD_RULES: dict[str, tuple[str, str]] = {
    "definite": ("DL501", "error"),
    "possible": ("DL502", "warning"),
    "coherence": ("DL503", "error"),
}


@dataclass(frozen=True)
class StoreHazard:
    """One flagged store instruction (addresses are link-base relative)."""

    address: int            # address of the store instruction
    mnemonic: str           # st8 | st64
    rule: str               # definite | possible | coherence
    target_lo: int          # covered target range (inclusive lo)
    target_hi: int          # covered target range (exclusive hi)
    detail: str

    @property
    def code(self) -> str:
        return HAZARD_RULES[self.rule][0]

    @property
    def severity(self) -> str:
        return HAZARD_RULES[self.rule][1]


def classify_store(
    insn_address: int,
    mnemonic: str,
    target: ValueSet,
    exec_ranges: list[tuple[int, int]],
    block_extents: list[tuple[int, int]],
    require_taint: bool = False,
) -> list[StoreHazard]:
    """Hazards for one store whose address value-set is ``target``.

    ``exec_ranges`` are the image's executable ``[lo, hi)`` byte
    ranges; ``block_extents`` the recovered CFG blocks (for DL503).
    ``require_taint`` is set for position-independent images, whose
    executable ranges are load-base-relative: a plain constant cannot
    alias them, so only code-derived (tainted) addresses count.
    """
    hazards: list[StoreHazard] = []
    if require_taint and not target.code:
        return hazards
    width = 1 if mnemonic == "st8" else 8
    overlapping = [
        (lo, hi) for lo, hi in exec_ranges
        if target.may_contain(lo - width + 1, hi)
    ]
    if not overlapping:
        return hazards

    bounds = target.global_bounds()
    if bounds is None:
        # unbounded: only reported at all because the code taint is set
        lo, hi = overlapping[0]
        hazards.append(
            StoreHazard(
                insn_address, mnemonic, "possible", lo, hi,
                "store address derives from a code pointer but is "
                "unbounded; it may alias executable bytes",
            )
        )
        return hazards

    span_lo, span_hi = bounds[0], bounds[1] + width
    hazards.append(
        StoreHazard(
            insn_address, mnemonic, "definite", span_lo, span_hi,
            f"store target set [{span_lo:#x}, {span_hi:#x}) intersects "
            "executable bytes",
        )
    )
    for blk_lo, blk_hi in block_extents:
        if span_lo < blk_hi and blk_lo < span_hi:
            hazards.append(
                StoreHazard(
                    insn_address, mnemonic, "coherence", span_lo, span_hi,
                    f"store rewrites decoded instructions of the live "
                    f"block at {blk_lo:#x}; any cached superblock for it "
                    "goes stale (icache-coherence hazard)",
                )
            )
            break
    return hazards
