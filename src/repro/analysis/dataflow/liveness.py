"""Backward register-liveness analysis over the VM64 CFG.

A register is *live* at a program point when some path from that point
reads it before writing it.  DynaCut uses the result defensively:

* a trap **redirect target** should not read registers that are dead at
  the redirected call site's callers (the replacement would consume
  garbage);
* a block is safe to **wipe** only if nothing live flows out of it —
  for dead-code proofs that's implied, but the analysis lets the core
  report (rather than assume) it.

The analysis is a textbook backward may-analysis on bit-sets: the
lattice is ``frozenset[int]`` under union, transfer is
``USE ∪ (state − DEF)`` computed instruction-by-instruction in reverse.
Call/ret/syscall use the VM64 calling convention: calls read the
argument registers r1–r6 and clobber the caller-saved set; ``ret``
reads the return register r0 and the callee-saved set r7–r10 (the
caller expects them restored) plus sp.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...binfmt.self_format import SelfImage
from ..cfg import ControlFlowGraph, build_cfg
from .framework import DataflowProblem, Direction, solve
from .regions import RegionMap
from .valueset import CALLER_SAVED, FP, SP

RegSet = frozenset[int]

#: registers a call may read (arguments) and always clobbers
CALL_USES: RegSet = frozenset({1, 2, 3, 4, 5, 6, SP})
CALL_DEFS: RegSet = frozenset(CALLER_SAVED)
#: registers whose values must be intact when a function returns
RET_USES: RegSet = frozenset({0, 7, 8, 9, 10, SP})
SYSCALL_USES: RegSet = frozenset({0, 1, 2, 3, 4, 5, 6})

ALL_REGS: RegSet = frozenset(range(16))


def _uses_defs(mnemonic: str, ops: tuple[int, ...]) -> tuple[RegSet, RegSet]:
    """``(USE, DEF)`` register sets for one instruction."""
    if mnemonic == "movi":
        return frozenset(), frozenset({ops[0]})
    if mnemonic in ("mov", "ld8", "ld64"):
        return frozenset({ops[1]}), frozenset({ops[0]})
    if mnemonic in ("st8", "st64"):
        return frozenset({ops[0], ops[1]}), frozenset()
    if mnemonic == "lea":
        return frozenset(), frozenset({ops[0]})
    if mnemonic in ("add", "sub", "mul", "div", "mod",
                    "and", "or", "xor", "shl", "shr"):
        return frozenset({ops[0], ops[1]}), frozenset({ops[0]})
    if mnemonic in ("addi", "subi", "muli", "andi", "ori",
                    "xori", "shli", "shri", "neg", "not"):
        return frozenset({ops[0]}), frozenset({ops[0]})
    if mnemonic == "cmp":
        return frozenset({ops[0], ops[1]}), frozenset()
    if mnemonic == "cmpi":
        return frozenset({ops[0]}), frozenset()
    if mnemonic in ("jmpr", "callr"):
        extra = CALL_USES if mnemonic == "callr" else frozenset()
        defs = CALL_DEFS if mnemonic == "callr" else frozenset()
        return frozenset({ops[0]}) | extra, defs
    if mnemonic == "call":
        return CALL_USES, CALL_DEFS
    if mnemonic == "ret":
        # execution leaves the function: nothing after the ret can read
        # anything, so it kills the whole file before its own uses
        return RET_USES, ALL_REGS
    if mnemonic == "hlt":
        return frozenset(), ALL_REGS
    if mnemonic == "push":
        return frozenset({ops[0], SP}), frozenset({SP})
    if mnemonic == "pop":
        return frozenset({SP}), frozenset({ops[0], SP})
    if mnemonic == "syscall":
        return SYSCALL_USES, frozenset({0})
    # jmp/je/../nop/hlt/int3: no register effect
    return frozenset(), frozenset()


@dataclass(frozen=True)
class LivenessResult:
    """Live register sets at every block boundary of an image."""

    image_name: str
    live_in: dict[int, RegSet]
    live_out: dict[int, RegSet]

    def live_in_of(self, block_start: int) -> RegSet:
        """Live-in of ``block_start``; conservative TOP when unknown."""
        return self.live_in.get(block_start, ALL_REGS)


def block_liveness(
    image: SelfImage, cfg: ControlFlowGraph | None = None
) -> LivenessResult:
    """Solve register liveness per function region of ``image``."""
    if cfg is None:
        cfg = build_cfg(image)
    regions = RegionMap(image, cfg)
    live_in: dict[int, RegSet] = {}
    live_out: dict[int, RegSet] = {}

    for region in regions.regions:
        def transfer(block: int, state: RegSet) -> RegSet:
            for decoded in reversed(regions.decode_block(block)):
                uses, defs = _uses_defs(
                    decoded.mnemonic, decoded.instruction.operands
                )
                state = uses | (state - defs)
            return state

        problem: DataflowProblem[RegSet] = DataflowProblem(
            direction=Direction.BACKWARD,
            # leaving the region: assume everything may still be read
            boundary=ALL_REGS,
            join=lambda a, b: a | b,
            transfer=transfer,
            equals=lambda a, b: a == b,
        )
        exits = sorted(region.exits) or list(region.blocks)
        solution = solve(region.blocks, region.edges, exits, problem)
        # backward: solver "output" is the block's live-in
        for block in region.blocks:
            out = solution.output_of(block)
            inp = solution.input_of(block)
            live_in[block] = out if out is not None else ALL_REGS
            live_out[block] = inp if inp is not None else ALL_REGS
    return LivenessResult(image.name, live_in, live_out)


def live_in_registers(
    image: SelfImage, address: int, cfg: ControlFlowGraph | None = None
) -> RegSet:
    """Live registers on entry to the block starting at ``address``."""
    return block_liveness(image, cfg).live_in_of(address)
