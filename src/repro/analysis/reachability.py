"""Removal-set classification: provably-dead / trap-required / suspect.

DynaCut's tracediff produces *dynamic* removal sets: blocks executed by
undesired features and never by wanted ones.  The runtime verifier
(§3.2.3) discovers false removals only after the restored process traps
on them.  This module moves that judgement before restore, using the
static CFG:

``TRAP_REQUIRED``
    The designated feature entries (the dispatcher arms guarding the
    feature) plus removal records that begin mid-block, where kept code
    in the same static block falls straight into the removed bytes.
    These sites keep their ``int3`` so the trap policy still enforces
    the removal.

``SUSPECT``
    Removed blocks that kept code can still reach *without* crossing a
    trap site — the static signature of a false removal.  Suspicion
    propagates: a removed block reachable only through another suspect
    is itself suspect.  Suspects are dropped from the rewrite and
    reported, instead of being discovered by runtime traps.

``PROVABLY_DEAD``
    Everything else: every kept path to the block crosses a designated
    entry (the cut set *collectively dominates* it), or no kept path
    exists at all.  Once the entries are patched the block can never
    execute, so it is safe to WIPE or unmap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..binfmt.self_format import SelfImage
from ..tracing.drcov import BlockRecord
from .cfg import BasicBlock, ControlFlowGraph, build_cfg
from .dominators import collectively_dominated


class BlockClass(Enum):
    """Static verdict on one removal-set block."""

    PROVABLY_DEAD = "provably-dead"
    TRAP_REQUIRED = "trap-required"
    SUSPECT = "suspect"


@dataclass
class RemovalClassification:
    """Per-record verdicts for one removal set against one binary."""

    module: str
    provably_dead: list[BlockRecord] = field(default_factory=list)
    trap_required: list[BlockRecord] = field(default_factory=list)
    suspect: list[BlockRecord] = field(default_factory=list)
    #: static block starts guarding the provably-dead set
    entry_starts: tuple[int, ...] = ()

    @property
    def removable(self) -> list[BlockRecord]:
        """Blocks that stay in the rewrite: trap sites first, then dead."""
        return self.trap_required + self.provably_dead

    @property
    def counts(self) -> dict[str, int]:
        return {
            "provably_dead": len(self.provably_dead),
            "trap_required": len(self.trap_required),
            "suspect": len(self.suspect),
        }

    def verdict_of(self, record: BlockRecord) -> BlockClass | None:
        if record in self.trap_required:
            return BlockClass.TRAP_REQUIRED
        if record in self.provably_dead:
            return BlockClass.PROVABLY_DEAD
        if record in self.suspect:
            return BlockClass.SUSPECT
        return None


def classify_block_starts(
    cfg: ControlFlowGraph,
    removed_starts: set[int],
    entry_starts: set[int],
) -> dict[int, BlockClass]:
    """Classify removed *static* block starts against the kept graph.

    ``entry_starts`` are the trap-guarded dispatcher arms; every other
    removed start becomes SUSPECT when kept code reaches it without
    crossing an entry, PROVABLY_DEAD otherwise.
    """
    all_starts = cfg.block_starts()
    kept_starts = all_starts - removed_starts
    # blocks whose every kept path crosses the entry cut set …
    guarded = collectively_dominated(cfg.edges, kept_starts, entry_starts)
    # … plus blocks kept code cannot reach at all
    reached = _reachable(cfg.edges, kept_starts)
    verdicts: dict[int, BlockClass] = {}
    for start in removed_starts:
        if start in entry_starts:
            verdicts[start] = BlockClass.TRAP_REQUIRED
        elif start in guarded or start not in reached:
            verdicts[start] = BlockClass.PROVABLY_DEAD
        else:
            verdicts[start] = BlockClass.SUSPECT
    return verdicts


def _reachable(edges, roots) -> set[int]:
    seen: set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(s for s in edges.get(node, ()) if s not in seen)
    return seen


def refine_removal_set(
    binary: SelfImage,
    records: list[BlockRecord],
    entries: list[BlockRecord] | None = None,
    cfg: ControlFlowGraph | None = None,
) -> RemovalClassification:
    """Classify a dynamic removal set for one module.

    ``entries`` are the records chosen as trap sites (the dispatcher
    arms for feature removal).  With no entries — the init-phase case —
    the trap frontier is derived automatically: every removed block
    with a direct edge from kept code becomes TRAP_REQUIRED, so the
    interior is wipe-safe and nothing is suspect.  Records are
    classified by the static blocks they cover; a record spanning
    several static blocks takes the most conservative verdict among
    them.
    """
    if cfg is None:
        cfg = build_cfg(binary)
    entries = entries or []

    removed_starts: set[int] = set()
    for record in records:
        record_end = record.offset + record.size
        for block in _covered_blocks(cfg, record):
            # only blocks *fully* inside the record are removed as
            # block starts; partially covered ones keep a live prefix
            if record.offset <= block.start and block.end <= record_end:
                removed_starts.add(block.start)
    entry_starts = {
        block.start
        for record in entries
        for block in _covered_blocks(cfg, record)
    }
    removed_starts |= entry_starts
    if not entries:
        entry_starts = _frontier(cfg, removed_starts)

    verdicts = classify_block_starts(cfg, removed_starts, entry_starts)

    out = RemovalClassification(
        binary.name, entry_starts=tuple(sorted(entry_starts))
    )
    entry_offsets = {record.offset for record in entries}
    for record in records:
        out_class = _record_verdict(
            cfg, record, verdicts, removed_starts, entry_offsets
        )
        {
            BlockClass.PROVABLY_DEAD: out.provably_dead,
            BlockClass.TRAP_REQUIRED: out.trap_required,
            BlockClass.SUSPECT: out.suspect,
        }[out_class].append(record)
    return out


def _frontier(cfg: ControlFlowGraph, removed_starts: set[int]) -> set[int]:
    """Removed blocks with a direct edge from a kept block."""
    frontier: set[int] = set()
    for start, successors in cfg.edges.items():
        if start in removed_starts:
            continue
        frontier.update(s for s in successors if s in removed_starts)
    return frontier


def _record_verdict(
    cfg: ControlFlowGraph,
    record: BlockRecord,
    verdicts: dict[int, BlockClass],
    removed_starts: set[int],
    entry_offsets: set[int],
) -> BlockClass:
    if record.offset in entry_offsets:
        return BlockClass.TRAP_REQUIRED
    covered = _covered_blocks(cfg, record)
    if not covered:
        # bytes outside every recovered block: nothing provable
        return BlockClass.TRAP_REQUIRED
    worst = BlockClass.PROVABLY_DEAD
    for block in covered:
        if block.start < record.offset and block.start not in removed_starts:
            # the record starts mid-block under a kept prefix that
            # falls straight into the removed bytes
            worst = _meet(worst, BlockClass.TRAP_REQUIRED)
            continue
        verdict = verdicts.get(block.start)
        if verdict is None:
            # partially covered block whose start is kept
            verdict = (
                BlockClass.TRAP_REQUIRED
                if block.start < record.offset
                else BlockClass.SUSPECT
            )
        worst = _meet(worst, verdict)
    return worst


_SEVERITY = {
    BlockClass.PROVABLY_DEAD: 0,
    BlockClass.TRAP_REQUIRED: 1,
    BlockClass.SUSPECT: 2,
}


def _meet(a: BlockClass, b: BlockClass) -> BlockClass:
    return a if _SEVERITY[a] >= _SEVERITY[b] else b


def _covered_blocks(cfg: ControlFlowGraph, record: BlockRecord) -> list[BasicBlock]:
    """Static blocks overlapping the record's byte range, in order."""
    record_end = record.offset + record.size
    return [
        block for block in cfg.blocks
        if block.start < record_end and record.offset < block.end
    ]
