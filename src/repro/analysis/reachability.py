"""Removal-set classification: provably-dead / trap-required / suspect.

DynaCut's tracediff produces *dynamic* removal sets: blocks executed by
undesired features and never by wanted ones.  The runtime verifier
(§3.2.3) discovers false removals only after the restored process traps
on them.  This module moves that judgement before restore, using the
static CFG:

``TRAP_REQUIRED``
    The designated feature entries (the dispatcher arms guarding the
    feature) plus removal records that begin mid-block, where kept code
    in the same static block falls straight into the removed bytes.
    These sites keep their ``int3`` so the trap policy still enforces
    the removal.

``SUSPECT``
    Removed blocks that kept code can still reach *without* crossing a
    trap site — the static signature of a false removal.  Suspicion
    propagates: a removed block reachable only through another suspect
    is itself suspect.  Suspects are dropped from the rewrite and
    reported, instead of being discovered by runtime traps.

``PROVABLY_DEAD``
    Everything else: every kept path to the block crosses a designated
    entry (the cut set *collectively dominates* it), or no kept path
    exists at all.  Once the entries are patched the block can never
    execute, so it is safe to WIPE or unmap.

**Prove mode** (``refine_removal_set(..., prove=True)``) replaces the
legacy assumption that *every kept block is live* with proven liveness
roots from the DynaFlow value-set analysis: the image entry point, the
exports (for ``DYN`` images something outside the module may call
them), and every address-taken code block.  Indirect branches — edges
the static CFG cannot see — are added back from the analysis: resolved
sites get their proven targets, unresolved sites get an edge to every
address-taken block (indirect control flow can only land on an
address-taken value).  A kept block no liveness root reaches is not
evidence of life, so suspects guarded only by unreachable kept code
upgrade to ``PROVABLY_DEAD``.  The mode refuses to run (and falls back
to the legacy classification, recording why) when the analysis finds a
definite self-modifying store or an unresolved indirect site with an
empty address-taken set — in both cases the static CFG itself is not
trustworthy.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from .. import telemetry
from ..binfmt.self_format import ImageKind, SelfImage
from ..tracing.drcov import BlockRecord
from .cfg import BasicBlock, ControlFlowGraph, build_cfg
from .dominators import collectively_dominated

if TYPE_CHECKING:
    from .dataflow.valueset import FlowReport


class BlockClass(Enum):
    """Static verdict on one removal-set block."""

    PROVABLY_DEAD = "provably-dead"
    TRAP_REQUIRED = "trap-required"
    SUSPECT = "suspect"


@dataclass
class RemovalClassification:
    """Per-record verdicts for one removal set against one binary."""

    module: str
    provably_dead: list[BlockRecord] = field(default_factory=list)
    trap_required: list[BlockRecord] = field(default_factory=list)
    suspect: list[BlockRecord] = field(default_factory=list)
    #: static block starts guarding the provably-dead set
    entry_starts: tuple[int, ...] = ()
    #: which classification ran: "legacy", "prove", or "prove-fallback"
    mode: str = "legacy"
    #: why prove mode fell back to legacy, when it did
    fallback_reason: str | None = None
    #: the legacy verdict counts, kept for comparison when prove ran
    legacy_counts: dict[str, int] | None = None
    #: offsets of provably-dead records safe to WIPE: no healable trap
    #: block can fall into their bytes afterwards
    wipe_safe: tuple[int, ...] = ()

    @property
    def removable(self) -> list[BlockRecord]:
        """Blocks that stay in the rewrite: trap sites first, then dead."""
        return self.trap_required + self.provably_dead

    @property
    def counts(self) -> dict[str, int]:
        return {
            "provably_dead": len(self.provably_dead),
            "trap_required": len(self.trap_required),
            "suspect": len(self.suspect),
        }

    def verdict_of(self, record: BlockRecord) -> BlockClass | None:
        if record in self.trap_required:
            return BlockClass.TRAP_REQUIRED
        if record in self.provably_dead:
            return BlockClass.PROVABLY_DEAD
        if record in self.suspect:
            return BlockClass.SUSPECT
        return None

    def wipe_safe_records(self) -> list[BlockRecord]:
        """The provably-dead records whose bytes may be wiped."""
        safe = set(self.wipe_safe)
        return [r for r in self.provably_dead if r.offset in safe]

    def to_dict(self) -> dict[str, object]:
        """Deterministic JSON-ready form (sorted addresses, stable keys)."""
        def _records(records: list[BlockRecord]) -> list[dict[str, int]]:
            return [
                {"offset": r.offset, "size": r.size}
                for r in sorted(records, key=lambda r: (r.offset, r.size))
            ]

        out: dict[str, object] = {
            "module": self.module,
            "mode": self.mode,
            "counts": self.counts,
            "entry_starts": sorted(self.entry_starts),
            "provably_dead": _records(self.provably_dead),
            "trap_required": _records(self.trap_required),
            "suspect": _records(self.suspect),
            "wipe_safe": sorted(self.wipe_safe),
        }
        if self.fallback_reason is not None:
            out["fallback_reason"] = self.fallback_reason
        if self.legacy_counts is not None:
            out["legacy_counts"] = dict(sorted(self.legacy_counts.items()))
        return out


def classify_block_starts(
    cfg: ControlFlowGraph,
    removed_starts: set[int],
    entry_starts: set[int],
    roots: set[int] | None = None,
    extra_edges: Mapping[int, tuple[int, ...]] | None = None,
) -> dict[int, BlockClass]:
    """Classify removed *static* block starts against the kept graph.

    ``entry_starts`` are the trap-guarded dispatcher arms; every other
    removed start becomes SUSPECT when kept code reaches it without
    crossing an entry, PROVABLY_DEAD otherwise.

    By default every kept block counts as live.  ``roots`` restricts
    liveness to blocks reachable from the given proven-live starts
    (prove mode); ``extra_edges`` adds indirect-branch edges the static
    CFG recovery could not see.
    """
    all_starts = cfg.block_starts()
    kept_starts = all_starts - removed_starts
    edges = _merge_edges(cfg.edges, extra_edges)
    sources = kept_starts if roots is None else (roots & kept_starts)
    # blocks whose every kept path crosses the entry cut set …
    guarded = collectively_dominated(edges, sources, entry_starts)
    # … plus blocks live code cannot reach at all
    reached = _reachable(edges, sources)
    verdicts: dict[int, BlockClass] = {}
    for start in removed_starts:
        if start in entry_starts:
            verdicts[start] = BlockClass.TRAP_REQUIRED
        elif start in guarded or start not in reached:
            verdicts[start] = BlockClass.PROVABLY_DEAD
        else:
            verdicts[start] = BlockClass.SUSPECT
    return verdicts


def _merge_edges(
    edges: Mapping[int, tuple[int, ...]],
    extra: Mapping[int, tuple[int, ...]] | None,
) -> Mapping[int, tuple[int, ...]]:
    if not extra:
        return edges
    merged = dict(edges)
    for start, targets in extra.items():
        merged[start] = tuple(dict.fromkeys(merged.get(start, ()) + targets))
    return merged


def _reachable(
    edges: Mapping[int, tuple[int, ...]], roots: Iterable[int]
) -> set[int]:
    seen: set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(s for s in edges.get(node, ()) if s not in seen)
    return seen


def refine_removal_set(
    binary: SelfImage,
    records: list[BlockRecord],
    entries: list[BlockRecord] | None = None,
    cfg: ControlFlowGraph | None = None,
    prove: bool = False,
) -> RemovalClassification:
    """Classify a dynamic removal set for one module.

    ``entries`` are the records chosen as trap sites (the dispatcher
    arms for feature removal).  With no entries — the init-phase case —
    the trap frontier is derived automatically: every removed block
    with a direct edge from kept code becomes TRAP_REQUIRED, so the
    interior is wipe-safe and nothing is suspect.  Records are
    classified by the static blocks they cover; a record spanning
    several static blocks takes the most conservative verdict among
    them.

    ``prove=True`` runs the DynaFlow value-set analysis first and
    classifies against *proven* liveness roots and the augmented edge
    map (see the module docstring).  The result's ``mode`` records
    whether the proof ran, fell back, or was never requested.
    """
    if cfg is None:
        cfg = build_cfg(binary)
    entries = entries or []

    removed_starts: set[int] = set()
    for record in records:
        record_end = record.offset + record.size
        for block in _covered_blocks(cfg, record):
            # only blocks *fully* inside the record are removed as
            # block starts; partially covered ones keep a live prefix
            if record.offset <= block.start and block.end <= record_end:
                removed_starts.add(block.start)
    entry_starts = {
        block.start
        for record in entries
        for block in _covered_blocks(cfg, record)
    }
    removed_starts |= entry_starts

    mode = "legacy"
    fallback_reason: str | None = None
    roots: set[int] | None = None
    extra_edges: dict[int, tuple[int, ...]] | None = None
    if prove:
        from .dataflow.valueset import analyze_image_flow

        flow = analyze_image_flow(binary, cfg)
        fallback_reason = _prove_obstacle(flow)
        if fallback_reason is None:
            mode = "prove"
            extra_edges = _indirect_edges(cfg, flow)
            roots = _liveness_roots(binary, cfg, flow)
        else:
            mode = "prove-fallback"
            telemetry.count(
                "dynaflow_prove_fallbacks", image=binary.name
            )

    if not entries:
        # the frontier must see the indirect edges too: a kept jmpr
        # into the removed interior is a kept path the plain CFG misses
        entry_starts = _frontier(cfg, removed_starts, extra_edges)

    verdicts = classify_block_starts(
        cfg, removed_starts, entry_starts, roots=roots, extra_edges=extra_edges
    )

    out = RemovalClassification(
        binary.name,
        entry_starts=tuple(sorted(entry_starts)),
        mode=mode,
        fallback_reason=fallback_reason,
    )
    entry_offsets = {record.offset for record in entries}
    for record in sorted(records, key=lambda r: (r.offset, r.size)):
        out_class = _record_verdict(
            cfg, record, verdicts, removed_starts, entry_offsets
        )
        {
            BlockClass.PROVABLY_DEAD: out.provably_dead,
            BlockClass.TRAP_REQUIRED: out.trap_required,
            BlockClass.SUSPECT: out.suspect,
        }[out_class].append(record)

    if mode == "prove":
        legacy_verdicts = classify_block_starts(
            cfg, removed_starts, entry_starts
        )
        legacy = {"provably_dead": 0, "trap_required": 0, "suspect": 0}
        for record in records:
            verdict = _record_verdict(
                cfg, record, legacy_verdicts, removed_starts, entry_offsets
            )
            legacy[verdict.name.lower()] += 1
        out.legacy_counts = legacy
        upgraded = len(out.suspect) - legacy["suspect"]
        telemetry.count(
            "dynaflow_suspects_upgraded", max(0, -upgraded),
            image=binary.name,
        )

    out.wipe_safe = _wipe_safe_offsets(cfg, out, verdicts, extra_edges)
    return out


def _prove_obstacle(flow: "FlowReport") -> str | None:
    """Why prove mode cannot trust the static CFG, or None."""
    hazards = flow.definite_hazards
    if hazards:
        worst = hazards[0]
        return (
            f"{worst.code}: definite self-modifying store at "
            f"{worst.address:#x} — the text the proof reasons over may "
            "change at run time"
        )
    if flow.unresolved_sites() and not flow.address_taken:
        site = flow.unresolved_sites()[0]
        return (
            f"unresolved indirect branch at {site.address:#x} with an "
            "empty address-taken set — its targets cannot be bounded"
        )
    return None


def _indirect_edges(
    cfg: ControlFlowGraph, flow: "FlowReport"
) -> dict[int, tuple[int, ...]]:
    """Edges from indirect-branch blocks to their possible targets.

    Resolved sites contribute their proven targets; unresolved sites
    contribute the entire address-taken set (indirect control flow can
    only land on an address-taken value); external sites leave the
    module and contribute nothing.
    """
    block_of = _block_lookup(cfg)
    taken_blocks = tuple(sorted(
        {b for a in flow.address_taken if (b := block_of(a)) is not None}
    ))
    extra: dict[int, tuple[int, ...]] = {}
    for site in flow.sites:
        source = block_of(site.address)
        if source is None or site.external:
            continue
        if site.resolved:
            targets = tuple(sorted(
                {b for t in site.targets if (b := block_of(t)) is not None}
            ))
        else:
            targets = taken_blocks
        if targets:
            extra[source] = tuple(
                dict.fromkeys(extra.get(source, ()) + targets)
            )
    return extra


def _liveness_roots(
    binary: SelfImage, cfg: ControlFlowGraph, flow: "FlowReport"
) -> set[int]:
    """Block starts proven (assumed) live before any removal.

    The image entry, every address-taken block, and — for ``DYN``
    images only — the exports: something outside a shared object may
    call any global symbol, while an ``EXEC`` image's exports are only
    reachable from within.
    """
    block_of = _block_lookup(cfg)
    roots: set[int] = set()
    entry_block = block_of(binary.entry)
    if entry_block is not None:
        roots.add(entry_block)
    for address in flow.address_taken:
        block = block_of(address)
        if block is not None:
            roots.add(block)
    if binary.kind is ImageKind.DYN:
        for sym in binary.exports().values():
            block = block_of(sym.vaddr)
            if block is not None:
                roots.add(block)
    return roots


_BlockOf = Callable[[int], "int | None"]  # address → containing block start


def _block_lookup(cfg: ControlFlowGraph) -> _BlockOf:
    starts = sorted(b.start for b in cfg.blocks)
    ends = {b.start: b.end for b in cfg.blocks}

    def lookup(address: int) -> int | None:
        index = bisect_right(starts, address) - 1
        if index < 0:
            return None
        start = starts[index]
        return start if address < ends[start] else None

    return lookup


def _wipe_safe_offsets(
    cfg: ControlFlowGraph,
    classification: RemovalClassification,
    verdicts: dict[int, BlockClass],
    extra_edges: Mapping[int, tuple[int, ...]] | None,
) -> tuple[int, ...]:
    """Provably-dead records whose bytes may be wiped outright.

    Under the VERIFY trap policy a TRAP_REQUIRED site can *heal* and
    resume; execution then continues along its successors.  A dead
    block on such a path would run wiped bytes, so only dead records
    unreachable from every trap block are wipe-safe.
    """
    edges = _merge_edges(cfg.edges, extra_edges)
    trap_starts = [
        start for start, verdict in verdicts.items()
        if verdict is BlockClass.TRAP_REQUIRED
    ]
    downstream: set[int] = set()
    for start in trap_starts:
        downstream |= _reachable(edges, edges.get(start, ()))
    safe: list[int] = []
    for record in classification.provably_dead:
        record_end = record.offset + record.size
        covered = [
            block.start for block in _covered_blocks(cfg, record)
            if record.offset <= block.start and block.end <= record_end
        ]
        if covered and not any(start in downstream for start in covered):
            safe.append(record.offset)
    return tuple(sorted(safe))


def _frontier(
    cfg: ControlFlowGraph,
    removed_starts: set[int],
    extra_edges: Mapping[int, tuple[int, ...]] | None = None,
) -> set[int]:
    """Removed blocks with a direct edge from a kept block."""
    edges = _merge_edges(cfg.edges, extra_edges)
    frontier: set[int] = set()
    for start, successors in edges.items():
        if start in removed_starts:
            continue
        frontier.update(s for s in successors if s in removed_starts)
    return frontier


def _record_verdict(
    cfg: ControlFlowGraph,
    record: BlockRecord,
    verdicts: dict[int, BlockClass],
    removed_starts: set[int],
    entry_offsets: set[int],
) -> BlockClass:
    if record.offset in entry_offsets:
        return BlockClass.TRAP_REQUIRED
    covered = _covered_blocks(cfg, record)
    if not covered:
        # bytes outside every recovered block: nothing provable
        return BlockClass.TRAP_REQUIRED
    worst = BlockClass.PROVABLY_DEAD
    for block in covered:
        if block.start < record.offset and block.start not in removed_starts:
            # the record starts mid-block under a kept prefix that
            # falls straight into the removed bytes
            worst = _meet(worst, BlockClass.TRAP_REQUIRED)
            continue
        verdict = verdicts.get(block.start)
        if verdict is None:
            # partially covered block whose start is kept
            verdict = (
                BlockClass.TRAP_REQUIRED
                if block.start < record.offset
                else BlockClass.SUSPECT
            )
        worst = _meet(worst, verdict)
    return worst


_SEVERITY = {
    BlockClass.PROVABLY_DEAD: 0,
    BlockClass.TRAP_REQUIRED: 1,
    BlockClass.SUSPECT: 2,
}


def _meet(a: BlockClass, b: BlockClass) -> BlockClass:
    return a if _SEVERITY[a] >= _SEVERITY[b] else b


def _covered_blocks(cfg: ControlFlowGraph, record: BlockRecord) -> list[BasicBlock]:
    """Static blocks overlapping the record's byte range, in order."""
    record_end = record.offset + record.size
    return [
        block for block in cfg.blocks
        if block.start < record_end and record.offset < block.end
    ]
