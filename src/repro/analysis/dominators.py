"""Dominator analysis over recovered CFGs.

A block ``d`` dominates ``b`` when every path from the analysis roots
to ``b`` passes through ``d``.  DynaLint uses domination to decide when
a removal-set block is *provably dead*: once its guarding trap sites
are patched, no kept path can reach it.

Two primitives are provided:

* :func:`compute_dominators` — the classic iterative immediate-
  dominator algorithm (Cooper/Harvey/Kennedy) over block-start edges,
  generalized to multiple roots through a virtual super-root;
* :func:`collectively_dominated` — the *set* form of domination: the
  blocks every root-path to which crosses a member of a cut set.  A
  single dominating block is the ``len(cutset) == 1`` special case,
  which the tests pin against the dominator tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

#: synthetic super-root used when the analysis has several entry points
VIRTUAL_ROOT = -1

Edges = Mapping[int, tuple[int, ...]]


@dataclass
class DominatorTree:
    """Immediate-dominator tree over block start addresses.

    ``idom`` maps every reachable block to its immediate dominator;
    the root maps to itself.  Unreachable blocks are absent.
    """

    root: int
    idom: dict[int, int]

    def __contains__(self, block: int) -> bool:
        return block in self.idom

    def dominates(self, a: int, b: int) -> bool:
        """True when ``a`` dominates ``b`` (every block dominates itself)."""
        if b not in self.idom or a not in self.idom:
            return False
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom[node]
            if parent == node:
                return False
            node = parent

    def dominators_of(self, block: int) -> list[int]:
        """The dominator chain of ``block``, from itself up to the root."""
        if block not in self.idom:
            return []
        chain = [block]
        while self.idom[chain[-1]] != chain[-1]:
            chain.append(self.idom[chain[-1]])
        return chain

    def dominated_by(self, block: int) -> set[int]:
        """Every block dominated by ``block`` (including itself)."""
        return {b for b in self.idom if self.dominates(block, b)}


def _reverse_postorder(edges: Edges, roots: Iterable[int]) -> list[int]:
    order: list[int] = []
    visited: set[int] = set()
    for root in roots:
        if root in visited:
            continue
        # iterative DFS with an explicit done-marker for postorder
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                order.append(node)
                continue
            if node in visited:
                continue
            visited.add(node)
            stack.append((node, True))
            for succ in edges.get(node, ()):
                if succ not in visited:
                    stack.append((succ, False))
    order.reverse()
    return order


def compute_dominators(edges: Edges, roots: Iterable[int]) -> DominatorTree:
    """Build the dominator tree of the graph reachable from ``roots``.

    With several roots a :data:`VIRTUAL_ROOT` is inserted above them, so
    a block reachable from two roots independently is dominated only by
    the virtual root — exactly the "no single guard" answer the removal
    classifier needs.
    """
    roots = list(dict.fromkeys(roots))
    if not roots:
        return DominatorTree(VIRTUAL_ROOT, {})
    if len(roots) == 1:
        root = roots[0]
        graph: Edges = edges
    else:
        root = VIRTUAL_ROOT
        graph = dict(edges) | {VIRTUAL_ROOT: tuple(roots)}

    order = _reverse_postorder(graph, [root])
    index = {block: i for i, block in enumerate(order)}
    preds: dict[int, list[int]] = {block: [] for block in order}
    for block in order:
        for succ in graph.get(block, ()):
            if succ in index:
                preds[succ].append(block)

    idom: dict[int, int] = {root: root}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block in order:
            if block == root:
                continue
            new_idom: int | None = None
            for pred in preds[block]:
                if pred not in idom:
                    continue
                new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom.get(block) != new_idom:
                idom[block] = new_idom
                changed = True
    return DominatorTree(root, idom)


def collectively_dominated(
    edges: Edges, roots: Iterable[int], cutset: set[int]
) -> set[int]:
    """Blocks whose every path from ``roots`` crosses the ``cutset``.

    Computed as the reachable set minus what stays reachable once the
    cut set stops propagating (members of the cut set are themselves
    reached but not expanded).  Blocks unreachable from the roots
    altogether are *not* reported — the caller decides their fate.
    """
    full = _reachable(edges, roots, stop=set())
    open_reach = _reachable(edges, roots, stop=cutset)
    return (full - open_reach) - cutset


def _reachable(edges: Edges, roots: Iterable[int], stop: set[int]) -> set[int]:
    seen: set[int] = set()
    stack = [r for r in roots]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node in stop:
            continue
        for succ in edges.get(node, ()):
            if succ not in seen:
                stack.append(succ)
    return seen
