"""Static binary analysis: CFG recovery and basic-block discovery."""

from .cfg import BasicBlock, CfgBuilder, ControlFlowGraph, build_cfg, total_basic_blocks
from .plt import executed_plt_entries, plt_entries_in_blocks, plt_entry_at

__all__ = [
    "BasicBlock",
    "CfgBuilder",
    "ControlFlowGraph",
    "build_cfg",
    "executed_plt_entries",
    "plt_entries_in_blocks",
    "plt_entry_at",
    "total_basic_blocks",
]
