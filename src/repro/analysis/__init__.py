"""Static binary analysis: CFG recovery, DynaLint program analyses,
removal-set refinement, and rewritten-image lint."""

from .cfg import (
    BasicBlock,
    CfgBuilder,
    ControlFlowGraph,
    build_cfg,
    cached_cfg,
    image_digest,
    total_basic_blocks,
)
from .plt import executed_plt_entries, plt_entries_in_blocks, plt_entry_at
from .dominators import (
    VIRTUAL_ROOT,
    DominatorTree,
    collectively_dominated,
    compute_dominators,
)
from .callgraph import CallGraph, CallSite, FunctionNode, build_callgraph, owned_functions
from .reachability import (
    BlockClass,
    RemovalClassification,
    classify_block_starts,
    refine_removal_set,
)
from .lint import ImageLinter, LintDiagnostic, LintReport, lint_checkpoint

__all__ = [
    "BasicBlock",
    "BlockClass",
    "CallGraph",
    "CallSite",
    "CfgBuilder",
    "ControlFlowGraph",
    "DominatorTree",
    "FunctionNode",
    "ImageLinter",
    "LintDiagnostic",
    "LintReport",
    "RemovalClassification",
    "VIRTUAL_ROOT",
    "build_callgraph",
    "build_cfg",
    "cached_cfg",
    "classify_block_starts",
    "image_digest",
    "collectively_dominated",
    "compute_dominators",
    "executed_plt_entries",
    "lint_checkpoint",
    "owned_functions",
    "plt_entries_in_blocks",
    "plt_entry_at",
    "refine_removal_set",
    "total_basic_blocks",
]
