"""SELF binary format: relocatable objects, static linker, linked images."""

from .object import (
    EXEC_SECTIONS,
    ObjectModule,
    Relocation,
    RelocType,
    SECTION_ORDER,
    SymbolDef,
    WRITE_SECTIONS,
)
from .self_format import (
    DEFAULT_EXEC_BASE,
    DynReloc,
    DynRelocType,
    ImageKind,
    PAGE_SIZE,
    Segment,
    SelfImage,
    SymbolInfo,
    load_self,
    page_align,
)
from .linker import (
    GOT_SLOT_SIZE,
    LinkError,
    Linker,
    PLT_STUB_SIZE,
    link_executable,
    link_shared,
)

__all__ = [
    "DEFAULT_EXEC_BASE",
    "DynReloc",
    "DynRelocType",
    "EXEC_SECTIONS",
    "GOT_SLOT_SIZE",
    "ImageKind",
    "LinkError",
    "Linker",
    "ObjectModule",
    "PAGE_SIZE",
    "PLT_STUB_SIZE",
    "RelocType",
    "Relocation",
    "SECTION_ORDER",
    "Segment",
    "SelfImage",
    "SymbolDef",
    "SymbolInfo",
    "WRITE_SECTIONS",
    "link_executable",
    "link_shared",
    "load_self",
    "page_align",
]
