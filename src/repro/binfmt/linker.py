"""Static linker: object modules -> SELF executable or shared object.

Responsibilities (mirroring a classic ELF link step):

* merge same-named sections from all input modules, laying sections out
  page-aligned in canonical order (text, plt, rodata, data, got, bss);
* resolve symbols across modules; route unresolved references to the
  exports of the supplied shared libraries (imports);
* synthesize one PLT stub + GOT slot per imported *function* (a
  ``PCREL32``-referenced import), recording the stub/slot addresses in
  the image so DynaCut can later disable individual PLT entries;
* convert ``ABS64`` references into link-time patches (executables) or
  ``RELATIVE``/``GLOB_DAT`` dynamic relocations (shared objects and
  imports), applied by the loader.

PLT stub shape (15 bytes)::

    lea  r11, <got slot>     ; 6 bytes, pc-relative
    ld64 r11, [r11]          ; 7 bytes
    jmpr r11                 ; 2 bytes
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..isa.encoding import encode_fields
from ..isa.instructions import SPEC_BY_MNEMONIC
from .object import EXEC_SECTIONS, ObjectModule, RelocType, SECTION_ORDER
from .self_format import (
    DEFAULT_EXEC_BASE,
    DynReloc,
    DynRelocType,
    ImageKind,
    PAGE_SIZE,
    Segment,
    SelfImage,
    SymbolInfo,
    page_align,
)

PLT_STUB_SIZE = 15
GOT_SLOT_SIZE = 8

_SECTION_PERMS = {
    "text": "r-x",
    "plt": "r-x",
    "rodata": "r--",
    "data": "rw-",
    "got": "rw-",
    "bss": "rw-",
}


class LinkError(ValueError):
    """Raised on unresolved or conflicting symbols, or layout errors."""


@dataclass(frozen=True)
class _Placement:
    """Where a module's chunk of a section landed in the merged section."""

    module: str
    section: str
    offset: int


class Linker:
    """Links object modules against optional shared libraries."""

    def __init__(
        self,
        modules: list[ObjectModule],
        name: str,
        kind: ImageKind,
        libraries: list[SelfImage] | None = None,
        base: int | None = None,
    ):
        if not modules:
            raise LinkError("no input modules")
        self.modules = modules
        self.name = name
        self.kind = kind
        self.libraries = libraries or []
        if base is None:
            base = DEFAULT_EXEC_BASE if kind is ImageKind.EXEC else 0
        if base % PAGE_SIZE:
            raise LinkError(f"link base {base:#x} is not page aligned")
        self.base = base

        # module name -> section name -> offset in merged section
        self._placement: dict[tuple[str, str], int] = {}
        self._merged: dict[str, bytearray] = {}
        self._bss_size = 0
        self._section_vaddr: dict[str, int] = {}
        self._symbols: dict[str, SymbolInfo] = {}
        # symbol name (per module scope) resolution happens via
        # _resolve(module, name).
        self._lib_exports: dict[str, tuple[str, SymbolInfo]] = {}
        self._plt: dict[str, int] = {}
        self._got: dict[str, int] = {}
        self._dyn_relocs: list[DynReloc] = []
        self._needed: set[str] = set()

    # ------------------------------------------------------------------

    def link(self) -> SelfImage:
        self._index_library_exports()
        self._merge_sections()
        self._collect_imports()
        self._layout()
        self._finalize_symbols()
        self._emit_plt_got()
        self._apply_relocations()
        return self._build_image()

    # ------------------------------------------------------------------

    def _index_library_exports(self) -> None:
        for lib in self.libraries:
            for sym_name, info in lib.exports().items():
                # first library wins, like traditional link order
                self._lib_exports.setdefault(sym_name, (lib.name, info))

    def _merge_sections(self) -> None:
        seen_modules: set[str] = set()
        for module in self.modules:
            if module.name in seen_modules:
                raise LinkError(f"duplicate module name {module.name!r}")
            seen_modules.add(module.name)
            for section in SECTION_ORDER:
                if section in ("plt", "got"):
                    continue
                if section == "bss":
                    self._bss_size = -(-self._bss_size // 16) * 16
                    self._placement[(module.name, "bss")] = self._bss_size
                    self._bss_size += module.bss_size
                    continue
                data = module.sections.get(section)
                if data is None:
                    continue
                merged = self._merged.setdefault(section, bytearray())
                pad = (-len(merged)) % 16
                merged += (b"\x90" if section in EXEC_SECTIONS else b"\x00") * pad
                self._placement[(module.name, section)] = len(merged)
                merged += data

    def _defined_global(self, name: str) -> tuple[ObjectModule, int] | None:
        """Find the module defining global ``name``; None if absent."""
        found = None
        for module in self.modules:
            sym = module.symbols.get(name)
            if sym is not None and sym.is_global:
                if found is not None:
                    raise LinkError(f"duplicate global symbol {name!r}")
                found = module
        if found is None:
            return None
        return found, 0

    def _collect_imports(self) -> None:
        """Determine which symbols come from libraries, and which need PLT."""
        global_defs: dict[str, str] = {}
        for module in self.modules:
            for sym in module.symbols.values():
                if sym.is_global:
                    if sym.name in global_defs:
                        raise LinkError(
                            f"duplicate global symbol {sym.name!r} in "
                            f"{global_defs[sym.name]!r} and {module.name!r}"
                        )
                    global_defs[sym.name] = module.name
        self._global_defs = global_defs

        plt_names: set[str] = set()
        for module in self.modules:
            for reloc in module.relocations:
                if reloc.symbol in module.symbols:
                    continue
                if reloc.symbol in global_defs:
                    continue
                if reloc.symbol in self._lib_exports:
                    lib_name, info = self._lib_exports[reloc.symbol]
                    self._needed.add(lib_name)
                    if reloc.type is RelocType.PCREL32:
                        if not info.is_function:
                            raise LinkError(
                                f"pc-relative reference to imported data "
                                f"symbol {reloc.symbol!r}"
                            )
                        plt_names.add(reloc.symbol)
                    continue
                raise LinkError(
                    f"undefined symbol {reloc.symbol!r} "
                    f"(referenced from {module.name!r})"
                )
        self._plt_names = sorted(plt_names)

    def _layout(self) -> None:
        sizes = {
            "text": len(self._merged.get("text", b"")),
            "plt": PLT_STUB_SIZE * len(self._plt_names),
            "rodata": len(self._merged.get("rodata", b"")),
            "data": len(self._merged.get("data", b"")),
            "got": GOT_SLOT_SIZE * len(self._plt_names),
            "bss": self._bss_size,
        }
        cursor = self.base
        for section in SECTION_ORDER:
            if sizes[section] == 0:
                continue
            vaddr = page_align(cursor) if cursor != self.base else cursor
            self._section_vaddr[section] = vaddr
            cursor = vaddr + sizes[section]
        self._sizes = sizes

    def _module_section_vaddr(self, module: str, section: str) -> int:
        key = (module, section)
        if key not in self._placement or section not in self._section_vaddr:
            raise LinkError(f"module {module!r} has no section {section!r}")
        return self._section_vaddr[section] + self._placement[key]

    def _finalize_symbols(self) -> None:
        for module in self.modules:
            for sym in module.symbols.values():
                if sym.name in self._symbols:
                    # duplicate locals across modules: keep first, they are
                    # only reachable from their own module's relocations,
                    # which _resolve handles per-module.
                    if sym.is_global:
                        raise LinkError(f"duplicate symbol {sym.name!r}")
                    continue
                vaddr = self._module_section_vaddr(module.name, sym.section) + sym.offset
                self._symbols[sym.name] = SymbolInfo(
                    sym.name, vaddr, sym.is_function, sym.is_global, sym.size
                )

    def _resolve(self, module: ObjectModule, name: str) -> int | None:
        """Final vaddr of ``name`` as seen from ``module``; None if import."""
        sym = module.symbols.get(name)
        if sym is not None:
            return self._module_section_vaddr(module.name, sym.section) + sym.offset
        if name in self._global_defs:
            defining = self._global_defs[name]
            for candidate in self.modules:
                if candidate.name == defining:
                    target = candidate.symbols[name]
                    return (
                        self._module_section_vaddr(defining, target.section)
                        + target.offset
                    )
        return None

    def _emit_plt_got(self) -> None:
        if not self._plt_names:
            return
        plt_base = self._section_vaddr["plt"]
        got_base = self._section_vaddr["got"]
        lea = SPEC_BY_MNEMONIC["lea"]
        ld64 = SPEC_BY_MNEMONIC["ld64"]
        jmpr = SPEC_BY_MNEMONIC["jmpr"]
        stubs = bytearray()
        for index, name in enumerate(self._plt_names):
            stub_vaddr = plt_base + index * PLT_STUB_SIZE
            got_slot = got_base + index * GOT_SLOT_SIZE
            self._plt[name] = stub_vaddr
            self._got[name] = got_slot
            # lea r11, <got_slot>: rel32 relative to end of the 6-byte lea
            stubs += encode_fields(lea, (11, got_slot - (stub_vaddr + lea.length)))
            stubs += encode_fields(ld64, (11, 11, 0))
            stubs += encode_fields(jmpr, (11,))
            self._dyn_relocs.append(
                DynReloc(got_slot, DynRelocType.GLOB_DAT, name, 0)
            )
        self._merged["plt"] = stubs
        self._merged["got"] = bytearray(GOT_SLOT_SIZE * len(self._plt_names))

    def _apply_relocations(self) -> None:
        for module in self.modules:
            for reloc in module.relocations:
                merged = self._merged[reloc.section]
                site = self._placement[(module.name, reloc.section)] + reloc.offset
                site_vaddr = self._section_vaddr[reloc.section] + site
                target = self._resolve(module, reloc.symbol)
                if reloc.type is RelocType.PCREL32:
                    if target is None:
                        target = self._plt[reloc.symbol]
                    value = target + reloc.addend - (site_vaddr + 4)
                    if not -(1 << 31) <= value < (1 << 31):
                        raise LinkError(
                            f"pc-relative overflow for {reloc.symbol!r}"
                        )
                    merged[site:site + 4] = struct.pack("<i", value)
                else:  # ABS64
                    if target is None:
                        self._dyn_relocs.append(
                            DynReloc(
                                site_vaddr, DynRelocType.GLOB_DAT,
                                reloc.symbol, reloc.addend,
                            )
                        )
                    elif self.kind is ImageKind.EXEC:
                        merged[site:site + 8] = struct.pack(
                            "<Q", (target + reloc.addend) & ((1 << 64) - 1)
                        )
                    else:
                        self._dyn_relocs.append(
                            DynReloc(
                                site_vaddr, DynRelocType.RELATIVE, "",
                                target + reloc.addend - self.base,
                            )
                        )

    def _build_image(self) -> SelfImage:
        segments = []
        for section in SECTION_ORDER:
            if self._sizes[section] == 0:
                continue
            vaddr = self._section_vaddr[section]
            if section == "bss":
                segments.append(Segment("bss", vaddr, b"", self._sizes["bss"], "rw-"))
            else:
                data = bytes(self._merged.get(section, b""))
                segments.append(
                    Segment(section, vaddr, data, len(data), _SECTION_PERMS[section])
                )
        entry = 0
        if self.kind is ImageKind.EXEC:
            start = self._symbols.get("_start")
            if start is None:
                raise LinkError("executable has no _start symbol")
            entry = start.vaddr
        return SelfImage(
            name=self.name,
            kind=self.kind,
            base=self.base,
            entry=entry,
            segments=segments,
            symbols=self._symbols,
            dynamic_relocs=self._dyn_relocs,
            plt_entries=self._plt,
            got_entries=self._got,
            needed=sorted(self._needed),
        )


def link_executable(
    modules: list[ObjectModule],
    name: str,
    libraries: list[SelfImage] | None = None,
    base: int = DEFAULT_EXEC_BASE,
) -> SelfImage:
    """Link ``modules`` into an executable SELF image."""
    return Linker(modules, name, ImageKind.EXEC, libraries, base).link()


def link_shared(
    modules: list[ObjectModule],
    name: str,
    libraries: list[SelfImage] | None = None,
) -> SelfImage:
    """Link ``modules`` into a position-independent shared object."""
    return Linker(modules, name, ImageKind.DYN, libraries, base=0).link()
