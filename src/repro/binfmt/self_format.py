"""SELF — the Simulated ELF binary format.

A linked VM64 binary.  SELF keeps the ELF concepts DynaCut's pipeline
touches:

* loadable **segments** with page-aligned virtual addresses and
  ``rwx`` permissions (text/plt are ``r-x``, rodata ``r--``, data/got
  ``rw-``, bss ``rw-`` with zero-filled tail);
* a **symbol table** (function starts feed the static CFG recovery);
* **dynamic relocations** applied by the loader (``RELATIVE`` for
  position-independent data, ``GLOB_DAT`` for imports);
* a **PLT/GOT map** so "disable the PLT entry for fork()" is a
  first-class operation;
* a ``needed`` list naming the shared libraries to load.

Images serialize to a compact binary file (magic ``SELF``), and
:func:`load_self`/:meth:`SelfImage.to_bytes` round-trip exactly — the
CRIU-style injector parses signal-handler libraries from these bytes
the way the paper uses pyelftools.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .serde import ByteReader, ByteWriter

MAGIC = b"SELF\x01"

PAGE_SIZE = 4096

#: Default link base for executables (mirrors the classic x86-64 base).
DEFAULT_EXEC_BASE = 0x400000


class ImageKind(Enum):
    EXEC = "exec"
    DYN = "dyn"


class DynRelocType(Enum):
    """Dynamic relocation kinds applied at load time."""

    RELATIVE = "relative"   # *site = load_base + addend
    GLOB_DAT = "glob_dat"   # *site = resolve(symbol) + addend


@dataclass(frozen=True)
class Segment:
    """One loadable region."""

    name: str
    vaddr: int
    data: bytes
    memsize: int        # >= len(data); excess is zero-filled (bss)
    perms: str          # e.g. "r-x"

    @property
    def end(self) -> int:
        return self.vaddr + self.memsize

    def contains(self, address: int) -> bool:
        return self.vaddr <= address < self.end


@dataclass(frozen=True)
class SymbolInfo:
    """A linked symbol: final virtual address relative to the link base."""

    name: str
    vaddr: int
    is_function: bool
    is_global: bool
    size: int = 0


@dataclass(frozen=True)
class DynReloc:
    """A load-time relocation at virtual address ``vaddr``."""

    vaddr: int
    type: DynRelocType
    symbol: str          # empty for RELATIVE
    addend: int


@dataclass
class SelfImage:
    """A linked SELF binary (executable or shared object)."""

    name: str
    kind: ImageKind
    base: int
    entry: int
    segments: list[Segment] = field(default_factory=list)
    symbols: dict[str, SymbolInfo] = field(default_factory=dict)
    dynamic_relocs: list[DynReloc] = field(default_factory=list)
    plt_entries: dict[str, int] = field(default_factory=dict)
    got_entries: dict[str, int] = field(default_factory=dict)
    needed: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # queries

    def segment(self, name: str) -> Segment:
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(f"{self.name}: no segment {name!r}")

    def has_segment(self, name: str) -> bool:
        return any(seg.name == name for seg in self.segments)

    def text_range(self) -> tuple[int, int]:
        """[start, end) of the text segment (link-base relative)."""
        seg = self.segment("text")
        return seg.vaddr, seg.vaddr + len(seg.data)

    def exports(self) -> dict[str, SymbolInfo]:
        """Global symbols importable by other modules."""
        return {n: s for n, s in self.symbols.items() if s.is_global}

    def functions(self) -> dict[str, SymbolInfo]:
        return {n: s for n, s in self.symbols.items() if s.is_function}

    def symbol_address(self, name: str) -> int:
        try:
            return self.symbols[name].vaddr
        except KeyError:
            raise KeyError(f"{self.name}: undefined symbol {name!r}") from None

    def code_size(self) -> int:
        """Bytes of machine code (text + plt)."""
        total = 0
        for seg in self.segments:
            if seg.name in ("text", "plt"):
                total += len(seg.data)
        return total

    def read_bytes(self, vaddr: int, size: int) -> bytes:
        """Read image bytes by (link-base-relative) virtual address."""
        for seg in self.segments:
            if seg.contains(vaddr):
                offset = vaddr - seg.vaddr
                chunk = seg.data[offset:offset + size]
                if len(chunk) < size:
                    chunk += b"\x00" * (size - len(chunk))
                return chunk
        raise ValueError(f"{self.name}: address {vaddr:#x} not in any segment")

    # ------------------------------------------------------------------
    # serialization

    def to_bytes(self) -> bytes:
        w = ByteWriter()
        w.raw(MAGIC)
        w.string(self.name)
        w.string(self.kind.value)
        w.u64(self.base)
        w.u64(self.entry)
        w.u32(len(self.segments))
        for seg in self.segments:
            w.string(seg.name).u64(seg.vaddr).blob(seg.data)
            w.u64(seg.memsize).string(seg.perms)
        w.u32(len(self.symbols))
        for sym in self.symbols.values():
            w.string(sym.name).u64(sym.vaddr)
            w.u8(1 if sym.is_function else 0).u8(1 if sym.is_global else 0)
            w.u64(sym.size)
        w.u32(len(self.dynamic_relocs))
        for rel in self.dynamic_relocs:
            w.u64(rel.vaddr).string(rel.type.value).string(rel.symbol)
            w.i64(rel.addend)
        w.u32(len(self.plt_entries))
        for name, vaddr in self.plt_entries.items():
            w.string(name).u64(vaddr)
        w.u32(len(self.got_entries))
        for name, vaddr in self.got_entries.items():
            w.string(name).u64(vaddr)
        w.u32(len(self.needed))
        for lib in self.needed:
            w.string(lib)
        return w.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "SelfImage":
        if data[: len(MAGIC)] != MAGIC:
            raise ValueError("not a SELF image (bad magic)")
        r = ByteReader(data, len(MAGIC))
        name = r.string()
        kind = ImageKind(r.string())
        base = r.u64()
        entry = r.u64()
        segments = []
        for _ in range(r.u32()):
            seg_name = r.string()
            vaddr = r.u64()
            seg_data = r.blob()
            memsize = r.u64()
            perms = r.string()
            segments.append(Segment(seg_name, vaddr, seg_data, memsize, perms))
        symbols = {}
        for _ in range(r.u32()):
            sym_name = r.string()
            vaddr = r.u64()
            is_function = bool(r.u8())
            is_global = bool(r.u8())
            size = r.u64()
            symbols[sym_name] = SymbolInfo(sym_name, vaddr, is_function, is_global, size)
        relocs = []
        for _ in range(r.u32()):
            vaddr = r.u64()
            rtype = DynRelocType(r.string())
            symbol = r.string()
            addend = r.i64()
            relocs.append(DynReloc(vaddr, rtype, symbol, addend))
        plt = {}
        for _ in range(r.u32()):
            plt_name = r.string()
            plt[plt_name] = r.u64()
        got = {}
        for _ in range(r.u32()):
            got_name = r.string()
            got[got_name] = r.u64()
        needed = [r.string() for _ in range(r.u32())]
        return cls(
            name=name, kind=kind, base=base, entry=entry, segments=segments,
            symbols=symbols, dynamic_relocs=relocs, plt_entries=plt,
            got_entries=got, needed=needed,
        )


def load_self(data: bytes) -> SelfImage:
    """Parse SELF bytes (pyelftools-equivalent entry point)."""
    return SelfImage.from_bytes(data)


def page_align(value: int) -> int:
    """Round ``value`` up to the next page boundary."""
    return -(-value // PAGE_SIZE) * PAGE_SIZE
