"""Minimal binary serialization helpers.

A tiny, dependency-free writer/reader pair used by the SELF binary
format and the CRIU-style image files.  All integers are little-endian;
strings are UTF-8 with a u32 length prefix — the same flavour of
length-prefixed encoding protobuf wire format uses, without the
varint complication.
"""

from __future__ import annotations

import struct


class ByteWriter:
    """Append-only binary writer."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def u8(self, value: int) -> "ByteWriter":
        self._buf += struct.pack("<B", value)
        return self

    def u32(self, value: int) -> "ByteWriter":
        self._buf += struct.pack("<I", value)
        return self

    def u64(self, value: int) -> "ByteWriter":
        self._buf += struct.pack("<Q", value & ((1 << 64) - 1))
        return self

    def i64(self, value: int) -> "ByteWriter":
        self._buf += struct.pack("<q", value)
        return self

    def string(self, value: str) -> "ByteWriter":
        data = value.encode("utf-8")
        self.u32(len(data))
        self._buf += data
        return self

    def blob(self, value: bytes) -> "ByteWriter":
        self.u32(len(value))
        self._buf += value
        return self

    def raw(self, value: bytes) -> "ByteWriter":
        self._buf += value
        return self

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class ByteReader:
    """Sequential binary reader over a bytes object."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._pos = offset

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise ValueError(
                f"truncated stream: need {count} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos:self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def string(self) -> str:
        return self._take(self.u32()).decode("utf-8")

    def blob(self) -> bytes:
        return self._take(self.u32())

    def raw(self, count: int) -> bytes:
        return self._take(count)

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)

    @property
    def position(self) -> int:
        return self._pos
