"""Relocatable object modules produced by the VM64 assembler.

An :class:`ObjectModule` is the unit the static linker consumes: named
sections of raw bytes, symbol definitions, and relocations against
symbols that may live in this module, another module, or a shared
library.  The model intentionally mirrors ELF's ``.o`` structure so the
linker, loader, and DynaCut's injected-library machinery all speak the
same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


#: Canonical section names, in link-time layout order.
SECTION_ORDER = ("text", "plt", "rodata", "data", "got", "bss")

#: Sections mapped executable at run time.
EXEC_SECTIONS = frozenset({"text", "plt"})

#: Sections mapped writable at run time.
WRITE_SECTIONS = frozenset({"data", "got", "bss"})


class RelocType(Enum):
    """Relocation kinds.

    ABS64
        64-bit absolute address of the symbol (plus addend) stored at
        the relocation site.  In shared objects these become dynamic
        relocations applied by the loader.
    PCREL32
        32-bit signed ``S + A - (P + 4)`` where ``P`` is the address of
        the 4-byte field.  Branch/``lea`` targets.  Calls that resolve
        to an imported symbol are routed through a PLT stub.
    """

    ABS64 = "abs64"
    PCREL32 = "pcrel32"


@dataclass
class SymbolDef:
    """A symbol defined in this module."""

    name: str
    section: str
    offset: int
    is_global: bool = True
    is_function: bool = False
    size: int = 0


@dataclass
class Relocation:
    """A patch site referencing ``symbol`` within ``section``."""

    section: str
    offset: int
    type: RelocType
    symbol: str
    addend: int = 0


@dataclass
class ObjectModule:
    """A relocatable compilation unit."""

    name: str
    sections: dict[str, bytearray] = field(default_factory=dict)
    bss_size: int = 0
    symbols: dict[str, SymbolDef] = field(default_factory=dict)
    relocations: list[Relocation] = field(default_factory=list)

    def section(self, name: str) -> bytearray:
        """Return (creating if needed) the byte buffer for ``name``."""
        if name == "bss":
            raise ValueError("bss holds no initialized bytes; use reserve_bss")
        return self.sections.setdefault(name, bytearray())

    def append(self, section: str, data: bytes) -> int:
        """Append ``data`` to ``section``; return the offset it starts at."""
        buf = self.section(section)
        offset = len(buf)
        buf += data
        return offset

    def reserve_bss(self, size: int, align: int = 8) -> int:
        """Reserve ``size`` zero-initialized bytes; return their offset."""
        if align > 1:
            self.bss_size = -(-self.bss_size // align) * align
        offset = self.bss_size
        self.bss_size += size
        return offset

    def define(
        self,
        name: str,
        section: str,
        offset: int,
        is_global: bool = True,
        is_function: bool = False,
        size: int = 0,
    ) -> SymbolDef:
        """Define a symbol; duplicate definitions are an error."""
        if name in self.symbols:
            raise ValueError(f"duplicate symbol {name!r} in module {self.name!r}")
        sym = SymbolDef(name, section, offset, is_global, is_function, size)
        self.symbols[name] = sym
        return sym

    def relocate(
        self,
        section: str,
        offset: int,
        type: RelocType,
        symbol: str,
        addend: int = 0,
    ) -> None:
        """Record a relocation to be resolved at link time."""
        self.relocations.append(Relocation(section, offset, type, symbol, addend))

    def undefined_symbols(self) -> set[str]:
        """Symbols referenced by relocations but not defined here."""
        return {r.symbol for r in self.relocations if r.symbol not in self.symbols}

    def section_size(self, name: str) -> int:
        if name == "bss":
            return self.bss_size
        return len(self.sections.get(name, b""))
