"""Seeded fault-injection plans for the rewrite pipeline.

A :class:`FaultPlan` arms *named injection sites* — fixed points in the
checkpoint/rewrite/restore pipeline that consult the active plan and
raise a typed fault when a spec triggers.  Everything is driven by one
``random.Random(seed)``: no wall-clock, no global entropy, so a
campaign replays bit-exactly from its seed.

Fault taxonomy:

* :class:`TransientFault` — the operation would succeed if retried
  (an EINTR-style hiccup, a torn write that a re-write repairs).  The
  transactional engine retries these with capped deterministic backoff.
* :class:`PermanentFault` — retrying cannot help (medium failure,
  resource exhaustion).  The engine rolls back and aborts.

Triggers are either *per-call probability* (each visit to the site
draws from the plan's RNG) or *fire-on-Nth-call* (deterministic
positional triggers); both are bounded by ``times`` so a fault cannot
re-fire forever and wedge recovery.  Every fire is appended to the
plan's :attr:`~FaultPlan.log` for post-hoc assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

#: every injection site wired into the pipeline (see docs/transactions.md)
KNOWN_SITES = frozenset(
    {
        "checkpoint.dump_pages",   # per-process page dump (criu/checkpoint.py)
        "image.save",              # whole-checkpoint image save (criu/images.py)
        "rewriter.write_code",     # per-patch code write (core/rewriter.py)
        "rewriter.inject_library", # handler-library insertion (core/rewriter.py)
        "lint.strict_reject",      # post-lint strict gate (core/dynacut.py)
        "restore.memory",          # per-process address-space rebuild (criu/restore.py)
        "restore.fds",             # per-process fd-table rebuild (criu/restore.py)
        "fs.write_file",           # torn/truncated file writes (kernel/filesystem.py)
    }
)

#: fleet-supervision sites (see docs/fleet.md).  Kept separate from
#: KNOWN_SITES because they are visited by the fleet control plane, not
#: by a single customize() transaction — the chaos matrix over
#: KNOWN_SITES requires every site to be reachable from disable_feature
KNOWN_FLEET_SITES = frozenset(
    {
        "fleet.instance_crash",         # abrupt SIGKILL of one instance's tree
        "fleet.restore_image_corrupt",  # committed image unreadable at recovery
        "fleet.probe_hang",             # heartbeat probe times out (wedged)
    }
)

#: mesh-tier sites (see docs/fleet.md#mesh-layer-8).  Visited by the
#: cross-host control plane: whole-host failure and cross-host dispatch
#: are chaos-testable without touching the single-kernel matrix above
KNOWN_MESH_SITES = frozenset(
    {
        "mesh.host_crash",        # every instance on one kernel dies at once
        "mesh.host_unreachable",  # one cross-host dispatch hop is dropped
    }
)

#: everything arm() accepts
ALL_SITES = KNOWN_SITES | KNOWN_FLEET_SITES | KNOWN_MESH_SITES

KINDS = ("transient", "permanent")


class FaultError(RuntimeError):
    """Misuse of the fault-injection API itself (bad site, bad trigger)."""


class InjectedFault(RuntimeError):
    """Base of every injected failure; carries where and when it fired."""

    kind = "injected"

    def __init__(self, site: str, call_index: int, detail: str = ""):
        self.site = site
        self.call_index = call_index
        self.detail = detail
        #: for torn writes: fraction of the payload persisted before the
        #: failure (None = the write did not start)
        self.fraction: float | None = None
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"injected {self.kind} fault at {site}, call #{call_index}{suffix}"
        )

    def keep_bytes(self, size: int) -> int:
        """How much of a ``size``-byte payload survives a torn write."""
        if self.fraction is None:
            return 0
        return int(size * self.fraction)


class TransientFault(InjectedFault):
    """Retryable: the same operation can succeed on a later attempt."""

    kind = "transient"


class PermanentFault(InjectedFault):
    """Not retryable: the engine must roll back and abort."""

    kind = "permanent"


_FAULT_CLASSES = {"transient": TransientFault, "permanent": PermanentFault}


@dataclass
class FaultSpec:
    """One armed fault: a site, a kind, and a trigger."""

    site: str
    kind: str
    probability: float = 0.0     # per-call fire chance (when on_call is None)
    on_call: int | None = None   # fire exactly on the Nth visit (1-based)
    times: int = 1               # maximum fires (0 = unlimited)
    torn: bool = False           # persist a truncated prefix before raising
    fired: int = 0

    @property
    def exhausted(self) -> bool:
        return self.times > 0 and self.fired >= self.times


@dataclass(frozen=True)
class InjectionRecord:
    """One fault that actually fired (the plan's assertion log)."""

    site: str
    call_index: int
    kind: str
    detail: str = ""


class FaultPlan:
    """A deterministic schedule of faults over the pipeline's sites.

    Use as a context manager to make the plan ambient for the sites::

        plan = FaultPlan(seed=7).arm("restore.memory", "transient", on_call=1)
        with plan:
            dynacut.customize(pid, actions)
        assert [r.site for r in plan.log] == ["restore.memory"]
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = Random(seed)
        self.specs: list[FaultSpec] = []
        self.calls: dict[str, int] = {}
        self.log: list[InjectionRecord] = []

    # ------------------------------------------------------------------
    # arming

    def arm(
        self,
        site: str,
        kind: str = "transient",
        *,
        probability: float | None = None,
        on_call: int | None = None,
        times: int = 1,
        torn: bool = False,
    ) -> "FaultPlan":
        """Arm one fault spec; returns ``self`` for chaining."""
        if site not in ALL_SITES:
            raise FaultError(
                f"unknown injection site {site!r}; known sites: "
                + ", ".join(sorted(ALL_SITES))
            )
        if kind not in KINDS:
            raise FaultError(f"unknown fault kind {kind!r}; use transient/permanent")
        if (probability is None) == (on_call is None):
            raise FaultError("arm one trigger: either probability= or on_call=")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise FaultError(f"probability {probability} outside [0, 1]")
        if on_call is not None and on_call < 1:
            raise FaultError("on_call is 1-based; the first visit is on_call=1")
        if torn and site != "fs.write_file":
            raise FaultError("torn= only applies to the fs.write_file site")
        self.specs.append(
            FaultSpec(site, kind, probability or 0.0, on_call, times, torn)
        )
        return self

    # ------------------------------------------------------------------
    # firing

    def check(self, site: str, detail: str = "") -> InjectedFault | None:
        """Visit ``site``; returns a fault to raise, or None.

        Separated from :meth:`trip` so sites that do *partial* work
        before failing (torn writes) can inspect the fault first.
        """
        count = self.calls.get(site, 0) + 1
        self.calls[site] = count
        for spec in self.specs:
            if spec.site != site or spec.exhausted:
                continue
            if spec.on_call is not None:
                fire = count == spec.on_call
            else:
                fire = self.rng.random() < spec.probability
            if not fire:
                continue
            spec.fired += 1
            fault = _FAULT_CLASSES[spec.kind](site, count, detail)
            if spec.torn:
                fault.fraction = self.rng.uniform(0.1, 0.9)
            self.log.append(InjectionRecord(site, count, spec.kind, detail))
            return fault
        return None

    def trip(self, site: str, detail: str = "") -> None:
        """Visit ``site``; raise immediately when a spec triggers."""
        fault = self.check(site, detail)
        if fault is not None:
            raise fault

    # ------------------------------------------------------------------
    # bookkeeping

    @property
    def fired(self) -> int:
        return len(self.log)

    def fired_at(self, site: str) -> list[InjectionRecord]:
        return [record for record in self.log if record.site == site]

    def consistent_with_plan(self) -> bool:
        """Every log record maps to an armed spec within its fire budget."""
        for record in self.log:
            if not any(
                spec.site == record.site and spec.kind == record.kind
                for spec in self.specs
            ):
                return False
        for spec in self.specs:
            if spec.times > 0 and spec.fired > spec.times:
                return False
        return True

    # ------------------------------------------------------------------
    # activation (ambient plan; see repro.faults.__init__)

    def __enter__(self) -> "FaultPlan":
        from . import _activate

        _activate(self)
        return self

    def __exit__(self, *exc_info) -> None:
        from . import _deactivate

        _deactivate(self)
