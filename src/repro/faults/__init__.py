"""Deterministic fault injection for the rewrite pipeline.

The pipeline's injection sites call :func:`trip` / :func:`check` with
their site name; both are no-ops unless a :class:`FaultPlan` is active
(entered as a context manager), so production paths pay one ``is
None`` test.  Plans are seeded and wall-clock-free: a chaos campaign
replays bit-exactly from its seeds.

:func:`shielded` suppresses injection for operations the failure model
treats as atomic — journal appends (a single sector write) and the
engine's recovery writes, which replay an already-durable pristine
copy rather than issuing new payload I/O.
"""

from __future__ import annotations

from contextlib import contextmanager

from .plan import (
    ALL_SITES,
    KINDS,
    KNOWN_FLEET_SITES,
    KNOWN_MESH_SITES,
    KNOWN_SITES,
    FaultError,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectionRecord,
    PermanentFault,
    TransientFault,
)

_active: FaultPlan | None = None
_shield_depth = 0


def _activate(plan: FaultPlan) -> None:
    global _active
    if _active is not None and _active is not plan:
        raise FaultError("another FaultPlan is already active")
    _active = plan


def _deactivate(plan: FaultPlan) -> None:
    global _active
    if _active is plan:
        _active = None


def active_plan() -> FaultPlan | None:
    """The ambient plan, unless injection is currently shielded."""
    if _shield_depth > 0:
        return None
    return _active


def trip(site: str, detail: str = "") -> None:
    """Injection-site hook: raise the armed fault, if any fires."""
    plan = active_plan()
    if plan is not None:
        plan.trip(site, detail)


def check(site: str, detail: str = ""):
    """Like :func:`trip` but returns the fault so the site can do
    partial work (torn writes) before raising it."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.check(site, detail)


@contextmanager
def shielded():
    """Suppress fault injection for modelled-atomic operations."""
    global _shield_depth
    _shield_depth += 1
    try:
        yield
    finally:
        _shield_depth -= 1


__all__ = [
    "ALL_SITES",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectionRecord",
    "KINDS",
    "KNOWN_FLEET_SITES",
    "KNOWN_MESH_SITES",
    "KNOWN_SITES",
    "PermanentFault",
    "TransientFault",
    "active_plan",
    "check",
    "shielded",
    "trip",
]
