"""Rollout strategies: canary-gated and rolling fleet customization.

A rollout is a small state machine over the controller's lifecycle
verbs, designed to be **stepped from inside a live workload** (one
:meth:`RolloutExecutor.step` per timeline event) so traffic keeps
flowing between batches:

::

    PENDING ──▶ CANARY ──gate ok──▶ ROLLING ──▶ COMPLETED
                  │ gate fail /                │ abort /
                  ▼ CustomizationAborted       ▼ gate fail
                ABORTED ◀──── roll back every customized instance

* **canary** — customize ``canary_count`` (=1) instances first; a
  health-gate failure or a :class:`~repro.core.CustomizationAborted`
  from the transaction layer halts everything and rolls back.
* **rolling** — customize the (remaining) fleet in batches of
  ``max_unavailable``: the whole batch is drained together (never more
  than the budget out of rotation), each instance is customized, health
  probed, and rejoined before the next batch drains.

Any failure anywhere triggers fleet-wide rollback: instances whose
transactions committed get their features re-enabled (restoring the
recorded original bytes); the failing instance itself was already
restored to its pristine image by the transaction layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import telemetry
from ..core import CustomizationAborted
from .controller import FleetController, FleetInstance, InstanceState
from .policy import ProbeResult


@dataclass
class RolloutStep:
    """One recorded action of the rollout state machine."""

    clock_ns: int
    instance: str
    action: str          # drain/customize/probe/rejoin/rollback
    outcome: str         # ok/failed/aborted/rolled-back
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "clock_ns": self.clock_ns,
            "instance": self.instance,
            "action": self.action,
            "outcome": self.outcome,
            "detail": self.detail,
        }


@dataclass
class RolloutReport:
    """Outcome of one fleet rollout."""

    strategy: str
    state: str = "pending"    # pending/canary/rolling/completed/aborted
    steps: list[RolloutStep] = field(default_factory=list)
    probes: list[ProbeResult] = field(default_factory=list)
    customized: list[str] = field(default_factory=list)
    rolled_back: list[str] = field(default_factory=list)
    aborted_reason: str = ""
    started_ns: int = 0
    finished_ns: int = 0
    #: highest number of instances simultaneously out of rotation
    max_drained_seen: int = 0

    @property
    def completed(self) -> bool:
        return self.state == "completed"

    @property
    def aborted(self) -> bool:
        return self.state == "aborted"

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "state": self.state,
            "customized": list(self.customized),
            "rolled_back": list(self.rolled_back),
            "aborted_reason": self.aborted_reason,
            "started_ns": self.started_ns,
            "finished_ns": self.finished_ns,
            "max_drained_seen": self.max_drained_seen,
            "probes": [probe.to_dict() for probe in self.probes],
            "steps": [step.to_dict() for step in self.steps],
        }


class RolloutExecutor:
    """Drives one policy rollout across a spawned fleet."""

    def __init__(self, controller: FleetController, canary_count: int = 1):
        self.controller = controller
        self.policy = controller.policy
        self.report = RolloutReport(strategy=self.policy.strategy)
        self._batches = self._plan(canary_count)
        self._cursor = 0

    # ------------------------------------------------------------------
    # planning

    def _plan(self, canary_count: int) -> list[list[FleetInstance]]:
        instances = list(self.controller.instances)
        if not instances:
            raise ValueError("spawn the fleet before planning a rollout")
        batches: list[list[FleetInstance]] = []
        rest = instances
        if self.policy.strategy == "canary":
            canary_count = max(1, min(canary_count, len(instances)))
            batches.append(instances[:canary_count])
            rest = instances[canary_count:]
        width = self.policy.max_unavailable
        batches.extend(
            rest[index:index + width] for index in range(0, len(rest), width)
        )
        return batches

    @property
    def batches_remaining(self) -> int:
        return len(self._batches) - self._cursor

    @property
    def done(self) -> bool:
        return self.report.state in ("completed", "aborted")

    # ------------------------------------------------------------------
    # execution

    def step(self) -> bool:
        """Run the next batch; returns True while more work remains.

        Call between workload requests (e.g. from a
        :class:`~repro.workloads.TimelineEvent`) so the fleet serves
        continuously around each batch.
        """
        if self.done:
            return False
        if self.report.state == "pending":
            self.report.started_ns = self.controller.kernel.clock_ns
            self.report.state = (
                "canary" if self.policy.strategy == "canary" else "rolling"
            )
        batch = self._batches[self._cursor]
        is_canary = self.policy.strategy == "canary" and self._cursor == 0
        try:
            self._run_batch(batch, is_canary)
        except _Halt as halt:
            self._abort(str(halt))
            return False
        self._cursor += 1
        if self._cursor >= len(self._batches):
            self.report.state = "completed"
            self.report.finished_ns = self.controller.kernel.clock_ns
            return False
        if is_canary:
            self.report.state = "rolling"
        return True

    def run(self) -> RolloutReport:
        """Step to completion (no interleaved workload)."""
        while self.step():
            pass
        return self.report

    def abort(self, reason: str) -> None:
        """Halt this rollout from outside the state machine.

        DynaMesh uses this to bound blast radius: a whole-host crash
        aborts the *affected shard's* rollout (dead instances are
        skipped by the rollback pass, recovered later by its
        supervisor) while the other shards keep rolling.  Idempotent
        once the rollout is done.
        """
        if not self.done:
            if self.report.state == "pending":
                self.report.started_ns = self.controller.kernel.clock_ns
            self._abort(reason)

    # ------------------------------------------------------------------
    # internals

    def _record(self, instance: str, action: str, outcome: str, detail: str = ""):
        now = self.controller.kernel.clock_ns
        self.report.steps.append(
            RolloutStep(now, instance, action, outcome, detail)
        )
        telemetry.emit(
            "rollout", action,
            clock_ns=now,
            labels={"instance": instance},
            outcome=outcome,
            detail=detail,
        )
        telemetry.count("rollout_steps_total", action=action, outcome=outcome)

    def _note_drained(self) -> None:
        assert self.controller.pool is not None
        drained = len(self.controller.pool.drained)
        self.report.max_drained_seen = max(self.report.max_drained_seen, drained)

    def _run_batch(self, batch: list[FleetInstance], is_canary: bool) -> None:
        controller = self.controller
        label = "canary-customize" if is_canary else "customize"
        for instance in batch:
            controller.drain(instance)
            self._record(instance.name, "drain", "ok")
        self._note_drained()
        for instance in batch:
            try:
                controller.customize(instance)
            except CustomizationAborted as exc:
                instance.state = InstanceState.FAILED
                self._record(instance.name, label, "aborted", str(exc))
                controller.rejoin(instance)   # pristine tree still serves
                raise _Halt(
                    f"{instance.name}: customization aborted "
                    f"(transaction rolled back): {exc}"
                ) from exc
            self._record(instance.name, label, "ok")
            probe = controller.probe(instance)
            self.report.probes.append(probe)
            if not probe.passed(self.policy):
                self._record(
                    instance.name, "probe", "failed",
                    f"success_rate={probe.success_rate:.2f} "
                    f"blocked={probe.features_blocked}",
                )
                raise _Halt(
                    f"{instance.name}: health gate failed "
                    f"(success_rate={probe.success_rate:.2f}, "
                    f"features_blocked={probe.features_blocked})"
                )
            self._record(instance.name, "probe", "ok")
            controller.sync_traps(instance)   # probe traps aren't drift
            self.report.customized.append(instance.name)
            controller.rejoin(instance)
            self._record(instance.name, "rejoin", "ok")

    def _abort(self, reason: str) -> None:
        """Halt the rollout and roll every customized instance back."""
        controller = self.controller
        for instance in controller.instances:
            if not controller.alive(instance):
                # a dead instance cannot be rolled back (or rejoined) —
                # that is the supervisor's job, from the committed image
                self._record(
                    instance.name, "rollback", "skipped", "instance dead"
                )
                continue
            if instance.customized:
                controller.rollback(instance)
                self.report.rolled_back.append(instance.name)
                self._record(instance.name, "rollback", "rolled-back")
            if instance.state is not InstanceState.FAILED:
                if instance.port in (controller.pool.drained if controller.pool else ()):
                    controller.rejoin(instance)
        self.report.state = "aborted"
        self.report.aborted_reason = reason
        self.report.finished_ns = controller.kernel.clock_ns


class _Halt(RuntimeError):
    """Internal: a gate failure or aborted transaction stops the rollout."""
