"""Coverage-drift detection: the paper's verifier mode as fleet policy.

A feature removed while it was cold can become hot again — the paper's
§3.2.3 answer is the verifier trap handler, which heals and logs per
process.  DynaFleet promotes that signal to a fleet-wide control loop:

1. every customized instance carries the injected trap handler (both
   the ``verify`` and ``redirect`` policies log each trap address into
   the in-library ring buffer before acting);
2. the :class:`DriftDetector` periodically reads each instance's log
   (:func:`~repro.core.read_verifier_log`) and attributes new entries
   to the **active removal set** — the blocks the instance's engine
   actually patched (:meth:`DynaCut.disabled_blocks`);
3. attributed traps enter a sliding window of ``drift_window_ns``; when
   the windowed count reaches ``drift_trap_threshold``, the policy's
   ``drift_action`` fires.

Four actions, from bluntest to most adaptive:

* ``reenable`` — roll the drifted features back across the whole fleet
  (wanted traffic stops trapping everywhere, not just on the instance
  that happened to see it).  One-shot: the detector latches.
* ``ignore`` — log only.  Also one-shot.
* ``shelve`` — restore **only the trapping blocks** on the trapping
  instances (arXiv 2501.04963's lazy block-granular reinstatement);
  the rest of the removal set stays patched.  Every check also runs
  the decay sweep, re-removing shelved blocks that stayed cold for
  ``shelve_decay_ns``.  When a feature's live shelf on one instance
  would exceed ``shelve_max_live_blocks``, shelving escalates to a
  full local re-enable (the instance is marked degraded).  Repeating:
  every new windowed burst shelves again.
* ``recustomize`` — re-profile against the drifted trap mix and roll
  out a **narrower** removal set (the adaptive loop of arXiv
  2109.02775): blocks live traffic demonstrably reached are dropped
  from the set, everything still cold stays removed.  The first round
  for a feature is per-instance (only the drifted instances swap
  sets); if the narrowed set still storms, later rounds narrow again
  fleet-wide through a :class:`~repro.fleet.rollout.RolloutExecutor`.

Traps from instances in ``RESTORING``/``QUARANTINED`` health states are
consumed but **segregated** — a recovery replaying its checkpoint can
re-execute removed code without that being workload drift.

Checks are driven from the workload loop (timeline events), so drift
latency is bounded by the check cadence plus one re-enable rollout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import telemetry
from ..core import FeatureBlocks, read_verifier_log
from .controller import FleetController, FleetInstance
from .health import HealthState

#: health states whose traps are recovery noise, not workload drift
_SEGREGATED_STATES = (HealthState.RESTORING, HealthState.QUARANTINED)


@dataclass(frozen=True)
class DriftEvent:
    """New traps on the active removal set, seen at one check."""

    clock_ns: int
    instance: str
    feature: str
    hits: int
    offsets: tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "clock_ns": self.clock_ns,
            "instance": self.instance,
            "feature": self.feature,
            "hits": self.hits,
            "offsets": list(self.offsets),
        }


@dataclass
class DriftStatus:
    """Accumulated drift observations and the trigger outcome."""

    events: list[DriftEvent] = field(default_factory=list)
    checks: int = 0
    first_drift_ns: int | None = None
    triggered: bool = False
    triggered_ns: int | None = None
    action: str = ""
    reenabled: list[str] = field(default_factory=list)
    #: shelve rounds fired (each restores one windowed burst's blocks)
    shelve_rounds: int = 0
    #: blocks shelved / re-removed by decay, cumulative over the run
    shelved_blocks: int = 0
    decayed_blocks: int = 0
    #: instances whose shelf overflowed into a full local re-enable
    escalated: list[str] = field(default_factory=list)
    #: traps consumed from RESTORING/QUARANTINED instances (not drift)
    segregated_traps: int = 0
    #: one entry per adaptive narrowing round (drift_action=recustomize)
    recustomize_rounds: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "checks": self.checks,
            "events": [event.to_dict() for event in self.events],
            "first_drift_ns": self.first_drift_ns,
            "triggered": self.triggered,
            "triggered_ns": self.triggered_ns,
            "action": self.action,
            "reenabled": list(self.reenabled),
            "shelve_rounds": self.shelve_rounds,
            "shelved_blocks": self.shelved_blocks,
            "decayed_blocks": self.decayed_blocks,
            "escalated": list(self.escalated),
            "segregated_traps": self.segregated_traps,
            "recustomize_rounds": [
                dict(round_) for round_ in self.recustomize_rounds
            ],
        }


class DriftDetector:
    """Watches per-instance trap logs and reacts to workload drift."""

    def __init__(self, controller: FleetController):
        self.controller = controller
        self.policy = controller.policy
        self.status = DriftStatus()
        #: (clock_ns, hits) observations inside the sliding window
        self._window: list[tuple[int, int]] = []
        #: un-acted-on trapped offsets per (instance name, feature)
        self._pending: dict[tuple[str, str], set[int]] = {}
        #: cumulative trapped offsets per feature — the drifted trap mix
        #: the recustomize action re-profiles against
        self._trapped_offsets: dict[str, set[int]] = {}
        #: narrowing rounds completed per feature
        self._rounds: dict[str, int] = {}
        # the controller folds our shelving view into status()
        controller.drift = self
        # traps logged before the detector existed are history, not drift
        for instance in controller.instances:
            if instance.customized:
                controller.sync_traps(instance)

    # ------------------------------------------------------------------

    def _active_offsets(self, instance: FleetInstance) -> dict[str, set[int]]:
        """feature -> module-relative offsets of its patched blocks."""
        offsets: dict[str, set[int]] = {}
        for feature_name in self.policy.features:
            blocks = instance.engine.disabled_blocks(
                instance.root_pid, feature_name
            )
            if blocks:
                offsets[feature_name] = {block.offset for block in blocks}
        return offsets

    def _health_state(self, instance: FleetInstance) -> HealthState | None:
        supervisor = self.controller.supervisor
        if supervisor is None:
            return None
        record = supervisor.records.get(instance.name)
        return record.state if record is not None else None

    def _fresh_traps(self, instance: FleetInstance) -> list[int]:
        """Consume the instance's new trap-log entries.

        Advances the high-water mark unconditionally, but returns an
        empty list for instances in ``RESTORING``/``QUARANTINED``: a
        recovery replaying committed state can re-execute removed code,
        and counting that as workload drift would re-enable features on
        the back of the supervisor's own repair traffic.  Segregated
        traps are tallied in the status instead.
        """
        controller = self.controller
        proc = controller.process(instance)
        report = read_verifier_log(controller.kernel, proc)
        fresh = report.trapped_addresses[instance.traps_seen:]
        instance.traps_seen = len(report.trapped_addresses)
        now = controller.kernel.clock_ns
        telemetry.emit(
            "traps", "scan",
            clock_ns=now,
            labels={"instance": instance.name},
            total=instance.traps_seen,
        )
        telemetry.gauge_set(
            "traps_seen", instance.traps_seen, instance=instance.name
        )
        telemetry.sample(
            "traps_seen", now, instance.traps_seen, instance=instance.name
        )
        if fresh and self._health_state(instance) in _SEGREGATED_STATES:
            self.status.segregated_traps += len(fresh)
            telemetry.count("drift_traps_segregated_total", len(fresh))
            telemetry.emit(
                "drift", "segregated",
                clock_ns=now,
                labels={"instance": instance.name},
                hits=len(fresh),
            )
            return []
        return list(fresh)

    def _scan_instance(self, instance: FleetInstance) -> list[DriftEvent]:
        """New trap-log entries attributed to the active removal set."""
        controller = self.controller
        if not controller.alive(instance) or not instance.customized:
            return []
        fresh = self._fresh_traps(instance)
        if not fresh:
            return []
        base = controller.module_base(instance)
        active = self._active_offsets(instance)
        events = []
        for feature_name, offsets in active.items():
            hit_offsets = tuple(
                address - base for address in fresh if address - base in offsets
            )
            if hit_offsets:
                events.append(
                    DriftEvent(
                        clock_ns=controller.kernel.clock_ns,
                        instance=instance.name,
                        feature=feature_name,
                        hits=len(hit_offsets),
                        offsets=hit_offsets,
                    )
                )
        return events

    # ------------------------------------------------------------------

    def check(self) -> bool:
        """Poll every instance once; True when drift action triggered."""
        self.status.checks += 1
        now = self.controller.kernel.clock_ns
        new_hits = 0
        for instance in self.controller.instances:
            for event in self._scan_instance(instance):
                self.status.events.append(event)
                new_hits += event.hits
                self._pending.setdefault(
                    (event.instance, event.feature), set()
                ).update(event.offsets)
                if self.status.first_drift_ns is None:
                    self.status.first_drift_ns = event.clock_ns
                telemetry.emit(
                    "drift", "traps",
                    clock_ns=event.clock_ns,
                    labels={
                        "instance": event.instance,
                        "feature": event.feature,
                    },
                    hits=event.hits,
                )
                telemetry.count(
                    "drift_traps_total", event.hits, feature=event.feature
                )
        if new_hits:
            self._window.append((now, new_hits))
        horizon = now - self.policy.drift_window_ns
        self._window = [(t, h) for t, h in self._window if t >= horizon]
        windowed = sum(h for __, h in self._window)
        repeating = self.policy.drift_action in ("shelve", "recustomize")
        fired = False
        if windowed >= self.policy.drift_trap_threshold and (
            repeating or not self.status.triggered
        ):
            if not self.status.triggered:
                self.status.triggered = True
                self.status.triggered_ns = now
                self.status.action = self.policy.drift_action
            telemetry.emit(
                "drift", "triggered",
                clock_ns=now,
                action=self.policy.drift_action,
                windowed_hits=windowed,
            )
            telemetry.count(
                "drift_triggered_total", action=self.policy.drift_action
            )
            if self.policy.drift_action == "reenable":
                self._reenable_fleet()
            elif self.policy.drift_action == "shelve":
                self._shelve_round()
            elif self.policy.drift_action == "recustomize":
                self._recustomize_round()
            fired = True
        if self.policy.drift_action == "shelve":
            self._decay_sweep()
        return fired

    def _reenable_fleet(self) -> None:
        """Restore the drifted features on every customized instance."""
        drifted = {event.feature for event in self.status.events}
        controller = self.controller
        for instance in controller.instances:
            if not controller.alive(instance):
                continue
            restored = [
                name for name in drifted
                if name in instance.customized_features
            ]
            if not restored:
                continue
            controller.drain(instance)
            try:
                for feature_name in restored:
                    controller.rollback_feature(instance, feature_name)
            finally:
                controller.rejoin(instance)
            self.status.reenabled.append(instance.name)

    # ------------------------------------------------------------------
    # drift_action="shelve"

    def _shelve_round(self) -> None:
        """Shelve every pending trapped block on its trapping instance."""
        controller = self.controller
        for (instance_name, feature_name), offsets in sorted(
            self._pending.items()
        ):
            if not offsets:
                continue
            instance = controller.instance(instance_name)
            if not controller.alive(instance):
                continue
            engine = instance.engine
            already = set(
                engine.shelved_offsets(instance.root_pid, feature_name)
            )
            prospective = already | offsets
            if len(prospective) > self.policy.shelve_max_live_blocks:
                self._escalate(instance, feature_name)
                continue
            report = controller.shelve_blocks(
                instance, feature_name, sorted(offsets)
            )
            if report is not None:
                shelved = len(offsets - already)
                self.status.shelved_blocks += shelved
        self.status.shelve_rounds += 1
        self._pending.clear()
        self._window.clear()

    def _escalate(self, instance: FleetInstance, feature_name: str) -> None:
        """The shelf overflowed: fall back to a full local re-enable.

        Mirrors the trap-storm breaker's demotion — too much of the
        removal set is hot for block-granular patching to be worth the
        transaction churn, so the instance serves the whole feature
        again and is marked degraded.
        """
        controller = self.controller
        controller.drain(instance)
        try:
            controller.rollback_feature(instance, feature_name)
        finally:
            if controller.alive(instance):
                controller.rejoin(instance)
        controller.sync_traps(instance)
        instance.degraded = True
        if instance.name not in self.status.escalated:
            self.status.escalated.append(instance.name)
        telemetry.count("shelve_escalations_total")
        telemetry.emit(
            "drift", "escalated",
            clock_ns=controller.kernel.clock_ns,
            labels={"instance": instance.name},
            feature=feature_name,
        )

    def _decay_sweep(self) -> None:
        """Re-remove cold shelved blocks on every instance."""
        controller = self.controller
        for instance in controller.instances:
            if not controller.alive(instance):
                continue
            for feature_name in self.policy.features:
                cold = controller.decay_shelved(instance, feature_name)
                self.status.decayed_blocks += len(cold)

    # ------------------------------------------------------------------
    # drift_action="recustomize"

    def _recustomize_round(self) -> None:
        """Narrow the removal set against the drifted trap mix.

        Blocks the drifted workload demonstrably reached are dropped
        from the feature's removal set (they are wanted now); blocks
        that stayed cold stay removed.  Round 1 swaps sets only on the
        instances that drifted; if the narrowed set still storms, the
        next round narrows again and rolls out fleet-wide.
        """
        from .rollout import RolloutExecutor

        controller = self.controller
        drifted_features = sorted({
            feature
            for (__, feature), offsets in self._pending.items()
            if offsets
        })
        drifted_instances = {
            feature: sorted(
                name for (name, f), offsets in self._pending.items()
                if f == feature and offsets
            )
            for feature in drifted_features
        }
        for (__, feature_name), offsets in self._pending.items():
            self._trapped_offsets.setdefault(feature_name, set()).update(
                offsets
            )
        self._pending.clear()
        self._window.clear()
        for feature_name in drifted_features:
            feature = controller.features[feature_name]
            trapped = self._trapped_offsets.get(feature_name, set())
            narrowed_blocks = tuple(
                block for block in feature.blocks
                if block.offset not in trapped
            )
            if not narrowed_blocks:
                # the whole set is hot: narrowing degenerates to the
                # blunt instrument
                self._reenable_fleet()
                self.status.recustomize_rounds.append({
                    "feature": feature_name,
                    "round": self._rounds.get(feature_name, 0) + 1,
                    "scope": "reenable",
                    "narrowed_blocks": 0,
                    "kept_hot_blocks": len(trapped),
                    "dead_restores": 0,
                    "clock_ns": controller.kernel.clock_ns,
                })
                self._rounds[feature_name] = (
                    self._rounds.get(feature_name, 0) + 1
                )
                continue
            narrowed = FeatureBlocks(
                feature.name, feature.module, narrowed_blocks
            )
            # soundness cross-check: a block the verifier restored was
            # reached by live traffic, so the static classifier must
            # not have proven it dead — any intersection is a bug in
            # one of the two analyses
            engine = controller.instances[0].engine
            classification = engine.refine_feature(feature)
            dead_offsets = {
                block.offset for block in classification.provably_dead
            }
            dead_restores = len(trapped & dead_offsets)
            round_number = self._rounds.get(feature_name, 0) + 1
            self._rounds[feature_name] = round_number
            if round_number == 1:
                scope = "instance"
                targets = []
                for name in drifted_instances[feature_name]:
                    instance = controller.instance(name)
                    if not controller.alive(instance):
                        continue
                    controller.recustomize_feature(
                        instance, feature_name, narrowed
                    )
                    targets.append(name)
            else:
                # the per-instance narrowing was not enough — the
                # narrowed set still stormed.  Adopt it as the fleet's
                # removal set and roll it out everywhere.
                scope = "fleet"
                controller.features[feature_name] = narrowed
                rollout = RolloutExecutor(controller)
                rollout.run()
                targets = [
                    instance.name for instance in controller.instances
                    if controller.alive(instance)
                ]
            telemetry.count("recustomize_rounds_total", feature=feature_name)
            telemetry.emit(
                "drift", "recustomized",
                clock_ns=controller.kernel.clock_ns,
                feature=feature_name,
                scope=scope,
                narrowed_blocks=len(narrowed_blocks),
                kept_hot_blocks=len(trapped),
            )
            self.status.recustomize_rounds.append({
                "feature": feature_name,
                "round": round_number,
                "scope": scope,
                "instances": targets,
                "narrowed_blocks": len(narrowed_blocks),
                "kept_hot_blocks": len(trapped),
                "dead_restores": dead_restores,
                "clock_ns": controller.kernel.clock_ns,
            })
