"""Coverage-drift detection: the paper's verifier mode as fleet policy.

A feature removed while it was cold can become hot again — the paper's
§3.2.3 answer is the verifier trap handler, which heals and logs per
process.  DynaFleet promotes that signal to a fleet-wide control loop:

1. every customized instance carries the injected trap handler (both
   the ``verify`` and ``redirect`` policies log each trap address into
   the in-library ring buffer before acting);
2. the :class:`DriftDetector` periodically reads each instance's log
   (:func:`~repro.core.read_verifier_log`) and attributes new entries
   to the **active removal set** — the blocks the instance's engine
   actually patched (:meth:`DynaCut.disabled_blocks`);
3. attributed traps enter a sliding window of ``drift_window_ns``; when
   the windowed count reaches ``drift_trap_threshold``, the policy's
   ``drift_action`` fires: ``reenable`` rolls the drifted features back
   across the whole fleet (wanted traffic stops trapping everywhere,
   not just on the instance that happened to see it).

Checks are driven from the workload loop (timeline events), so drift
latency is bounded by the check cadence plus one re-enable rollout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import telemetry
from ..core import read_verifier_log
from .controller import FleetController, FleetInstance


@dataclass(frozen=True)
class DriftEvent:
    """New traps on the active removal set, seen at one check."""

    clock_ns: int
    instance: str
    feature: str
    hits: int
    offsets: tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "clock_ns": self.clock_ns,
            "instance": self.instance,
            "feature": self.feature,
            "hits": self.hits,
            "offsets": list(self.offsets),
        }


@dataclass
class DriftStatus:
    """Accumulated drift observations and the trigger outcome."""

    events: list[DriftEvent] = field(default_factory=list)
    checks: int = 0
    first_drift_ns: int | None = None
    triggered: bool = False
    triggered_ns: int | None = None
    action: str = ""
    reenabled: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "checks": self.checks,
            "events": [event.to_dict() for event in self.events],
            "first_drift_ns": self.first_drift_ns,
            "triggered": self.triggered,
            "triggered_ns": self.triggered_ns,
            "action": self.action,
            "reenabled": list(self.reenabled),
        }


class DriftDetector:
    """Watches per-instance trap logs and reacts to workload drift."""

    def __init__(self, controller: FleetController):
        self.controller = controller
        self.policy = controller.policy
        self.status = DriftStatus()
        #: (clock_ns, hits) observations inside the sliding window
        self._window: list[tuple[int, int]] = []
        # traps logged before the detector existed are history, not drift
        for instance in controller.instances:
            if instance.customized:
                controller.sync_traps(instance)

    # ------------------------------------------------------------------

    def _active_offsets(self, instance: FleetInstance) -> dict[str, set[int]]:
        """feature -> module-relative offsets of its patched blocks."""
        offsets: dict[str, set[int]] = {}
        for feature_name in self.policy.features:
            blocks = instance.engine.disabled_blocks(
                instance.root_pid, feature_name
            )
            if blocks:
                offsets[feature_name] = {block.offset for block in blocks}
        return offsets

    def _scan_instance(self, instance: FleetInstance) -> list[DriftEvent]:
        """New trap-log entries attributed to the active removal set."""
        controller = self.controller
        if not controller.alive(instance) or not instance.customized:
            return []
        proc = controller.process(instance)
        report = read_verifier_log(controller.kernel, proc)
        fresh = report.trapped_addresses[instance.traps_seen:]
        instance.traps_seen = len(report.trapped_addresses)
        now = controller.kernel.clock_ns
        telemetry.emit(
            "traps", "scan",
            clock_ns=now,
            labels={"instance": instance.name},
            total=instance.traps_seen,
        )
        telemetry.gauge_set(
            "traps_seen", instance.traps_seen, instance=instance.name
        )
        telemetry.sample(
            "traps_seen", now, instance.traps_seen, instance=instance.name
        )
        if not fresh:
            return []
        base = controller.module_base(instance)
        active = self._active_offsets(instance)
        events = []
        for feature_name, offsets in active.items():
            hit_offsets = tuple(
                address - base for address in fresh if address - base in offsets
            )
            if hit_offsets:
                events.append(
                    DriftEvent(
                        clock_ns=controller.kernel.clock_ns,
                        instance=instance.name,
                        feature=feature_name,
                        hits=len(hit_offsets),
                        offsets=hit_offsets,
                    )
                )
        return events

    # ------------------------------------------------------------------

    def check(self) -> bool:
        """Poll every instance once; True when drift action triggered."""
        self.status.checks += 1
        now = self.controller.kernel.clock_ns
        new_hits = 0
        for instance in self.controller.instances:
            for event in self._scan_instance(instance):
                self.status.events.append(event)
                new_hits += event.hits
                if self.status.first_drift_ns is None:
                    self.status.first_drift_ns = event.clock_ns
                telemetry.emit(
                    "drift", "traps",
                    clock_ns=event.clock_ns,
                    labels={
                        "instance": event.instance,
                        "feature": event.feature,
                    },
                    hits=event.hits,
                )
                telemetry.count(
                    "drift_traps_total", event.hits, feature=event.feature
                )
        if new_hits:
            self._window.append((now, new_hits))
        horizon = now - self.policy.drift_window_ns
        self._window = [(t, h) for t, h in self._window if t >= horizon]
        windowed = sum(h for __, h in self._window)
        if self.status.triggered or windowed < self.policy.drift_trap_threshold:
            return False
        self.status.triggered = True
        self.status.triggered_ns = now
        self.status.action = self.policy.drift_action
        telemetry.emit(
            "drift", "triggered",
            clock_ns=now,
            action=self.policy.drift_action,
            windowed_hits=windowed,
        )
        telemetry.count("drift_triggered_total", action=self.policy.drift_action)
        if self.policy.drift_action == "reenable":
            self._reenable_fleet()
        return True

    def _reenable_fleet(self) -> None:
        """Restore the drifted features on every customized instance."""
        drifted = {event.feature for event in self.status.events}
        controller = self.controller
        for instance in controller.instances:
            if not controller.alive(instance):
                continue
            restored = [
                name for name in drifted
                if name in instance.customized_features
            ]
            if not restored:
                continue
            controller.drain(instance)
            try:
                for feature_name in restored:
                    controller.rollback_feature(instance, feature_name)
            finally:
                controller.rejoin(instance)
            self.status.reenabled.append(instance.name)
