"""Per-application adapters for the fleet control plane.

The :class:`FleetController` is app-agnostic; everything server-specific
lives in an adapter:

* **staging** an instance on an arbitrary port (each guest reads its
  port from its config file during init, so the adapter rewrites the
  config immediately before each spawn — instance *i* boots with its
  own port, then the file is free for instance *i+1*);
* the **wanted request** (the health probe's and balancer workload's
  unit of service) and the **feature request** (exercising the code a
  policy removes);
* the **profiling recipe**: boot a scratch kernel, trace a wanted
  workload and the feature workload, and tracediff them into the
  feature's unique blocks.  Offsets are module-relative and every
  instance runs the same binary image, so one profile serves the whole
  fleet — it is memoized process-wide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..apps import (
    LIGHTTPD_PORT,
    NGINX_PORT,
    REDIS_PORT,
    nginx_worker,
    stage_lighttpd,
    stage_nginx,
    stage_redis,
)
from ..apps import httpd_lighttpd, httpd_nginx, kvstore
from ..core import FeatureBlocks, TraceDiff
from ..kernel.kernel import Kernel
from ..kernel.process import Process
from ..tracing import BlockTracer, merge_traces
from ..workloads import HttpClient, RedisClient


class FleetAppError(RuntimeError):
    """Unknown app or feature, or an instance that failed to stage."""


@dataclass(frozen=True)
class FleetApp:
    """One server program the fleet knows how to run and profile."""

    name: str
    binary: str
    default_port: int
    #: symbol of the app's error arm (redirect trap target)
    redirect_symbol: str
    #: write the app's config for ``port`` into ``fs``
    configure: Callable[[object, int], None]
    #: boot one instance listening on ``port``; returns the root process
    stage: Callable[[Kernel, int], Process]
    #: issue one wanted request; True on success
    wanted_request: Callable[[Kernel, int], bool]
    #: exercise ``feature`` once; True when the feature was *served*
    feature_request: Callable[[Kernel, int, str], bool]
    #: features this adapter can profile
    features: tuple[str, ...]
    #: collect (wanted, undesired) traces for ``feature`` on a scratch
    #: kernel; returns the FeatureBlocks
    profile: Callable[[str], FeatureBlocks]


# ----------------------------------------------------------------------
# minilight (single-process poll loop)


def _lighttpd_configure(fs, port: int) -> None:
    config = httpd_lighttpd.DEFAULT_CONFIG.replace(
        f"server.port = {LIGHTTPD_PORT}", f"server.port = {port}"
    )
    fs.write_file(httpd_lighttpd.LIGHTTPD_CONFIG_PATH, config)
    fs.write_file(f"{httpd_lighttpd.DOCROOT}/index.html", "<h1>fleet</h1>")


def _lighttpd_stage(kernel: Kernel, port: int) -> Process:
    _lighttpd_configure(kernel.fs, port)
    from ..apps import libc_image, lighttpd_image

    kernel.register_binary(libc_image())
    kernel.register_binary(lighttpd_image())
    proc = kernel.spawn(httpd_lighttpd.LIGHTTPD_BINARY)
    ready = kernel.run_until(
        lambda: httpd_lighttpd.READY_LINE in proc.stdout_text(),
        max_instructions=6_000_000,
    )
    if not ready:
        raise FleetAppError(f"minilight on port {port} never became ready")
    return proc


def _http_wanted(kernel: Kernel, port: int) -> bool:
    return HttpClient(kernel, port).get("/").status == 200


def _probe_serial(kernel: Kernel) -> int:
    """Per-kernel probe serial.

    The serial lands in the request path, and the path's *length*
    reaches the guest's string loops — so it must be a function of the
    kernel, never of process-global history, or two identically-seeded
    runs in one interpreter drift apart on the virtual clock.
    """
    serial = getattr(kernel, "_fleet_probe_serial", 0) + 1
    kernel._fleet_probe_serial = serial
    return serial


def _http_dav_request(kernel: Kernel, port: int, feature: str) -> bool:
    if feature != "dav-write":
        raise FleetAppError(f"unknown http feature {feature!r}")
    path = f"/fleet-probe-{_probe_serial(kernel)}.txt"
    client = HttpClient(kernel, port)
    response = client.put(path, "x")
    if response.status != 201:
        return False
    return client.delete(path).status == 204


_PROFILE_CACHE: dict[tuple[str, str], FeatureBlocks] = {}


def _profile_lighttpd(feature: str) -> FeatureBlocks:
    if feature != "dav-write":
        raise FleetAppError(f"minilight has no feature recipe for {feature!r}")
    kernel = Kernel()
    proc = stage_lighttpd(kernel)
    tracer = BlockTracer(kernel, proc).attach()
    client = HttpClient(kernel, LIGHTTPD_PORT)
    client.get("/")
    client.get("/missing.html")
    client.head("/")
    client.options("/")
    client.post("/echo", "abcd")
    wanted = tracer.nudge_dump()
    client.put("/probe.txt", "x")
    client.delete("/probe.txt")
    undesired = tracer.finish()
    return TraceDiff(httpd_lighttpd.LIGHTTPD_BINARY).feature_blocks(
        feature, [wanted], [undesired]
    )


# ----------------------------------------------------------------------
# mininginx (master + worker tree)


def _nginx_configure(fs, port: int) -> None:
    config = httpd_nginx.DEFAULT_CONFIG.replace(
        f"listen {NGINX_PORT}", f"listen {port}"
    )
    fs.write_file(httpd_nginx.NGINX_CONFIG_PATH, config)
    fs.write_file(f"{httpd_nginx.DOCROOT}/index.html", "<h1>fleet</h1>")


def _nginx_stage(kernel: Kernel, port: int) -> Process:
    _nginx_configure(kernel.fs, port)
    from ..apps import libc_image, nginx_image

    kernel.register_binary(libc_image())
    kernel.register_binary(nginx_image())
    master = kernel.spawn(httpd_nginx.NGINX_BINARY)

    def worker_running() -> bool:
        return any(
            httpd_nginx.WORKER_LINE in p.stdout_text()
            for p in kernel.processes.values()
            if p.ppid == master.pid
        )

    ready = kernel.run_until(
        lambda: httpd_nginx.READY_LINE in master.stdout_text() and worker_running(),
        max_instructions=10_000_000,
    )
    if not ready:
        raise FleetAppError(f"mininginx on port {port} never became ready")
    return master


def _profile_nginx(feature: str) -> FeatureBlocks:
    if feature != "dav-write":
        raise FleetAppError(f"mininginx has no feature recipe for {feature!r}")
    kernel = Kernel()
    master = stage_nginx(kernel)
    worker = nginx_worker(kernel, master)
    tracer_m = BlockTracer(kernel, master).attach()
    tracer_w = BlockTracer(kernel, worker).attach()
    client = HttpClient(kernel, NGINX_PORT)
    client.get("/")
    client.get("/missing.html")
    client.head("/")
    client.options("/")
    client.post("/echo", "abcd")
    wanted = merge_traces([tracer_m.nudge_dump(), tracer_w.nudge_dump()])
    client.put("/probe.txt", "x")
    client.delete("/probe.txt")
    undesired = merge_traces([tracer_m.finish(), tracer_w.finish()])
    return TraceDiff(httpd_nginx.NGINX_BINARY).feature_blocks(
        feature, [wanted], [undesired]
    )


# ----------------------------------------------------------------------
# miniredis (single-process kv store)


def _redis_configure(fs, port: int) -> None:
    config = kvstore.DEFAULT_CONFIG.replace(
        f"port {REDIS_PORT}", f"port {port}"
    )
    fs.write_file(kvstore.REDIS_CONFIG_PATH, config)


def _redis_stage(kernel: Kernel, port: int) -> Process:
    _redis_configure(kernel.fs, port)
    from ..apps import libc_image, redis_image

    kernel.register_binary(libc_image())
    kernel.register_binary(redis_image())
    proc = kernel.spawn(kvstore.REDIS_BINARY)
    ready = kernel.run_until(
        lambda: kvstore.READY_LINE in proc.stdout_text(),
        max_instructions=6_000_000,
    )
    if not ready:
        raise FleetAppError(f"miniredis on port {port} never became ready")
    return proc


def _redis_wanted(kernel: Kernel, port: int) -> bool:
    client = RedisClient(kernel, port)
    try:
        return client.ping()
    finally:
        client.close()


def _redis_feature(kernel: Kernel, port: int, feature: str) -> bool:
    if feature != "SET":
        raise FleetAppError(f"miniredis has no feature recipe for {feature!r}")
    client = RedisClient(kernel, port)
    try:
        return client.set("fleet-probe", "v")
    finally:
        client.close()


def _profile_redis(feature: str) -> FeatureBlocks:
    if feature != "SET":
        raise FleetAppError(f"miniredis has no feature recipe for {feature!r}")
    kernel = Kernel()
    proc = stage_redis(kernel)
    tracer = BlockTracer(kernel, proc).attach()
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "GET a", "DEL a", "EXISTS a", "DBSIZE"):
        client.command(cmd)
    wanted = tracer.nudge_dump()
    client.command("SET a 1")
    undesired = tracer.finish()
    return TraceDiff(kvstore.REDIS_BINARY).feature_blocks(
        feature, [wanted], [undesired]
    )


# ----------------------------------------------------------------------
# registry

LIGHTTPD_APP = FleetApp(
    name="lighttpd",
    binary=httpd_lighttpd.LIGHTTPD_BINARY,
    default_port=9000,
    redirect_symbol=httpd_lighttpd.FORBIDDEN_SYMBOL,
    configure=_lighttpd_configure,
    stage=_lighttpd_stage,
    wanted_request=_http_wanted,
    feature_request=_http_dav_request,
    features=("dav-write",),
    profile=_profile_lighttpd,
)

NGINX_APP = FleetApp(
    name="nginx",
    binary=httpd_nginx.NGINX_BINARY,
    default_port=9300,
    redirect_symbol=httpd_nginx.FORBIDDEN_SYMBOL,
    configure=_nginx_configure,
    stage=_nginx_stage,
    wanted_request=_http_wanted,
    feature_request=_http_dav_request,
    features=("dav-write",),
    profile=_profile_nginx,
)

REDIS_APP = FleetApp(
    name="redis",
    binary=kvstore.REDIS_BINARY,
    default_port=9600,
    redirect_symbol="redis_unknown_cmd",
    configure=_redis_configure,
    stage=_redis_stage,
    wanted_request=_redis_wanted,
    feature_request=_redis_feature,
    features=("SET",),
    profile=_profile_redis,
)

FLEET_APPS: dict[str, FleetApp] = {
    app.name: app for app in (LIGHTTPD_APP, NGINX_APP, REDIS_APP)
}


def get_app(name: str) -> FleetApp:
    app = FLEET_APPS.get(name)
    if app is None:
        raise FleetAppError(
            f"unknown fleet app {name!r}; known: {', '.join(sorted(FLEET_APPS))}"
        )
    return app


def profile_feature(app: FleetApp, feature: str) -> FeatureBlocks:
    """Memoized feature profile (one scratch-kernel run per process)."""
    key = (app.name, feature)
    cached = _PROFILE_CACHE.get(key)
    if cached is None:
        if feature not in app.features:
            raise FleetAppError(
                f"app {app.name!r} has no profiling recipe for feature "
                f"{feature!r}; known: {', '.join(app.features)}"
            )
        cached = app.profile(feature)
        _PROFILE_CACHE[key] = cached
    return cached
