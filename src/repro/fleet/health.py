"""Per-instance health: the supervisor's heartbeat state machine.

Every fleet instance carries a :class:`HealthRecord` — a small, strictly
validated state machine the :class:`~repro.fleet.supervisor.FleetSupervisor`
drives from heartbeat observations::

    HEALTHY ──probe fail──▶ SUSPECT ──threshold──▶ DOWN
       ▲  ▲                    │                    │
       │  └────probe ok────────┘                    │ begin recovery
       │                                            ▼
       └──────restore ok────────────────────── RESTORING
                                                    │ restore fail × N
                                                    ▼
                                              QUARANTINED ──reinstate()──▶ DOWN

Two properties are load-bearing (and property-tested):

* a DOWN instance can only become HEALTHY *through* RESTORING — there
  is no transition that skips the recovery step, so "it looks fine
  again" never silently cancels a pending restore;
* QUARANTINED is **absorbing**: no observation moves a quarantined
  instance; only an explicit operator :meth:`~HealthRecord.reinstate`
  does (back to DOWN, so it still has to pass through a recovery).

The machine is event-driven and owns no clock; callers pass
``kernel.clock_ns`` so the transition history is replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .. import telemetry


class HealthError(RuntimeError):
    """An illegal health-state transition was attempted."""


class HealthState(Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DOWN = "down"
    RESTORING = "restoring"
    QUARANTINED = "quarantined"


#: the complete transition relation; anything else raises HealthError.
#: DOWN -> HEALTHY is deliberately absent (recovery must pass through
#: RESTORING) and nothing leaves QUARANTINED except reinstate().
_ALLOWED: frozenset[tuple[HealthState, HealthState]] = frozenset(
    {
        (HealthState.HEALTHY, HealthState.SUSPECT),
        (HealthState.HEALTHY, HealthState.DOWN),
        (HealthState.SUSPECT, HealthState.HEALTHY),
        (HealthState.SUSPECT, HealthState.DOWN),
        (HealthState.DOWN, HealthState.RESTORING),
        (HealthState.RESTORING, HealthState.HEALTHY),
        (HealthState.RESTORING, HealthState.DOWN),
        (HealthState.RESTORING, HealthState.QUARANTINED),
        (HealthState.QUARANTINED, HealthState.DOWN),
    }
)

#: numeric level per state, for plottable per-instance health timelines
#: (0 = serving normally, higher = further from service)
_STATE_LEVEL: dict[HealthState, int] = {
    HealthState.HEALTHY: 0,
    HealthState.SUSPECT: 1,
    HealthState.DOWN: 2,
    HealthState.RESTORING: 3,
    HealthState.QUARANTINED: 4,
}


@dataclass
class HealthRecord:
    """Health of one instance, as observed by the supervisor."""

    instance: str
    state: HealthState = HealthState.HEALTHY
    #: probe failures since the last successful probe
    consecutive_probe_failures: int = 0
    #: failed recovery attempts since the instance went DOWN
    recovery_failures: int = 0
    #: every transition, as (clock_ns, new state)
    history: list[tuple[int, HealthState]] = field(default_factory=list)

    # ------------------------------------------------------------------

    def _transition(self, clock_ns: int, new: HealthState) -> None:
        if (self.state, new) not in _ALLOWED:
            raise HealthError(
                f"{self.instance}: illegal health transition "
                f"{self.state.value} -> {new.value}"
            )
        previous = self.state
        self.state = new
        self.history.append((clock_ns, new))
        telemetry.emit(
            "health", new.value,
            clock_ns=clock_ns,
            labels={"instance": self.instance},
            previous=previous.value,
        )
        telemetry.count(
            "health_transitions_total", state=new.value, instance=self.instance
        )
        telemetry.sample(
            "health_state", clock_ns, _STATE_LEVEL[new],
            instance=self.instance,
        )

    # ------------------------------------------------------------------
    # heartbeat observations

    def observe_ok(self, clock_ns: int) -> None:
        """A probe succeeded; a SUSPECT instance is healthy again."""
        if self.state is HealthState.QUARANTINED:
            return
        self.consecutive_probe_failures = 0
        if self.state is HealthState.SUSPECT:
            self._transition(clock_ns, HealthState.HEALTHY)

    def observe_failure(self, clock_ns: int, suspect_threshold: int) -> None:
        """A probe failed; enough consecutive failures take it DOWN."""
        if self.state is HealthState.QUARANTINED:
            return
        self.consecutive_probe_failures += 1
        if self.state is HealthState.HEALTHY:
            self._transition(clock_ns, HealthState.SUSPECT)
        if (
            self.state is HealthState.SUSPECT
            and self.consecutive_probe_failures >= suspect_threshold
        ):
            self._transition(clock_ns, HealthState.DOWN)

    def observe_crash(self, clock_ns: int) -> None:
        """The process is gone — no suspicion phase, straight to DOWN."""
        if self.state in (HealthState.HEALTHY, HealthState.SUSPECT):
            self._transition(clock_ns, HealthState.DOWN)

    # ------------------------------------------------------------------
    # recovery

    def begin_restore(self, clock_ns: int) -> None:
        self._transition(clock_ns, HealthState.RESTORING)

    def restore_succeeded(self, clock_ns: int) -> None:
        self._transition(clock_ns, HealthState.HEALTHY)
        self.consecutive_probe_failures = 0
        self.recovery_failures = 0

    def restore_failed(self, clock_ns: int, quarantine_limit: int) -> None:
        """Back to DOWN — or QUARANTINED at the consecutive-failure cap."""
        self.recovery_failures += 1
        if self.recovery_failures >= quarantine_limit:
            self._transition(clock_ns, HealthState.QUARANTINED)
        else:
            self._transition(clock_ns, HealthState.DOWN)

    def reinstate(self, clock_ns: int) -> None:
        """Operator override: the only way out of QUARANTINED.

        Returns the instance to DOWN — it still has to pass through a
        full recovery before serving again.
        """
        if self.state is not HealthState.QUARANTINED:
            raise HealthError(
                f"{self.instance}: reinstate() applies to QUARANTINED "
                f"instances, not {self.state.value}"
            )
        self.recovery_failures = 0
        self.consecutive_probe_failures = 0
        self._transition(clock_ns, HealthState.DOWN)

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "instance": self.instance,
            "state": self.state.value,
            "consecutive_probe_failures": self.consecutive_probe_failures,
            "recovery_failures": self.recovery_failures,
            "transitions": [
                {"clock_ns": t, "state": s.value} for t, s in self.history
            ],
        }
