"""DynaFleet: rolling, canary-gated, adaptive customization of a fleet.

The paper customizes one process at a time; this package scales the
same transactional checkpoint → rewrite → restore pipeline to N
instances of a server behind a load balancer, with rollout strategies
(canary / rolling), closed-loop health gates, fleet-wide rollback on
any failure, coverage-drift detection that re-enables features when
wanted traffic starts trapping on the removal set, and DynaGuard
supervision that recovers crashed instances from their committed
checkpoint images (see :mod:`repro.fleet.supervisor`).
"""

from .apps import FLEET_APPS, FleetApp, FleetAppError, get_app, profile_feature
from .controller import (
    FleetController,
    FleetError,
    FleetInstance,
    InstanceState,
)
from .drift import DriftDetector, DriftEvent, DriftStatus
from .health import HealthError, HealthRecord, HealthState
from .policy import FleetPolicy, PolicyError, ProbeResult
from .rollout import RolloutExecutor, RolloutReport, RolloutStep
from .supervisor import (
    FleetSupervisor,
    RecoveryOutcome,
    SupervisorEvent,
    inject_chaos,
)

__all__ = [
    "DriftDetector",
    "DriftEvent",
    "DriftStatus",
    "FLEET_APPS",
    "FleetApp",
    "FleetAppError",
    "FleetController",
    "FleetError",
    "FleetInstance",
    "FleetPolicy",
    "FleetSupervisor",
    "HealthError",
    "HealthRecord",
    "HealthState",
    "InstanceState",
    "PolicyError",
    "ProbeResult",
    "RecoveryOutcome",
    "RolloutExecutor",
    "RolloutReport",
    "RolloutStep",
    "SupervisorEvent",
    "get_app",
    "inject_chaos",
    "profile_feature",
]
