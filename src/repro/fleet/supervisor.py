"""DynaGuard: checkpoint-based self-healing for the fleet.

The transactional engine leaves every customized instance with a
*committed*, lint-checked CRIU image on disk — the supervisor turns
that artifact into an availability mechanism:

1. a **heartbeat** (:meth:`FleetSupervisor.tick`, gated by the policy's
   ``heartbeat_interval_ns``) checks each instance: a dead process tree
   goes straight to DOWN, a live one is probed with one wanted request
   and walks HEALTHY → SUSPECT → DOWN after ``suspect_threshold``
   consecutive failures (the *wedged* case);
2. a DOWN instance is **recovered** by restoring its last committed
   checkpoint image — the customized tree comes back with its removal
   set intact, TCP listeners rebound, and the balancer re-enabled.  An
   image that is unreadable or fails :func:`analysis.lint
   <repro.analysis.lint.lint_checkpoint>` falls back to a **pristine
   respawn** (freshly staged instance, features *not* removed — marked
   degraded for a later re-customization).  Transient restore faults
   retry with the engine's capped backoff; ``quarantine_limit``
   consecutive failed recoveries quarantine the instance until an
   operator :meth:`~FleetSupervisor.reinstate`;
3. a per-instance **trap-storm circuit breaker** watches the verifier
   trap log the same way the fleet-wide
   :class:`~repro.fleet.drift.DriftDetector` does, but reacts locally:
   a windowed burst of traps on the removal set demotes *that instance
   only* — drain, re-enable the features, rejoin degraded — instead of
   giving the feature back fleet-wide.

Chaos campaigns drive all of this through the seeded
``fleet.instance_crash`` / ``fleet.restore_image_corrupt`` /
``fleet.probe_hang`` injection sites (see :mod:`repro.faults` and
:func:`inject_chaos`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import faults, telemetry
from ..analysis.lint import lint_checkpoint
from ..core import read_verifier_log
from ..criu.images import CheckpointImage
from ..criu.restore import restore_tree
from ..faults import TransientFault
from .controller import FleetController, FleetInstance, InstanceState
from .health import HealthRecord, HealthState


@dataclass(frozen=True)
class SupervisorEvent:
    """One noteworthy supervisor action (for reports and assertions)."""

    clock_ns: int
    instance: str
    kind: str          # crash-detected | probe-failed | down | recovered |
                       # recovery-failed | quarantined | demoted | reinstated
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "clock_ns": self.clock_ns,
            "instance": self.instance,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass
class RecoveryOutcome:
    """How one recovery attempt of one instance ended."""

    instance: str
    succeeded: bool
    #: "checkpoint" (committed image restored) or "respawn" (pristine)
    source: str = ""
    note: str = ""


class FleetSupervisor:
    """Heartbeat, recovery, and circuit breaking for one fleet."""

    def __init__(self, controller: FleetController):
        self.controller = controller
        self.policy = controller.policy
        self.records: dict[str, HealthRecord] = {
            instance.name: HealthRecord(instance.name)
            for instance in controller.instances
        }
        self.events: list[SupervisorEvent] = []
        self.recoveries: list[RecoveryOutcome] = []
        self.ticks = 0
        self._last_tick_ns: int | None = None
        #: per-instance (clock_ns, hits) observations for the trap storm
        self._trap_window: dict[str, list[tuple[int, int]]] = {}
        #: per-instance trapped offsets per feature, accumulated by the
        #: breaker scans and consumed by a shelve (drift_action=shelve)
        self._storm_pending: dict[str, dict[str, set[int]]] = {}
        #: per-instance breaker trips (demotions) for breaker_status()
        self.breaker_trips: dict[str, int] = {}
        # the controller folds our health/breaker view into status()
        controller.supervisor = self
        # traps logged before the supervisor existed are history
        for instance in controller.instances:
            if instance.customized:
                controller.sync_traps(instance)

    # ------------------------------------------------------------------
    # introspection

    def record(self, ref: int | str) -> HealthRecord:
        return self.records[self.controller.instance(ref).name]

    @property
    def settled(self) -> bool:
        """Every instance is HEALTHY or cleanly QUARANTINED."""
        return all(
            r.state in (HealthState.HEALTHY, HealthState.QUARANTINED)
            for r in self.records.values()
        )

    def _event(self, instance: FleetInstance, kind: str, detail: str = "") -> None:
        now = self.controller.kernel.clock_ns
        self.events.append(SupervisorEvent(now, instance.name, kind, detail))
        telemetry.emit(
            "supervisor", kind,
            clock_ns=now, labels={"instance": instance.name}, detail=detail,
        )
        telemetry.count("supervisor_events_total", kind=kind)

    def supervision_status(self) -> dict:
        """Health + breaker view, for :meth:`FleetController.status`."""
        return {
            "ticks": self.ticks,
            "settled": self.settled,
            "health": {
                name: record.state.value
                for name, record in sorted(self.records.items())
            },
            "breakers": self.breaker_status(),
            "recoveries": {
                "attempts": len(self.recoveries),
                "succeeded": sum(1 for o in self.recoveries if o.succeeded),
            },
        }

    def breaker_status(self) -> dict:
        """Per-instance trap-storm breaker state."""
        out: dict[str, dict] = {}
        for instance in self.controller.instances:
            window = self._trap_window.get(instance.name, [])
            out[instance.name] = {
                "trips": self.breaker_trips.get(instance.name, 0),
                "window_hits": sum(h for __, h in window),
                "threshold": self.policy.trap_storm_threshold,
                "degraded": instance.degraded,
            }
        return out

    # ------------------------------------------------------------------
    # heartbeat

    def tick(self, force: bool = False) -> list[SupervisorEvent]:
        """One supervision pass; returns the events it generated.

        Gated by the policy's heartbeat interval: calls arriving early
        are no-ops (``force=True`` overrides), so the driver can call
        this from every timeline event without oversampling.
        """
        now = self.controller.kernel.clock_ns
        if (
            not force
            and self._last_tick_ns is not None
            and now - self._last_tick_ns < self.policy.heartbeat_interval_ns
        ):
            return []
        self._last_tick_ns = now
        self.ticks += 1
        before = len(self.events)
        for instance in self.controller.instances:
            record = self.records[instance.name]
            if record.state is HealthState.QUARANTINED:
                continue
            if record.state in (HealthState.HEALTHY, HealthState.SUSPECT):
                self._heartbeat(instance, record)
            if record.state is HealthState.DOWN:
                self._recover(instance, record)
        return self.events[before:]

    def _heartbeat(self, instance: FleetInstance, record: HealthRecord) -> None:
        kernel = self.controller.kernel
        assert self.controller.pool is not None
        if not self.controller.alive(instance):
            record.observe_crash(kernel.clock_ns)
            self.controller.pool.mark_down(instance.port)
            self._event(instance, "crash-detected")
            return
        if self._probe_ok(instance):
            record.observe_ok(kernel.clock_ns)
            self._check_trap_storm(instance)
            return
        record.observe_failure(kernel.clock_ns, self.policy.suspect_threshold)
        self._event(
            instance,
            "probe-failed",
            f"consecutive={record.consecutive_probe_failures}",
        )
        if record.state is HealthState.DOWN:
            self.controller.pool.mark_down(instance.port)
            self._event(instance, "down", "suspect threshold reached")

    def _probe_ok(self, instance: FleetInstance) -> bool:
        """One wanted request against the instance's own port."""
        fault = faults.check("fleet.probe_hang", detail=instance.name)
        if fault is not None:
            return False       # the probe timed out; the instance may be wedged
        try:
            return self.controller.app.wanted_request(
                self.controller.kernel, instance.port
            )
        except Exception:  # noqa: BLE001 — a failed probe, not a bug
            return False

    # ------------------------------------------------------------------
    # recovery

    def _recover(self, instance: FleetInstance, record: HealthRecord) -> None:
        """One recovery attempt: committed image first, pristine second."""
        controller = self.controller
        kernel = controller.kernel
        if record.recovery_failures:
            # capped exponential backoff between consecutive attempts
            kernel.clock_ns += instance.engine.cost_model.retry_backoff(
                record.recovery_failures
            )
        if controller.alive(instance):
            # wedged, not dead: take the tree down so its pids free up
            kernel.crash_process(instance.root_pid)
        record.begin_restore(kernel.clock_ns)
        outcome = self._restore_from_checkpoint(instance)
        if not outcome.succeeded and outcome.source != "checkpoint-error":
            # unusable image (missing, corrupt, or lint-rejected):
            # fall back to a pristine respawn without the removal set
            respawn = self._respawn_pristine(instance, note=outcome.note)
            outcome = respawn
        self.recoveries.append(outcome)
        telemetry.count(
            "recoveries_total",
            outcome="succeeded" if outcome.succeeded else "failed",
            source=outcome.source,
        )
        if outcome.succeeded:
            controller.sync_traps(instance)
            assert controller.pool is not None
            controller.pool.mark_up(instance.port)
            instance.state = InstanceState.DRAINED
            controller.rejoin(instance)
            record.restore_succeeded(kernel.clock_ns)
            self._event(instance, "recovered", f"source={outcome.source}")
            return
        record.restore_failed(kernel.clock_ns, self.policy.quarantine_limit)
        if record.state is HealthState.QUARANTINED:
            instance.state = InstanceState.QUARANTINED
            self._event(instance, "quarantined", outcome.note)
        else:
            self._event(
                instance,
                "recovery-failed",
                f"attempt={record.recovery_failures}: {outcome.note}",
            )

    def _restore_from_checkpoint(self, instance: FleetInstance) -> RecoveryOutcome:
        """Restore the last *committed* transactional image, linted."""
        kernel = self.controller.kernel
        engine = instance.engine
        try:
            faults.trip("fleet.restore_image_corrupt", detail=instance.name)
            checkpoint = CheckpointImage.load(kernel.fs, engine.image_dir)
        except Exception as exc:  # noqa: BLE001 — unusable image, not fatal
            return RecoveryOutcome(
                instance.name, False, "no-image", f"image unreadable: {exc!r}"
            )
        lint = lint_checkpoint(kernel, checkpoint)
        if not lint.ok:
            return RecoveryOutcome(
                instance.name, False, "lint-reject",
                f"committed image failed lint: {lint.summary()}",
            )
        kernel.net.release_port(instance.port)
        failures = 0
        while True:
            try:
                restore_tree(kernel, checkpoint, engine.cost_model)
                break
            except TransientFault as fault:
                failures += 1
                if failures >= engine.max_attempts:
                    return RecoveryOutcome(
                        instance.name, False, "checkpoint-error",
                        f"restore retry budget exhausted: {fault!r}",
                    )
                kernel.clock_ns += engine.cost_model.retry_backoff(failures)
            except Exception as exc:  # noqa: BLE001 — permanent restore failure
                return RecoveryOutcome(
                    instance.name, False, "checkpoint-error",
                    f"restore failed: {exc!r}",
                )
        instance.root_pid = checkpoint.root().pid
        return RecoveryOutcome(instance.name, True, "checkpoint")

    def _respawn_pristine(
        self, instance: FleetInstance, note: str
    ) -> RecoveryOutcome:
        """Stage a fresh instance: available again, but uncustomized."""
        kernel = self.controller.kernel
        kernel.net.release_port(instance.port)
        try:
            proc = self.controller.app.stage(kernel, instance.port)
        except Exception as exc:  # noqa: BLE001
            return RecoveryOutcome(
                instance.name, False, "respawn-error",
                f"{note}; respawn failed: {exc!r}",
            )
        instance.root_pid = proc.pid
        instance.degraded = True
        return RecoveryOutcome(instance.name, True, "respawn", note)

    def reinstate(self, ref: int | str) -> list[SupervisorEvent]:
        """Operator override: pull ``ref`` out of quarantine and recover it."""
        instance = self.controller.instance(ref)
        record = self.records[instance.name]
        record.reinstate(self.controller.kernel.clock_ns)
        instance.state = InstanceState.DRAINED
        self._event(instance, "reinstated")
        before = len(self.events)
        self._recover(instance, record)
        return self.events[before:]

    # ------------------------------------------------------------------
    # trap-storm circuit breaker

    def _check_trap_storm(self, instance: FleetInstance) -> None:
        """Demote *this* instance when its removal set traps too hot."""
        if not instance.customized:
            return
        controller = self.controller
        kernel = controller.kernel
        report = read_verifier_log(kernel, controller.process(instance))
        fresh = report.trapped_addresses[instance.traps_seen:]
        instance.traps_seen = len(report.trapped_addresses)
        now = kernel.clock_ns
        telemetry.emit(
            "traps", "breaker-scan",
            clock_ns=now,
            labels={"instance": instance.name},
            total=instance.traps_seen,
        )
        telemetry.gauge_set(
            "traps_seen", instance.traps_seen, instance=instance.name
        )
        telemetry.sample(
            "traps_seen", now, instance.traps_seen, instance=instance.name
        )
        window = self._trap_window.setdefault(instance.name, [])
        if fresh:
            base = controller.module_base(instance)
            hits = 0
            pending = self._storm_pending.setdefault(instance.name, {})
            for feature_name in self.policy.features:
                active = {
                    block.offset
                    for block in instance.engine.disabled_blocks(
                        instance.root_pid, feature_name
                    )
                }
                hit_offsets = {
                    address - base for address in fresh
                    if address - base in active
                }
                if hit_offsets:
                    hits += sum(
                        1 for address in fresh if address - base in active
                    )
                    pending.setdefault(feature_name, set()).update(
                        hit_offsets
                    )
            if hits:
                window.append((now, hits))
        horizon = now - self.policy.trap_storm_window_ns
        window[:] = [(t, h) for t, h in window if t >= horizon]
        if sum(h for __, h in window) < self.policy.trap_storm_threshold:
            return
        if self.policy.drift_action == "shelve":
            self._shelve_storm(instance)
        else:
            self._demote(instance)
        window.clear()

    def _shelve_storm(self, instance: FleetInstance) -> None:
        """Shelve the storming blocks instead of demoting the instance.

        The graceful breaker arm (``drift_action="shelve"``): only the
        blocks that actually trapped come back into service; the rest
        of the removal set keeps the instance debloated.  Overflowing
        the policy's ``shelve_max_live_blocks`` budget still falls back
        to a full demotion — at that point most of the feature is hot
        and block-granular churn stops paying for itself.
        """
        pending = self._storm_pending.pop(instance.name, {})
        for feature_name, offsets in sorted(pending.items()):
            already = set(
                instance.engine.shelved_offsets(
                    instance.root_pid, feature_name
                )
            )
            if len(already | offsets) > self.policy.shelve_max_live_blocks:
                self._demote(instance)
                return
        shelved = 0
        for feature_name, offsets in sorted(pending.items()):
            report = self.controller.shelve_blocks(
                instance, feature_name, sorted(offsets)
            )
            if report is not None:
                shelved += len(offsets)
        telemetry.count("breaker_shelves_total", instance=instance.name)
        self._event(instance, "shelved", f"blocks={shelved}")

    def _demote(self, instance: FleetInstance) -> None:
        """Re-enable the features on this instance only; mark degraded."""
        controller = self.controller
        controller.drain(instance)
        try:
            restored = controller.rollback(instance)
        finally:
            controller.rejoin(instance)
        instance.degraded = True
        self._storm_pending.pop(instance.name, None)
        self.breaker_trips[instance.name] = (
            self.breaker_trips.get(instance.name, 0) + 1
        )
        telemetry.count("breaker_trips_total", instance=instance.name)
        self._event(
            instance, "demoted", f"reenabled={','.join(restored) or 'none'}"
        )

    # ------------------------------------------------------------------
    # reporting

    def report(self) -> dict:
        return {
            "ticks": self.ticks,
            "settled": self.settled,
            "health": {
                name: record.to_dict() for name, record in self.records.items()
            },
            "events": [event.to_dict() for event in self.events],
            "recoveries": [
                {
                    "instance": o.instance,
                    "succeeded": o.succeeded,
                    "source": o.source,
                    "note": o.note,
                }
                for o in self.recoveries
            ],
        }


# ----------------------------------------------------------------------
# seeded chaos entry point


def inject_chaos(controller: FleetController) -> list[str]:
    """Visit ``fleet.instance_crash`` once per live instance.

    Call this from timeline events *between* heartbeats: a crash the
    supervisor has not noticed yet leaves the orphaned listener in the
    balancer's stale view, which is exactly the window connection-level
    failover exists for.  Returns the names of instances crashed.
    """
    crashed: list[str] = []
    for instance in controller.instances:
        if not controller.alive(instance):
            continue
        fault = faults.check("fleet.instance_crash", detail=instance.name)
        if fault is not None:
            controller.kernel.crash_process(instance.root_pid)
            crashed.append(instance.name)
    return crashed
