"""Declarative fleet customization policy.

A :class:`FleetPolicy` is the operator-facing contract for a rollout:
*what* to remove (feature names resolved by the app adapter's profiling
recipe), *how* blocked code should behave (trap policy and block mode),
*how* the change spreads over the fleet (strategy, canary size,
``max_unavailable`` budget, health-gate thresholds), and *when* the
fleet must adapt again (coverage-drift window and threshold).

Policies are plain data: they validate on construction and round-trip
through :meth:`to_dict` / :meth:`from_dict`, so they can live in config
files and CLI flags.  The paper's one-process verifier mode is promoted
here to fleet policy — drift handling is a field, not an ad-hoc script.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

from ..core import BlockMode, TrapPolicy

SECOND_NS = 1_000_000_000

STRATEGIES = ("canary", "rolling")
#: TERMINATE is deliberately absent: a terminate trap kills a serving
#: instance, which violates the fleet's availability contract
TRAP_POLICIES = ("redirect", "verify")
BLOCK_MODES = ("entry", "all", "wipe")
DRIFT_ACTIONS = ("reenable", "ignore", "shelve", "recustomize")


class PolicyError(ValueError):
    """An invalid or inconsistent FleetPolicy specification."""


@dataclass(frozen=True)
class FleetPolicy:
    """What to remove, how to roll it out, and when to adapt."""

    #: feature names to remove, resolved by the app adapter's profiler
    features: tuple[str, ...]
    #: behaviour of blocked code: "redirect" (app error arm) or "verify"
    trap_policy: str = "redirect"
    #: how much of each feature to patch: "entry", "all", or "wipe"
    block_mode: str = "entry"
    #: rollout strategy: "canary" (gate on one, then roll) or "rolling"
    strategy: str = "canary"
    #: instances allowed out of rotation at once during the roll phase
    max_unavailable: int = 1
    #: wanted requests the health probe sends per customized instance
    probe_requests: int = 6
    #: fraction of probe requests that must succeed to pass the gate
    probe_min_success: float = 1.0
    #: with "redirect", the gate also requires removed features to be
    #: actually blocked on the customized instance
    probe_check_blocked: bool = True
    #: drift: traps on the active removal set within the window...
    drift_window_ns: int = 10 * SECOND_NS
    #: ...needed to declare coverage drift and trigger the action
    drift_trap_threshold: int = 1
    #: "reenable" (restore the feature fleet-wide), "ignore" (log only),
    #: "shelve" (restore only the trapping blocks, with decay), or
    #: "recustomize" (re-profile against the drifted trap mix and roll
    #: out a narrower removal set)
    drift_action: str = "reenable"
    #: shelve: virtual time a shelved block must stay cold before the
    #: decay sweep re-removes it
    shelve_decay_ns: int = 8 * SECOND_NS
    #: shelve: max blocks of one feature live on the shelf per instance
    #: before shelving escalates to a full local re-enable (demote)
    shelve_max_live_blocks: int = 8
    #: supervision: minimum virtual time between supervisor heartbeats
    heartbeat_interval_ns: int = SECOND_NS
    #: consecutive failed probes before SUSPECT becomes DOWN
    suspect_threshold: int = 2
    #: consecutive failed recoveries before an instance is quarantined
    quarantine_limit: int = 3
    #: extra backends one balanced connect may try after a dead pick
    failover_budget: int = 1
    #: trap-storm circuit breaker: removal-set traps within this window...
    trap_storm_window_ns: int = 5 * SECOND_NS
    #: ...needed to demote the trapping instance (re-enable locally)
    trap_storm_threshold: int = 4
    #: mesh: number of hosts (kernels) the fleet is sharded over; 1 is
    #: the classic single-kernel fleet
    shards: int = 1
    #: mesh: virtual nodes per shard on the consistent-hash ring (more
    #: replicas = smoother keyspace balance, smaller remapped arcs)
    ring_replicas: int = 8
    #: mesh: extra hosts one frontend dispatch may try after landing on
    #: a down host (0 = shed immediately; the cross-host analogue of
    #: ``failover_budget``)
    host_failover_budget: int = 1

    def __post_init__(self) -> None:
        if isinstance(self.features, str):
            object.__setattr__(self, "features", (self.features,))
        else:
            object.__setattr__(self, "features", tuple(self.features))
        if not self.features:
            raise PolicyError("a fleet policy must name at least one feature")
        if self.strategy not in STRATEGIES:
            raise PolicyError(
                f"unknown strategy {self.strategy!r}; use one of {STRATEGIES}"
            )
        if self.trap_policy not in TRAP_POLICIES:
            raise PolicyError(
                f"unknown trap policy {self.trap_policy!r}; a fleet rollout "
                f"allows {TRAP_POLICIES} (terminate would kill serving "
                "instances)"
            )
        if self.block_mode not in BLOCK_MODES:
            raise PolicyError(
                f"unknown block mode {self.block_mode!r}; use one of {BLOCK_MODES}"
            )
        if self.max_unavailable < 1:
            raise PolicyError("max_unavailable must be >= 1")
        if self.probe_requests < 1:
            raise PolicyError("probe_requests must be >= 1")
        if not 0.0 < self.probe_min_success <= 1.0:
            raise PolicyError("probe_min_success must be in (0, 1]")
        if self.drift_window_ns <= 0:
            raise PolicyError("drift_window_ns must be positive")
        if self.drift_trap_threshold < 1:
            raise PolicyError("drift_trap_threshold must be >= 1")
        if self.drift_action not in DRIFT_ACTIONS:
            raise PolicyError(
                f"unknown drift action {self.drift_action!r}; use one of "
                f"{DRIFT_ACTIONS}"
            )
        if self.shelve_decay_ns <= 0:
            raise PolicyError("shelve_decay_ns must be positive")
        if self.shelve_max_live_blocks < 1:
            raise PolicyError("shelve_max_live_blocks must be >= 1")
        if self.heartbeat_interval_ns <= 0:
            raise PolicyError("heartbeat_interval_ns must be positive")
        if self.suspect_threshold < 1:
            raise PolicyError("suspect_threshold must be >= 1")
        if self.quarantine_limit < 1:
            raise PolicyError("quarantine_limit must be >= 1")
        if self.failover_budget < 0:
            raise PolicyError("failover_budget must be >= 0")
        if self.trap_storm_window_ns <= 0:
            raise PolicyError("trap_storm_window_ns must be positive")
        if self.trap_storm_threshold < 1:
            raise PolicyError("trap_storm_threshold must be >= 1")
        if self.shards < 1:
            raise PolicyError(
                f"shards must be >= 1 (a mesh needs at least one host; "
                f"got {self.shards})"
            )
        if self.ring_replicas < 1:
            raise PolicyError(
                f"ring_replicas must be >= 1 (each shard needs at least "
                f"one point on the hash ring; got {self.ring_replicas})"
            )
        if self.host_failover_budget < 0:
            raise PolicyError("host_failover_budget must be >= 0")

    # ------------------------------------------------------------------
    # enum bridges into the single-process engine

    @property
    def trap_policy_enum(self) -> TrapPolicy:
        return {
            "redirect": TrapPolicy.REDIRECT,
            "verify": TrapPolicy.VERIFY,
        }[self.trap_policy]

    @property
    def block_mode_enum(self) -> BlockMode:
        return {
            "entry": BlockMode.ENTRY,
            "all": BlockMode.ALL,
            "wipe": BlockMode.WIPE,
        }[self.block_mode]

    # ------------------------------------------------------------------
    # declarative round-trip

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["features"] = list(self.features)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetPolicy":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise PolicyError(
                f"unknown policy keys: {', '.join(sorted(unknown))}"
            )
        if "features" not in payload:
            raise PolicyError("policy needs a 'features' list")
        return cls(**payload)


@dataclass
class ProbeResult:
    """Outcome of one closed-loop health probe against one instance."""

    instance: str
    sent: int = 0
    succeeded: int = 0
    #: feature name -> True when the removed feature is really blocked
    features_blocked: dict[str, bool] = field(default_factory=dict)
    #: errors raised while probing (connection refused etc.)
    errors: list[str] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.sent if self.sent else 0.0

    def passed(self, policy: FleetPolicy) -> bool:
        if self.success_rate < policy.probe_min_success:
            return False
        if policy.probe_check_blocked and policy.trap_policy == "redirect":
            if not all(self.features_blocked.get(f, False) for f in policy.features):
                return False
        return True

    def to_dict(self) -> dict:
        return {
            "instance": self.instance,
            "sent": self.sent,
            "succeeded": self.succeeded,
            "success_rate": self.success_rate,
            "features_blocked": dict(self.features_blocked),
            "errors": list(self.errors),
        }
