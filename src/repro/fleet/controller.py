"""The fleet controller: instance lifecycle behind a load balancer.

A :class:`FleetController` owns N instances of one guest application on
a shared kernel, each listening on its own port, all registered behind
one virtual frontend port (:class:`~repro.kernel.network.BackendPool`).
Per instance it keeps a dedicated transactional
:class:`~repro.core.DynaCut` engine (separate image directories, so a
rollback of instance *i* can never clobber instance *j*'s pristine
images) and exposes the lifecycle verbs the rollout strategies compose:

``drain`` → take the instance out of rotation (new balanced connections
route around it) · ``customize`` → run the policy's feature removals
through the instance's engine · ``probe`` → closed-loop workload health
check against the instance's own port · ``rejoin`` → back into rotation
· ``rollback`` → restore every removed feature's original bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .. import telemetry
from ..core import (
    CustomizationAborted,
    DynaCut,
    FeatureBlocks,
    RewriteReport,
    read_verifier_log,
)
from ..kernel.kernel import Kernel
from ..kernel.network import BackendPool
from ..kernel.process import Process
from .apps import FleetApp, get_app, profile_feature
from .policy import FleetPolicy, ProbeResult


class FleetError(RuntimeError):
    """Misuse of the fleet API (bad instance, wrong state)."""


class InstanceState(Enum):
    IN_SERVICE = "in-service"
    DRAINED = "drained"
    CUSTOMIZING = "customizing"
    FAILED = "failed"
    QUARANTINED = "quarantined"


@dataclass
class FleetInstance:
    """One managed server instance."""

    index: int
    name: str
    port: int
    root_pid: int
    engine: DynaCut
    state: InstanceState = InstanceState.IN_SERVICE
    #: trap-log entries already attributed by the drift detector
    traps_seen: int = 0
    #: serving without (all of) its customizations: the supervisor
    #: respawned it pristine, or the trap-storm breaker demoted it
    degraded: bool = False

    @property
    def customized_features(self) -> list[str]:
        return self.engine.disabled_features(self.root_pid)

    @property
    def customized(self) -> bool:
        return bool(self.customized_features)


class FleetController:
    """Spawn, balance, and customize a fleet of app instances."""

    def __init__(
        self,
        kernel: Kernel,
        app: str | FleetApp,
        policy: FleetPolicy,
        size: int,
        base_port: int | None = None,
        frontend_port: int | None = None,
        image_root: str = "/tmp/criu/fleet",
    ):
        if size < 1:
            raise FleetError("a fleet needs at least one instance")
        self.kernel = kernel
        self.app = get_app(app) if isinstance(app, str) else app
        self.policy = policy
        self.size = size
        self.base_port = base_port if base_port is not None else self.app.default_port
        self.frontend_port = (
            frontend_port if frontend_port is not None else self.base_port - 1
        )
        self.image_root = image_root.rstrip("/")
        self.instances: list[FleetInstance] = []
        self.pool: BackendPool | None = None
        #: feature name -> profiled removal set (shared: same binary)
        self.features: dict[str, FeatureBlocks] = {}
        #: set by FleetSupervisor.__init__ when one attaches; status()
        #: folds its health/breaker view in when present
        self.supervisor = None
        #: set by DriftDetector.__init__ when one attaches; status()
        #: folds its shelving/recustomization view in when present
        self.drift = None

    # ------------------------------------------------------------------
    # lifecycle

    def spawn_fleet(self) -> list[FleetInstance]:
        """Profile the policy's features, boot N instances, register LB."""
        if self.instances:
            raise FleetError("fleet already spawned")
        for feature in self.policy.features:
            self.features[feature] = profile_feature(self.app, feature)
        self.pool = self.kernel.net.register_frontend(self.frontend_port)
        self.pool.failover_budget = self.policy.failover_budget
        for index in range(self.size):
            port = self.base_port + index
            proc = self.app.stage(self.kernel, port)
            engine = DynaCut(
                self.kernel,
                image_dir=f"{self.image_root}/{self.app.name}-{index}",
            )
            instance = FleetInstance(
                index=index,
                name=f"{self.app.name}-{index}",
                port=port,
                root_pid=proc.pid,
                engine=engine,
            )
            self.instances.append(instance)
            self.pool.add(port)
        return self.instances

    def instance(self, ref: int | str) -> FleetInstance:
        for instance in self.instances:
            if instance.index == ref or instance.name == ref:
                return instance
        raise FleetError(f"no fleet instance {ref!r}")

    def process(self, instance: FleetInstance) -> Process:
        proc = self.kernel.processes.get(instance.root_pid)
        if proc is None:
            raise FleetError(f"{instance.name}: pid {instance.root_pid} unknown")
        return proc

    def alive(self, instance: FleetInstance) -> bool:
        proc = self.kernel.processes.get(instance.root_pid)
        return proc is not None and proc.alive

    # ------------------------------------------------------------------
    # rotation

    def drain(self, instance: FleetInstance) -> None:
        """Stop routing new balanced connections to ``instance``.

        The closed-loop workload model means there are no in-flight
        requests between driver iterations; any connection established
        earlier survives checkpoint/restore via TCP repair regardless.
        """
        assert self.pool is not None
        self.pool.drain(instance.port)
        if instance.state is InstanceState.IN_SERVICE:
            instance.state = InstanceState.DRAINED

    def rejoin(self, instance: FleetInstance) -> None:
        assert self.pool is not None
        if not self.alive(instance):
            raise FleetError(
                f"{instance.name}: refusing to rejoin — pid "
                f"{instance.root_pid} is not alive; recover it first "
                f"(a dead listener in the pool turns into refused "
                f"connections for balanced clients)"
            )
        self.pool.rejoin(instance.port)
        if instance.state not in (
            InstanceState.FAILED, InstanceState.QUARANTINED
        ):
            instance.state = InstanceState.IN_SERVICE

    # ------------------------------------------------------------------
    # customization

    def customize(self, instance: FleetInstance) -> list[RewriteReport]:
        """Apply every policy feature removal to ``instance``.

        Raises :class:`~repro.core.CustomizationAborted` (after the
        engine has already rolled the instance back to its pristine
        image) when any transaction fails permanently; features removed
        by *earlier* transactions of this call are re-enabled first, so
        the instance is never left half-customized across features.
        """
        reports: list[RewriteReport] = []
        instance.state = InstanceState.CUSTOMIZING
        applied: list[str] = []
        with telemetry.label_scope(instance=instance.name):
            try:
                for feature_name in self.policy.features:
                    feature = self.features[feature_name]
                    # re-customizing an already-customized instance (a
                    # narrowed removal set rolling out after drift)
                    # restores the old set first so the engine's record
                    # tracks exactly the new one
                    if feature_name in instance.customized_features:
                        self.rollback_feature(instance, feature_name)
                    report = instance.engine.disable_feature(
                        instance.root_pid,
                        feature,
                        policy=self.policy.trap_policy_enum,
                        mode=self.policy.block_mode_enum,
                        redirect_symbol=(
                            self.app.redirect_symbol
                            if self.policy.trap_policy == "redirect"
                            else None
                        ),
                    )
                    reports.append(report)
                    applied.append(feature_name)
            except CustomizationAborted:
                for feature_name in reversed(applied):
                    self.rollback_feature(instance, feature_name)
                instance.state = InstanceState.DRAINED
                raise
        instance.state = InstanceState.DRAINED
        return reports

    def rollback_feature(self, instance: FleetInstance, feature_name: str) -> None:
        if feature_name in instance.customized_features:
            instance.engine.enable_feature(
                instance.root_pid, self.features[feature_name]
            )

    def rollback(self, instance: FleetInstance) -> list[str]:
        """Restore every feature this controller removed from ``instance``."""
        if not self.alive(instance):
            journal = instance.engine.last_journal
            phase = journal.phase if journal is not None else "none"
            raise FleetError(
                f"{instance.name}: cannot roll back a dead instance (pid "
                f"{instance.root_pid}, last journal phase {phase!r}); "
                f"recover it from its committed image first"
            )
        restored = []
        with telemetry.label_scope(instance=instance.name):
            for feature_name in reversed(self.policy.features):
                if feature_name in instance.customized_features:
                    self.rollback_feature(instance, feature_name)
                    restored.append(feature_name)
        return restored

    # ------------------------------------------------------------------
    # health probing

    def probe(self, instance: FleetInstance) -> ProbeResult:
        """Closed-loop workload probe against the instance's own port."""
        result = ProbeResult(instance=instance.name)
        for __ in range(self.policy.probe_requests):
            result.sent += 1
            try:
                if self.app.wanted_request(self.kernel, instance.port):
                    result.succeeded += 1
            except Exception as exc:  # noqa: BLE001 — a failed probe, not a bug
                result.errors.append(repr(exc))
        # Exercising the removed features is only meaningful under the
        # redirect policy (the gate checks they really serve the error
        # arm).  Under the verifier it would be actively harmful: every
        # probe trap *heals* its block in live memory, so one health
        # probe would silently restore the whole removal set and leave
        # nothing debloated — the probe must not undo the customization.
        if self.policy.trap_policy == "verify":
            return result
        for feature_name in self.policy.features:
            try:
                served = self.app.feature_request(
                    self.kernel, instance.port, feature_name
                )
            except Exception as exc:  # noqa: BLE001
                result.errors.append(repr(exc))
                served = False
            result.features_blocked[feature_name] = not served
        return result

    def sync_traps(self, instance: FleetInstance) -> int:
        """Snapshot the instance's trap log high-water mark.

        Traps logged before the snapshot (notably the health probe's own
        feature requests, which *deliberately* hit the removal set) are
        excluded from later drift attribution.
        """
        if self.alive(instance):
            report = read_verifier_log(self.kernel, self.process(instance))
            instance.traps_seen = len(report.trapped_addresses)
            now = self.kernel.clock_ns
            telemetry.emit(
                "traps", "sync",
                clock_ns=now,
                labels={"instance": instance.name},
                total=instance.traps_seen,
            )
            telemetry.gauge_set(
                "traps_seen", instance.traps_seen, instance=instance.name
            )
            telemetry.sample(
                "traps_seen", now, instance.traps_seen, instance=instance.name
            )
        return instance.traps_seen

    # ------------------------------------------------------------------
    # DynaShelve verbs

    def shelve_blocks(
        self,
        instance: FleetInstance,
        feature_name: str,
        offsets: list[int],
    ) -> RewriteReport | None:
        """Shelve the trapping blocks of one feature on one instance.

        Drains the instance around the journaled partial re-enable,
        resets the verifier trap log (the shelved traps are consumed),
        and re-syncs the drift high-water mark.  Returns ``None`` when
        every offset was already shelved (no transaction).
        """
        feature = self.features[feature_name]
        try:
            self.drain(instance)
            with telemetry.label_scope(instance=instance.name):
                report = instance.engine.reenable_blocks(
                    instance.root_pid, feature, offsets, reset_log=True
                )
        finally:
            if self.alive(instance):
                self.rejoin(instance)
        self.sync_traps(instance)
        return report

    def decay_shelved(
        self,
        instance: FleetInstance,
        feature_name: str,
        decay_ns: int | None = None,
    ):
        """Re-remove one feature's cold shelved blocks on one instance.

        Peeks at the shelf first and opens no transaction (and does not
        drain) when nothing has been cold for ``decay_ns`` (default:
        the policy's ``shelve_decay_ns``).  Returns the re-removed
        blocks.
        """
        decay = self.policy.shelve_decay_ns if decay_ns is None else decay_ns
        engine = instance.engine
        shelf = engine.shelved_blocks(instance.root_pid, feature_name)
        if not any(
            self.kernel.clock_ns - shelved.shelved_ns >= decay
            for shelved in shelf
        ):
            return []
        feature = self.features[feature_name]
        try:
            self.drain(instance)
            with telemetry.label_scope(instance=instance.name):
                cold = engine.decay_shelved(instance.root_pid, feature, decay)
        finally:
            if self.alive(instance):
                self.rejoin(instance)
        return cold

    def recustomize_feature(
        self,
        instance: FleetInstance,
        feature_name: str,
        narrowed: FeatureBlocks,
    ) -> RewriteReport:
        """Swap one instance's removal set for a narrower one.

        The adaptive-loop primitive (arXiv 2109.02775): restore the old
        set, then disable the ``narrowed`` feature through the same
        policy — all under a drain.  The fresh handler install resets
        the trap log, so the drift mark is re-synced afterwards.
        """
        try:
            self.drain(instance)
            with telemetry.label_scope(instance=instance.name):
                self.rollback_feature(instance, feature_name)
                report = instance.engine.disable_feature(
                    instance.root_pid,
                    narrowed,
                    policy=self.policy.trap_policy_enum,
                    mode=self.policy.block_mode_enum,
                    redirect_symbol=(
                        self.app.redirect_symbol
                        if self.policy.trap_policy == "redirect"
                        else None
                    ),
                )
        finally:
            if self.alive(instance):
                self.rejoin(instance)
        self.sync_traps(instance)
        return report

    # ------------------------------------------------------------------
    # status

    def module_base(self, instance: FleetInstance) -> int:
        proc = self.process(instance)
        for module in proc.modules:
            if module.name == self.app.binary:
                return module.load_base
        raise FleetError(
            f"{instance.name}: module {self.app.binary!r} not mapped"
        )

    def _pool_accounting(self) -> tuple[dict[int, int], dict[int, int]]:
        """Dispatch/failover counts per backend port.

        When a telemetry hub is recording, the metrics registry is the
        single source (the same counters every exporter sees); without
        one, fall back to the pool's own dicts.
        """
        assert self.pool is not None
        hub = telemetry.hub()
        if hub is None:
            return dict(self.pool.dispatched), dict(self.pool.failovers)
        backends = {str(port) for port in self.pool.backends}
        dispatched = {
            int(port): total
            for port, total in hub.registry.counters_by_label(
                "dispatch_total", "port"
            ).items()
            if port in backends
        }
        for port in self.pool.backends:
            dispatched.setdefault(port, 0)
        failovers = {
            int(port): total
            for port, total in hub.registry.counters_by_label(
                "failover_total", "port"
            ).items()
            if port in backends
        }
        return dispatched, failovers

    def status(self) -> dict:
        """Fleet-wide operator overview."""
        assert self.pool is not None
        dispatched, failovers = self._pool_accounting()
        status = {
            "app": self.app.name,
            "frontend_port": self.frontend_port,
            "size": self.size,
            "policy": self.policy.to_dict(),
            "pool": {
                "backends": list(self.pool.backends),
                "in_service": self.pool.in_service(),
                "drained": sorted(self.pool.drained),
                "down": sorted(self.pool.down),
                "dispatched": dispatched,
                "failovers": failovers,
            },
            "instances": [
                {
                    "name": instance.name,
                    "port": instance.port,
                    "pid": instance.root_pid,
                    "alive": self.alive(instance),
                    "state": instance.state.value,
                    "degraded": instance.degraded,
                    "customized_features": instance.customized_features,
                    "rewrites": len(instance.engine.history),
                    "traps_seen": instance.traps_seen,
                    "shelved_blocks": {
                        feature: len(
                            instance.engine.shelved_offsets(
                                instance.root_pid, feature
                            )
                        )
                        for feature in self.policy.features
                        if instance.engine.shelved_offsets(
                            instance.root_pid, feature
                        )
                    },
                }
                for instance in self.instances
            ],
        }
        if self.supervisor is not None:
            status["supervision"] = self.supervisor.supervision_status()
        if self.drift is not None:
            status["drift"] = self.drift.status.to_dict()
        return status
