"""Exporters over a recorded run: JSONL event log + Prometheus text.

Two complementary views of one :class:`~repro.telemetry.hub.TelemetryHub`:

* :func:`to_jsonl` — the **full event stream**, one JSON object per
  line, in emission order.  This is the replayable artifact: every
  number the fleet/supervisor CLIs report can be reconstructed from it
  alone (see :func:`summarize_events`), so campaign JSON files only
  need to commit digests.
* :func:`prometheus_snapshot` — a point-in-time text rendering of the
  metrics registry in the Prometheus exposition format (``# TYPE``
  headers, ``family{label="v"} value`` samples, cumulative histogram
  buckets).  :func:`parse_prometheus` round-trips it, which is what
  the CI telemetry job asserts.

Both renderings iterate instruments in sorted order and carry only
virtual-clock timestamps, so equal seeds produce byte-identical files.
"""

from __future__ import annotations

from typing import Iterable

from .hub import TelemetryEvent, TelemetryHub
from .registry import MetricsRegistry, labels_text


# ----------------------------------------------------------------------
# JSONL event stream

def to_jsonl(hub_or_events: TelemetryHub | Iterable[TelemetryEvent]) -> str:
    """Render the event stream as one JSON object per line."""
    events = (
        hub_or_events.events
        if isinstance(hub_or_events, TelemetryHub)
        else hub_or_events
    )
    return "".join(event.to_json() + "\n" for event in events)


def read_jsonl(text: str) -> list[TelemetryEvent]:
    """Parse a JSONL event stream back into events."""
    import json

    return [
        TelemetryEvent.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


# ----------------------------------------------------------------------
# Prometheus text exposition

def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def prometheus_snapshot(registry: MetricsRegistry, prefix: str = "dynacut_") -> str:
    """The registry in Prometheus text format (sorted, deterministic)."""
    lines: list[str] = []

    families: dict[str, list[str]] = {}

    def add(family: str, kind: str, sample_lines: list[str]) -> None:
        if family not in families:
            families[family] = [f"# TYPE {family} {kind}"]
        families[family].extend(sample_lines)

    for (name, labels), counter in sorted(registry.counters.items()):
        family = prefix + _sanitize(name)
        add(family, "counter", [f"{family}{labels_text(labels)} {counter.value}"])
    for (name, labels), gauge in sorted(registry.gauges.items()):
        family = prefix + _sanitize(name)
        add(family, "gauge", [f"{family}{labels_text(labels)} {gauge.value:g}"])
    for (name, labels), hist in sorted(registry.histograms.items()):
        family = prefix + _sanitize(name)
        sample_lines = []
        for le, cumulative in hist.cumulative_buckets():
            bucket_labels = dict(labels)
            bucket_labels["le"] = le
            rendered = labels_text(tuple(sorted(bucket_labels.items())))
            sample_lines.append(f"{family}_bucket{rendered} {cumulative}")
        sample_lines.append(f"{family}_sum{labels_text(labels)} {hist.total:g}")
        sample_lines.append(f"{family}_count{labels_text(labels)} {hist.count}")
        add(family, "histogram", sample_lines)

    out: list[str] = []
    for family in sorted(families):
        out.extend(families[family])
    return "\n".join(out) + "\n" if out else ""


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse a text snapshot into ``{'family{labels}': value}``.

    Strict enough for the CI assertion: every non-comment line must be
    ``name[{labels}] value`` with a float value, every ``{`` closed,
    and every family preceded by a ``# TYPE`` header.
    """
    values: dict[str, float] = {}
    typed: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                raise ValueError(f"line {lineno}: malformed TYPE header: {line!r}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        key, __, raw = line.rpartition(" ")
        if not key:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        if "{" in key and not key.endswith("}"):
            raise ValueError(f"line {lineno}: unclosed label set: {line!r}")
        family = key.split("{", 1)[0]
        base = family
        for suffix in ("_bucket", "_sum", "_count"):
            if family.endswith(suffix) and family[: -len(suffix)] in typed:
                base = family[: -len(suffix)]
        if base not in typed:
            raise ValueError(f"line {lineno}: sample without TYPE header: {line!r}")
        values[key] = float(raw)
    return values


# ----------------------------------------------------------------------
# event-stream reconstruction

def summarize_events(events: Iterable[TelemetryEvent]) -> dict:
    """Rebuild the CLI-reported aggregates from the event stream alone.

    The acceptance contract of the observability layer: per-instance
    trap counts, failover/dispatch totals, and rewrite-cost summaries
    computed *only* from the recorded events must equal what the live
    controller/supervisor objects reported for the same seed.
    """
    kinds: dict[str, int] = {}
    traps: dict[str, int] = {}
    failovers: dict[str, int] = {}
    dispatch: dict[str, int] = {}
    rewrites: dict[str, dict] = {}
    journal_phases: dict[str, int] = {}
    supervisor: dict[str, int] = {}
    health: dict[str, int] = {}
    drift_traps = 0
    drift_triggered = False
    spans: dict[str, dict] = {}

    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        instance = event.label("instance", "")
        if event.kind == "traps":
            # every traps_seen mutation emits the post-sync value, so
            # the last event per instance IS the live counter (recovery
            # from a committed image legitimately resets it — a max
            # would disagree with the controller after a crash)
            traps[instance] = int(event.field("total", 0))
        elif event.kind == "failover":
            port = event.label("port", "?")
            failovers[port] = failovers.get(port, 0) + 1
        elif event.kind == "dispatch":
            port = event.label("port", "?")
            dispatch[port] = dispatch.get(port, 0) + 1
        elif event.kind == "rewrite":
            summary = rewrites.setdefault(
                instance,
                {
                    "sessions": 0, "committed": 0, "rolled_back": 0,
                    "attempts": 0, "checkpoint_ns": 0, "restore_ns": 0,
                    "patch_ns": 0, "total_ns": 0, "blocks_patched": 0,
                    "blocks_restored": 0, "bytes_wiped": 0,
                },
            )
            summary["sessions"] += 1
            outcome = str(event.field("outcome", ""))
            if outcome == "committed":
                summary["committed"] += 1
            else:
                summary["rolled_back"] += 1
            summary["attempts"] += int(event.field("attempts", 0))
            for cost in (
                "checkpoint_ns", "restore_ns", "patch_ns", "total_ns",
                "blocks_patched", "blocks_restored", "bytes_wiped",
            ):
                summary[cost] += int(event.field(cost, 0))
        elif event.kind == "journal":
            journal_phases[event.name] = journal_phases.get(event.name, 0) + 1
        elif event.kind == "supervisor":
            supervisor[event.name] = supervisor.get(event.name, 0) + 1
        elif event.kind == "health":
            health[event.name] = health.get(event.name, 0) + 1
        elif event.kind == "drift":
            if event.name == "traps":
                drift_traps += int(event.field("hits", 0))
            elif event.name == "triggered":
                drift_triggered = True
        elif event.kind == "span":
            entry = spans.setdefault(
                event.name, {"count": 0, "total_ns": 0, "errors": 0}
            )
            entry["count"] += 1
            entry["total_ns"] += int(event.field("duration_ns", 0))
            if str(event.field("status", "ok")) != "ok":
                entry["errors"] += 1

    return {
        "events": sum(kinds.values()),
        "kinds": dict(sorted(kinds.items())),
        "traps": dict(sorted(traps.items())),
        "failovers": {
            "by_port": dict(sorted(failovers.items())),
            "total": sum(failovers.values()),
        },
        "dispatch": {
            "by_port": dict(sorted(dispatch.items())),
            "total": sum(dispatch.values()),
        },
        "rewrites": dict(sorted(rewrites.items())),
        "journal_phases": dict(sorted(journal_phases.items())),
        "supervisor_events": dict(sorted(supervisor.items())),
        "health_transitions": dict(sorted(health.items())),
        "drift": {"attributed_traps": drift_traps, "triggered": drift_triggered},
        "spans": dict(sorted(spans.items())),
    }
