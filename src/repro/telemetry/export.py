"""Exporters over a recorded run: JSONL event log + Prometheus text.

Two complementary views of one :class:`~repro.telemetry.hub.TelemetryHub`:

* :func:`to_jsonl` — the **full event stream**, one JSON object per
  line, in emission order.  This is the replayable artifact: every
  number the fleet/supervisor CLIs report can be reconstructed from it
  alone (see :func:`summarize_events`), so campaign JSON files only
  need to commit digests.
* :func:`prometheus_snapshot` — a point-in-time text rendering of the
  metrics registry in the Prometheus exposition format (``# TYPE``
  headers, ``family{label="v"} value`` samples, cumulative histogram
  buckets).  :func:`parse_prometheus` round-trips it, which is what
  the CI telemetry job asserts.

Both renderings iterate instruments in sorted order and carry only
virtual-clock timestamps, so equal seeds produce byte-identical files.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Sequence

from .hub import TelemetryEvent, TelemetryHub
from .registry import SUMMARY_QUANTILES, MetricsRegistry, labels_text
from .trace import PHASES, RequestTracer, TraceSpan, leg_phase


# ----------------------------------------------------------------------
# JSONL event stream

def to_jsonl(hub_or_events: TelemetryHub | Iterable[TelemetryEvent]) -> str:
    """Render the event stream as one JSON object per line."""
    events = (
        hub_or_events.events
        if isinstance(hub_or_events, TelemetryHub)
        else hub_or_events
    )
    return "".join(event.to_json() + "\n" for event in events)


def read_jsonl(text: str) -> list[TelemetryEvent]:
    """Parse a JSONL event stream back into events."""
    return [
        TelemetryEvent.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


# ----------------------------------------------------------------------
# request-trace stream

def to_trace_jsonl(source: RequestTracer | Iterable[TraceSpan]) -> str:
    """Render finished request traces as one span object per line.

    Spans are ordered by ``(trace_id, span_id)`` and serialized with
    sorted keys and sorted attrs, so equal seeds export byte-identical
    trace streams (the ``--check-determinism`` contract).
    """
    spans = source.spans() if isinstance(source, RequestTracer) else source
    return "".join(
        json.dumps(span.to_dict(), sort_keys=True, default=str) + "\n"
        for span in spans
    )


def read_trace_jsonl(text: str) -> list[TraceSpan]:
    """Parse a trace stream back into spans."""
    return [
        TraceSpan.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


# ----------------------------------------------------------------------
# Prometheus text exposition

def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def prometheus_snapshot(registry: MetricsRegistry, prefix: str = "dynacut_") -> str:
    """The registry in Prometheus text format (sorted, deterministic)."""
    lines: list[str] = []

    families: dict[str, list[str]] = {}

    def add(family: str, kind: str, sample_lines: list[str]) -> None:
        if family not in families:
            families[family] = [f"# TYPE {family} {kind}"]
        families[family].extend(sample_lines)

    for (name, labels), counter in sorted(registry.counters.items()):
        family = prefix + _sanitize(name)
        add(family, "counter", [f"{family}{labels_text(labels)} {counter.value}"])
    for (name, labels), gauge in sorted(registry.gauges.items()):
        family = prefix + _sanitize(name)
        add(family, "gauge", [f"{family}{labels_text(labels)} {gauge.value:g}"])
    for (name, labels), hist in sorted(registry.histograms.items()):
        family = prefix + _sanitize(name)
        sample_lines = []
        for le, cumulative in hist.cumulative_buckets():
            bucket_labels = dict(labels)
            bucket_labels["le"] = le
            rendered = labels_text(tuple(sorted(bucket_labels.items())))
            sample_lines.append(f"{family}_bucket{rendered} {cumulative}")
        sample_lines.append(f"{family}_sum{labels_text(labels)} {hist.total:g}")
        sample_lines.append(f"{family}_count{labels_text(labels)} {hist.count}")
        add(family, "histogram", sample_lines)
        if hist.count:
            # estimated quantiles ride along as a sibling gauge family
            # (own TYPE header, so the strict parser round-trips them)
            qfamily = family + "_quantile"
            qlines = []
            for q in SUMMARY_QUANTILES:
                qlabels = dict(labels)
                qlabels["q"] = f"{q:g}"
                rendered = labels_text(tuple(sorted(qlabels.items())))
                value = hist.quantile(q)
                assert value is not None
                qlines.append(f"{qfamily}{rendered} {value:g}")
            add(qfamily, "gauge", qlines)

    out: list[str] = []
    for family in sorted(families):
        out.extend(families[family])
    return "\n".join(out) + "\n" if out else ""


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse a text snapshot into ``{'family{labels}': value}``.

    Strict enough for the CI assertion: every non-comment line must be
    ``name[{labels}] value`` with a float value, every ``{`` closed,
    and every family preceded by a ``# TYPE`` header.
    """
    values: dict[str, float] = {}
    typed: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                raise ValueError(f"line {lineno}: malformed TYPE header: {line!r}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        key, __, raw = line.rpartition(" ")
        if not key:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        if "{" in key and not key.endswith("}"):
            raise ValueError(f"line {lineno}: unclosed label set: {line!r}")
        family = key.split("{", 1)[0]
        base = family
        for suffix in ("_bucket", "_sum", "_count"):
            if family.endswith(suffix) and family[: -len(suffix)] in typed:
                base = family[: -len(suffix)]
        if base not in typed:
            raise ValueError(f"line {lineno}: sample without TYPE header: {line!r}")
        values[key] = float(raw)
    return values


# ----------------------------------------------------------------------
# critical-path attribution over request traces

def percentile(values: Sequence[int | float], q: float) -> float:
    """Exact nearest-rank percentile over raw per-request values.

    This is what campaign p99s are computed from — the sorted list of
    per-request ``wall_ns`` values, **not** a bucketed aggregate — so
    the reported tail latency is a value some request actually paid.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile must be in [0, 1], got {q}")
    if not values:
        raise ValueError("cannot take a percentile of no values")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return float(ordered[rank - 1])


def _recompute_phases(
    spans: list[TraceSpan], children: dict[int, list[TraceSpan]]
) -> dict[str, int]:
    """Re-derive the phase decomposition structurally from a span tree.

    Independent of the incremental accounting
    :class:`~repro.telemetry.trace.TraceContext` performs as spans
    close — agreeing with it on every request is the accounting
    identity :func:`attribute_traces` enforces.
    """
    phases = {phase: 0 for phase in PHASES}
    for span in spans:
        kids = children.get(span.span_id, [])
        inner = sum(kid.duration_ns for kid in kids)
        self_ns = max(0, span.duration_ns - inner)
        if span.name == "request":
            continue  # the root's own time is its children's
        if span.name == "trap":
            phases["trap"] += span.duration_ns
        elif span.name == "stall":
            rewrite_ns = min(int(span.attrs.get("rewrite_ns", 0)), self_ns)
            phases["rewrite-stall"] += rewrite_ns
            phases["control"] += self_ns - rewrite_ns
        elif "phase" in span.attrs:
            phases[str(span.attrs["phase"])] += self_ns
        else:
            # a leg: dispatch / mesh.hop; one that wrapped cross-host
            # hop legs is plumbing across clock domains — no self-time
            if any(kid.name == "mesh.hop" for kid in kids):
                continue
            phases[leg_phase(span.name, span.status)] += self_ns
    return phases


def attribute_traces(source: RequestTracer | Iterable[TraceSpan]) -> dict:
    """Decompose every traced request's wall time into named phases.

    Returns ``{"requests": [...], "summary": {...}}`` where each request
    record carries the recomputed phase decomposition and its identity
    verdict: the structural recomputation must equal the phases the
    live context recorded, and their sum must equal the recorded
    ``wall_ns``.  The summary aggregates phase totals, outcome counts,
    and exact nearest-rank latency percentiles over per-request walls.
    """
    spans = list(source.spans() if isinstance(source, RequestTracer) else source)
    by_trace: dict[int, list[TraceSpan]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)

    records = []
    walls: list[int] = []
    phase_totals = {phase: 0 for phase in PHASES}
    outcomes: dict[str, int] = {}
    violations = 0
    for trace_id in sorted(by_trace):
        tree = sorted(by_trace[trace_id], key=lambda span: span.span_id)
        roots = [span for span in tree if span.parent_id is None]
        if len(roots) != 1 or roots[0].name != "request":
            raise ValueError(f"trace {trace_id} has no unique request root")
        root = roots[0]
        children: dict[int, list[TraceSpan]] = {}
        for span in tree:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)
        computed = _recompute_phases(tree, children)
        recorded = {phase: 0 for phase in PHASES}
        recorded.update({
            str(k): int(v)
            for k, v in dict(root.attrs.get("phases", {})).items()
        })
        wall_ns = int(root.attrs["wall_ns"])
        identity_ok = (
            computed == recorded and sum(computed.values()) == wall_ns
        )
        violations += 0 if identity_ok else 1
        outcome = str(root.attrs.get("outcome", "ok"))
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        walls.append(wall_ns)
        for phase, ns in computed.items():
            phase_totals[phase] += ns
        records.append({
            "trace_id": trace_id,
            "start_ns": root.start_ns,
            "outcome": outcome,
            "ok": bool(root.attrs.get("ok", True)),
            "wall_ns": wall_ns,
            "observed_ns": int(root.attrs.get("observed_ns", root.duration_ns)),
            "phases": {k: v for k, v in sorted(computed.items()) if v},
            "traps": int(root.attrs.get("traps", 0)),
            "hops": int(root.attrs.get("hops", 0)),
            "identity_ok": identity_ok,
        })

    summary = {
        "requests": len(records),
        "identity_violations": violations,
        "outcomes": dict(sorted(outcomes.items())),
        "phase_totals_ns": {
            phase: phase_totals[phase] for phase in PHASES
        },
        "latency_ns": (
            {
                "p50": percentile(walls, 0.5),
                "p95": percentile(walls, 0.95),
                "p99": percentile(walls, 0.99),
                "max": float(max(walls)),
                "mean": sum(walls) / len(walls),
            }
            if walls else None
        ),
    }
    return {"requests": records, "summary": summary}


# ----------------------------------------------------------------------
# event-stream reconstruction

def summarize_events(events: Iterable[TelemetryEvent]) -> dict:
    """Rebuild the CLI-reported aggregates from the event stream alone.

    The acceptance contract of the observability layer: per-instance
    trap counts, failover/dispatch totals, and rewrite-cost summaries
    computed *only* from the recorded events must equal what the live
    controller/supervisor objects reported for the same seed.
    """
    kinds: dict[str, int] = {}
    traps: dict[str, int] = {}
    failovers: dict[str, int] = {}
    dispatch: dict[str, int] = {}
    rewrites: dict[str, dict] = {}
    journal_phases: dict[str, int] = {}
    supervisor: dict[str, int] = {}
    health: dict[str, int] = {}
    drift_traps = 0
    drift_triggered = False
    spans: dict[str, dict] = {}

    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        instance = event.label("instance", "")
        if event.kind == "traps":
            # every traps_seen mutation emits the post-sync value, so
            # the last event per instance IS the live counter (recovery
            # from a committed image legitimately resets it — a max
            # would disagree with the controller after a crash)
            traps[instance] = int(event.field("total", 0))
        elif event.kind == "failover":
            port = event.label("port", "?")
            failovers[port] = failovers.get(port, 0) + 1
        elif event.kind == "dispatch":
            port = event.label("port", "?")
            dispatch[port] = dispatch.get(port, 0) + 1
        elif event.kind == "rewrite":
            summary = rewrites.setdefault(
                instance,
                {
                    "sessions": 0, "committed": 0, "rolled_back": 0,
                    "attempts": 0, "checkpoint_ns": 0, "restore_ns": 0,
                    "patch_ns": 0, "total_ns": 0, "blocks_patched": 0,
                    "blocks_restored": 0, "bytes_wiped": 0,
                },
            )
            summary["sessions"] += 1
            outcome = str(event.field("outcome", ""))
            if outcome == "committed":
                summary["committed"] += 1
            else:
                summary["rolled_back"] += 1
            summary["attempts"] += int(event.field("attempts", 0))
            for cost in (
                "checkpoint_ns", "restore_ns", "patch_ns", "total_ns",
                "blocks_patched", "blocks_restored", "bytes_wiped",
            ):
                summary[cost] += int(event.field(cost, 0))
        elif event.kind == "journal":
            journal_phases[event.name] = journal_phases.get(event.name, 0) + 1
        elif event.kind == "supervisor":
            supervisor[event.name] = supervisor.get(event.name, 0) + 1
        elif event.kind == "health":
            health[event.name] = health.get(event.name, 0) + 1
        elif event.kind == "drift":
            if event.name == "traps":
                drift_traps += int(event.field("hits", 0))
            elif event.name == "triggered":
                drift_triggered = True
        elif event.kind == "span":
            entry = spans.setdefault(
                event.name, {"count": 0, "total_ns": 0, "errors": 0}
            )
            entry["count"] += 1
            entry["total_ns"] += int(event.field("duration_ns", 0))
            if str(event.field("status", "ok")) != "ok":
                entry["errors"] += 1

    return {
        "events": sum(kinds.values()),
        "kinds": dict(sorted(kinds.items())),
        "traps": dict(sorted(traps.items())),
        "failovers": {
            "by_port": dict(sorted(failovers.items())),
            "total": sum(failovers.values()),
        },
        "dispatch": {
            "by_port": dict(sorted(dispatch.items())),
            "total": sum(dispatch.values()),
        },
        "rewrites": dict(sorted(rewrites.items())),
        "journal_phases": dict(sorted(journal_phases.items())),
        "supervisor_events": dict(sorted(supervisor.items())),
        "health_transitions": dict(sorted(health.items())),
        "drift": {"attributed_traps": drift_traps, "triggered": drift_triggered},
        "spans": dict(sorted(spans.items())),
    }
