"""Nested timed spans over the deterministic virtual clock.

A span measures one pipeline stage (``customize.checkpoint``,
``fleet.customize`` …) between two reads of a caller-supplied clock —
in practice ``lambda: kernel.clock_ns`` — so traces are replayable:
the same seed yields the same span boundaries, byte for byte.

Spans nest: the tracer keeps an explicit stack, and each finished span
records a **structural** ``span_id``/``parent_id`` pair (monotonic
counters, so sibling spans with the same name stay distinct in
reconstructions) along with its parent's *name* and its depth for
human-readable streams.  A span that exits through an exception is
still closed (and marked ``status="error"``), which is exactly the
rollback path the transaction engine needs visible.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass
class Span:
    """One timed, attributed stage of the pipeline."""

    name: str
    start_ns: int
    end_ns: int | None = None
    #: the parent's *name* (display only; names can repeat — use
    #: ``parent_id`` for structural reconstruction)
    parent: str | None = None
    depth: int = 0
    status: str = "ok"
    attrs: dict[str, object] = field(default_factory=dict)
    #: structural identity, allocated monotonically by the tracer
    span_id: int = 0
    parent_id: int | None = None

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_ns - self.start_ns

    def set(self, key: str, value: object) -> None:
        """Attach an attribute mid-span (e.g. pages dumped)."""
        self.attrs[key] = value

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns if self.end_ns is not None else None,
            "parent": self.parent,
            "depth": self.depth,
            "status": self.status,
            "attrs": dict(sorted(self.attrs.items())),
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


class SpanTracer:
    """Stack-structured span recording against a virtual clock."""

    def __init__(self, clock: Callable[[], int] | None = None):
        self._clock = clock
        self._stack: list[Span] = []
        self._next_span_id = 1
        self.finished: list[Span] = []
        #: called with each finished span (the hub turns it into an
        #: event + a duration-histogram observation)
        self.on_finish: Callable[[Span], None] | None = None

    def bind_clock(self, clock: Callable[[], int]) -> None:
        self._clock = clock

    def now(self) -> int:
        return self._clock() if self._clock is not None else 0

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(
        self,
        name: str,
        clock: Callable[[], int] | None = None,
        **attrs: object,
    ) -> Iterator[Span]:
        """Open a nested span; closed (even on exception) at exit."""
        read = clock or self._clock
        now = read() if read is not None else 0
        span = Span(
            name=name,
            start_ns=now,
            parent=self._stack[-1].name if self._stack else None,
            depth=len(self._stack),
            attrs=dict(attrs),
            span_id=self._next_span_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
        )
        self._next_span_id += 1
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = f"error:{type(exc).__name__}"
            raise
        finally:
            self._stack.pop()
            span.end_ns = read() if read is not None else span.start_ns
            self.finished.append(span)
            if self.on_finish is not None:
                self.on_finish(span)
