"""DynaTrace: per-request distributed tracing with phase attribution.

DynaScope's :class:`~repro.telemetry.tracer.SpanTracer` answers "how
long do rewrites take *in aggregate*"; this module answers "**which
request** paid for that trap / cross-host hop / rewrite stall".  One
:class:`TraceContext` follows a single request through every tier it
crosses — the workload driver's closed loop, the mesh frontend's hop
sequence, the intra-host balancer route, guest trap handling — and
yields a causally-linked span tree with deterministic IDs.

**Determinism.**  Trace and span IDs are monotonic counters allocated
by the owning :class:`RequestTracer`; timestamps are virtual-clock
reads.  No wall clock, no randomness: equal seeds export byte-identical
trace streams (tested).

**Clock domains.**  A mesh request crosses kernels whose clocks are
incomparable (the data path never syncs — see
:class:`~repro.mesh.controller.MeshClock`).  Every span is therefore
timed on the clock of the tier that owns it: hop/route/trap spans on
the serving host's kernel clock, stall/dispatch/shed spans on the
driver's clock.  The canonical per-request cost is **wall_ns = the sum
of attributed phase times** (critical-path accounting, the same move
real distributed tracers make across machines); the root span's own
duration is kept as ``observed_ns``.  On a single kernel the two are
exactly equal; under a mesh a request served by a *lagging* host can
legitimately show ``wall_ns > observed_ns`` because serving it did not
advance mesh-max time.

**Phases.**  Each request's wall time decomposes into:

* ``route``  — intra-host balancer resolution (frontend-port hop);
* ``serve``  — guest service time on the shard that answered;
* ``hop``    — failed cross-host legs paid before the answer;
* ``trap``   — int3 delivery → ``rt_sigreturn`` windows inside a leg;
* ``rewrite-stall`` — event time attributable to live DynaCut
  transactions (measured from actual :class:`RewriteReport` costs);
* ``control`` — remaining between-request event time (heartbeats,
  probes, recovery);
* ``shed``   — the error nudge paid when every candidate was down.

The **accounting identity** (enforced by
:func:`~repro.telemetry.export.attribute_traces`): phases recomputed
structurally from the serialized span tree must equal the phases the
live context accumulated as spans closed, and their sum must equal the
recorded ``wall_ns`` — two independent code paths agreeing on every
request.  The campaign adds the count identity on top: traced requests
== the frontend's ``issued``, split by outcome exactly as
``served + failed_over + shed``.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, ContextManager, Iterator

from .. import telemetry

#: every phase the attribution decomposes request wall time into
PHASES = (
    "route", "serve", "hop", "trap", "rewrite-stall", "control", "shed",
)

#: leg error statuses that classify a ``mesh.hop`` leg as a *failed*
#: cross-host hop (paid, then retried elsewhere) rather than service
#: time; any other error reached the application layer — delivery
#: succeeded as far as the mesh is concerned (see Frontend.dispatch)
_HOP_ERRORS = ("error:NoBackendAvailable", "error:InjectedFault")


class TraceError(RuntimeError):
    """Misuse of the tracing API (nested begin, unbalanced spans)."""


def leg_phase(name: str, status: str) -> str:
    """The phase a leg span's self-time belongs to."""
    if name == "mesh.hop" and status in _HOP_ERRORS:
        return "hop"
    return "serve"


@dataclass
class TraceSpan:
    """One node of a request's span tree (structural IDs, virtual clocks)."""

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    start_ns: int
    end_ns: int | None = None
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            raise TraceError(f"trace span {self.name!r} is still open")
        return self.end_ns - self.start_ns

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "status": self.status,
            "attrs": dict(sorted(self.attrs.items())),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceSpan":
        return cls(
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload["parent_id"],
            name=payload["name"],
            start_ns=payload["start_ns"],
            end_ns=payload["end_ns"],
            status=payload["status"],
            attrs=dict(payload.get("attrs", {})),
        )


@dataclass
class _Frame:
    """One open container span on the context's stack."""

    span: TraceSpan
    #: clock reader the span was opened with (closes on the same clock)
    clock: Callable[[], int]
    #: summed durations of direct children (subtracted for self-time)
    inner_ns: int = 0
    #: direct children that were ``mesh.hop`` legs — a container that
    #: wrapped cross-host legs is pure plumbing across clock domains
    #: and contributes no self-time of its own
    leg_children: int = 0


class TraceContext:
    """One request's span tree, with incremental phase accounting.

    Created by :meth:`RequestTracer.begin` (which also installs it as
    the ambient context, so instrumentation sites anywhere below the
    driver loop find it via :func:`current` without plumbing).
    """

    def __init__(
        self,
        tracer: "RequestTracer",
        trace_id: int,
        clock: Callable[[], int],
        **attrs: object,
    ):
        self.tracer = tracer
        self.trace_id = trace_id
        self._clock = clock
        self.spans: list[TraceSpan] = []
        self.phases: dict[str, int] = {phase: 0 for phase in PHASES}
        self.outcome: str | None = None
        self.traps = 0
        #: failed cross-host legs (mesh failovers paid by this request)
        self.hops = 0
        #: intra-host balancer failovers observed while routing
        self.intra_failovers = 0
        self.unmatched_traps = 0
        self._stack: list[_Frame] = []
        #: per-pid stacks of (delivery clock, trap address) awaiting
        #: their rt_sigreturn (nested signal delivery nests the marks)
        self._trap_marks: dict[int, list[tuple[int, int]]] = {}
        self.root = self._open("request", self._clock, attrs)

    # ------------------------------------------------------------------
    # span-tree construction

    def _open(
        self,
        name: str,
        clock: Callable[[], int],
        attrs: dict[str, object],
    ) -> TraceSpan:
        span = TraceSpan(
            trace_id=self.trace_id,
            span_id=self.tracer.next_span_id(),
            parent_id=self._stack[-1].span.span_id if self._stack else None,
            name=name,
            start_ns=clock(),
            attrs=dict(attrs),
        )
        self.spans.append(span)
        self._stack.append(_Frame(span, clock))
        return span

    def _close(self, span: TraceSpan, status: str) -> _Frame:
        if not self._stack or self._stack[-1].span is not span:
            raise TraceError(
                f"span {span.name!r} closed out of stack order"
            )
        frame = self._stack.pop()
        span.end_ns = frame.clock()
        span.status = status
        if self._stack:
            self._stack[-1].inner_ns += span.duration_ns
        return frame

    @staticmethod
    def _self_time(frame: _Frame) -> int:
        # clamped: a container's children may run on a different (host)
        # clock than the container itself; see the module docstring
        return max(0, frame.span.duration_ns - frame.inner_ns)

    # ------------------------------------------------------------------
    # container context managers (one per tier)

    @contextmanager
    def stall(self, label: str) -> Iterator[TraceSpan]:
        """Between-request event time (rollout steps, ticks, chaos).

        The driver fires due timeline events inside the *next* request's
        context, so the stall they cause lands on the request that
        actually waited for them (closed-loop honesty).  Self-time is
        split into ``rewrite-stall`` — bounded by the DynaCut transaction
        cost reported while the event ran — and ``control`` for the rest.
        """
        span = self._open("stall", self._clock, {"label": label})
        rewrite_before = self.tracer.rewrite_ns
        status = "ok"
        try:
            yield span
        except BaseException as exc:
            status = f"error:{type(exc).__name__}"
            raise
        finally:
            frame = self._close(span, status)
            self_ns = self._self_time(frame)
            rewrite_ns = min(
                max(0, self.tracer.rewrite_ns - rewrite_before), self_ns
            )
            span.attrs["rewrite_ns"] = rewrite_ns
            self.phases["rewrite-stall"] += rewrite_ns
            self.phases["control"] += self_ns - rewrite_ns

    @contextmanager
    def leg(
        self,
        name: str,
        clock: Callable[[], int] | None = None,
        **attrs: object,
    ) -> Iterator[TraceSpan]:
        """One delivery attempt (``dispatch`` driver-side, ``mesh.hop``
        per shard tried).  Self-time goes to ``serve``, or to ``hop``
        when a ``mesh.hop`` leg failed with a routing error; a leg that
        merely wrapped ``mesh.hop`` children contributes nothing itself
        (its duration spans incomparable clocks)."""
        span = self._open(name, clock or self._clock, dict(attrs))
        status = "ok"
        try:
            yield span
        except BaseException as exc:
            status = f"error:{type(exc).__name__}"
            raise
        finally:
            frame = self._close(span, status)
            if name == "mesh.hop":
                if self._stack:
                    self._stack[-1].leg_children += 1
                if status in _HOP_ERRORS:
                    self.hops += 1
            if frame.leg_children == 0:
                self.phases[leg_phase(name, status)] += self._self_time(frame)

    @contextmanager
    def aux(
        self,
        name: str,
        phase: str,
        clock: Callable[[], int] | None = None,
        **attrs: object,
    ) -> Iterator[TraceSpan]:
        """A span whose whole self-time belongs to one fixed phase
        (``route`` for balancer resolution, ``shed`` for error nudges)."""
        if phase not in PHASES:
            raise TraceError(f"unknown phase {phase!r}")
        span = self._open(name, clock or self._clock, dict(attrs))
        span.attrs["phase"] = phase
        status = "ok"
        try:
            yield span
        except BaseException as exc:
            status = f"error:{type(exc).__name__}"
            raise
        finally:
            frame = self._close(span, status)
            self.phases[phase] += self._self_time(frame)

    # ------------------------------------------------------------------
    # trap pairing (driven by the kernel hooks)

    def note_trap_delivered(self, pid: int, clock_ns: int, address: int) -> None:
        self._trap_marks.setdefault(pid, []).append((clock_ns, address))

    def note_trap_returned(self, pid: int, clock_ns: int) -> None:
        marks = self._trap_marks.get(pid)
        if not marks:
            return  # sigreturn for a trap delivered outside this trace
        start_ns, address = marks.pop()
        parent = self._stack[-1].span if self._stack else self.root
        span = TraceSpan(
            trace_id=self.trace_id,
            span_id=self.tracer.next_span_id(),
            parent_id=parent.span_id,
            name="trap",
            start_ns=start_ns,
            end_ns=clock_ns,
            attrs={"pid": pid, "address": address},
        )
        self.spans.append(span)
        self.traps += 1
        self.phases["trap"] += span.duration_ns
        if self._stack:
            self._stack[-1].inner_ns += span.duration_ns

    # ------------------------------------------------------------------
    # finish

    @property
    def wall_ns(self) -> int:
        return sum(self.phases.values())

    def finish(self, ok: bool) -> TraceSpan:
        if len(self._stack) != 1 or self._stack[-1].span is not self.root:
            raise TraceError(
                f"trace {self.trace_id} finished with unbalanced spans"
            )
        # handler windows that never reached rt_sigreturn (the process
        # terminated mid-handler) are dropped, not guessed at
        self.unmatched_traps = sum(
            len(marks) for marks in self._trap_marks.values()
        )
        self._trap_marks.clear()
        outcome = self.outcome or ("ok" if ok else "error")
        self.outcome = outcome
        self._close(self.root, "ok" if ok else "error")
        self.root.attrs.update(
            ok=ok,
            outcome=outcome,
            wall_ns=self.wall_ns,
            observed_ns=self.root.duration_ns,
            phases={k: v for k, v in sorted(self.phases.items()) if v},
            traps=self.traps,
            hops=self.hops,
            intra_failovers=self.intra_failovers,
            unmatched_traps=self.unmatched_traps,
        )
        return self.root


class RequestTracer:
    """Allocates deterministic IDs and owns the finished trace list."""

    def __init__(self) -> None:
        self.traces: list[TraceContext] = []
        #: monotonic accumulator of DynaCut transaction cost, fed by
        #: :func:`note_rewrite`; stall spans read before/after deltas
        self.rewrite_ns = 0
        self._next_trace_id = 1
        self._next_span_id = 1

    def next_span_id(self) -> int:
        span_id = self._next_span_id
        self._next_span_id += 1
        return span_id

    def begin(
        self, clock: Callable[[], int], **attrs: object
    ) -> TraceContext:
        """Open a request trace and install it as the ambient context."""
        global _current
        if _current is not None:
            raise TraceError("a request trace is already active")
        context = TraceContext(self, self._next_trace_id, clock, **attrs)
        self._next_trace_id += 1
        _current = context
        return context

    def finish(self, context: TraceContext, ok: bool) -> TraceContext:
        """Close the root span, record the trace, clear the ambient slot."""
        global _current
        if _current is not context:
            raise TraceError("finishing a trace that is not active")
        try:
            root = context.finish(ok)
        finally:
            _current = None
        self.traces.append(context)
        telemetry.observe(
            "request_wall_ns", root.attrs["wall_ns"], outcome=context.outcome
        )
        for phase, ns in sorted(context.phases.items()):
            if ns:
                telemetry.observe("request_phase_ns", ns, phase=phase)
        telemetry.count("traced_requests_total", outcome=context.outcome)
        return context

    def spans(self) -> Iterator[TraceSpan]:
        """Every finished span, ordered by (trace id, span id)."""
        for context in self.traces:
            yield from sorted(context.spans, key=lambda span: span.span_id)

    def request_walls(self) -> list[int]:
        """Per-request wall_ns, in trace order (the p99 substrate)."""
        return [int(ctx.root.attrs["wall_ns"]) for ctx in self.traces]


# ----------------------------------------------------------------------
# ambient context (instrumentation sites are no-ops without one)

_current: TraceContext | None = None


def current() -> TraceContext | None:
    """The ambient request context, or None when nothing is traced."""
    return _current


def leg_span(
    name: str, clock: Callable[[], int] | None = None, **attrs: object
) -> ContextManager[TraceSpan | None]:
    if _current is None:
        return nullcontext(None)
    return _current.leg(name, clock=clock, **attrs)


def aux_span(
    name: str,
    phase: str,
    clock: Callable[[], int] | None = None,
    **attrs: object,
) -> ContextManager[TraceSpan | None]:
    if _current is None:
        return nullcontext(None)
    return _current.aux(name, phase, clock=clock, **attrs)


def tag_outcome(outcome: str) -> None:
    """Stamp the mesh-accounting outcome (served / failed_over / shed)."""
    if _current is not None:
        _current.outcome = outcome


def note_trap_delivered(pid: int, clock_ns: int, address: int) -> None:
    if _current is not None:
        _current.note_trap_delivered(pid, clock_ns, address)


def note_trap_returned(pid: int, clock_ns: int) -> None:
    if _current is not None:
        _current.note_trap_returned(pid, clock_ns)


def note_rewrite(total_ns: int) -> None:
    """Credit one DynaCut transaction's cost to the active tracer."""
    if _current is not None:
        _current.tracer.rewrite_ns += int(total_ns)


def note_member_failover() -> None:
    """An intra-host balancer failover observed under this request."""
    if _current is not None:
        _current.intra_failovers += 1
