"""Labeled metric families: counters, gauges, histograms, time series.

The registry is the queryable substrate behind every number the
evaluation reports.  Instruments are keyed by ``(family name, sorted
label set)``, so the same family fans out into per-instance / per-port
/ per-phase series without pre-declaring them.  Everything is
deterministic by construction:

* values only move when instrumented code calls ``inc``/``set``/
  ``observe``/``record`` — there is no sampling thread;
* timestamps are **virtual-clock nanoseconds** supplied by the caller
  (or the hub's bound kernel clock), never wall time;
* every exported view (:meth:`MetricsRegistry.snapshot`, the
  Prometheus text format in :mod:`repro.telemetry.export`) iterates in
  sorted ``(name, labels)`` order, so two runs with the same seed
  produce byte-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: one sorted, hashable rendering of a label mapping
LabelSet = tuple[tuple[str, str], ...]

MS = 1_000_000

#: default histogram upper bounds, tuned for virtual-ns durations
#: (1 ms .. 10 s); values above the last bound land in +Inf
DEFAULT_NS_BUCKETS = (
    1 * MS, 5 * MS, 10 * MS, 50 * MS,
    100 * MS, 500 * MS, 1000 * MS, 10_000 * MS,
)


def labelset(labels: dict[str, object]) -> LabelSet:
    """Canonical sorted tuple form of a label mapping."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


#: the quantiles summaries and the Prometheus snapshot report
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def quantile_from_buckets(
    bounds: tuple[int, ...],
    bucket_counts: list[int],
    count: int,
    q: float,
    lo: float | None = None,
    hi: float | None = None,
) -> float:
    """Prometheus-style bucketed quantile (linear within a bucket).

    ``bucket_counts`` has one slot per finite bound plus the trailing
    +Inf slot.  The target rank ``q * count`` is located in the first
    bucket whose cumulative count covers it and interpolated linearly
    between the bucket's edges; a rank landing in +Inf returns ``hi``
    (the observed max) when known, else the last finite bound.  The
    result is clamped to the observed ``[lo, hi]`` range so small
    samples report values that actually occurred near the extremes —
    this is what lets tests pin exact quantiles on known observations.
    Raises on an empty distribution (callers gate on ``count``).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count <= 0:
        raise ValueError("cannot take a quantile of an empty histogram")
    rank = q * count
    running = 0
    prev_bound = 0.0
    value: float | None = None
    for bound, n in zip(bounds, bucket_counts):
        if n > 0 and running + n >= rank:
            fraction = max(0.0, rank - running) / n
            value = prev_bound + (float(bound) - prev_bound) * fraction
            break
        running += n
        prev_bound = float(bound)
    if value is None:
        # the rank lives in the +Inf overflow bucket
        value = hi if hi is not None else prev_bound
    if lo is not None:
        value = max(value, lo)
    if hi is not None:
        value = min(value, hi)
    return value


def labels_text(labels: LabelSet) -> str:
    """``{k="v",...}`` rendering (empty string for no labels)."""
    if not labels:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + body + "}"


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    labels: LabelSet = ()
    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n


@dataclass
class Gauge:
    """A point-in-time value that can move both ways."""

    name: str
    labels: LabelSet = ()
    value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


@dataclass
class Histogram:
    """Bucketed distribution with count/sum/min/max."""

    name: str
    labels: LabelSet = ()
    bounds: tuple[int, ...] = DEFAULT_NS_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            # one slot per finite bound plus the +Inf overflow slot
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile, or None while empty.

        Bucket-interpolated (see :func:`quantile_from_buckets`) and
        clamped to the observed min/max, so ``quantile(0.0) == min``
        and ``quantile(1.0) == max`` exactly.
        """
        if self.count == 0:
            return None
        return quantile_from_buckets(
            self.bounds, self.bucket_counts, self.count, q,
            lo=self.min, hi=self.max,
        )

    def cumulative_buckets(self) -> list[tuple[str, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs."""
        out: list[tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((str(bound), running))
        out.append(("+Inf", self.count))
        return out


@dataclass
class TimeSeries:
    """An append-only ``(virtual clock ns, value)`` accumulator."""

    name: str
    labels: LabelSet = ()
    samples: list[tuple[int, float]] = field(default_factory=list)

    def record(self, clock_ns: int, value: float) -> None:
        self.samples.append((clock_ns, value))

    @property
    def last(self) -> float | None:
        return self.samples[-1][1] if self.samples else None

    def points(self, scale_x: float = 1.0, scale_y: float = 1.0) -> list[tuple[float, float]]:
        """Samples as plottable points (e.g. seconds on the x axis)."""
        return [(t * scale_x, v * scale_y) for t, v in self.samples]


class MetricsRegistry:
    """Process-wide store of every metric family, keyed by labels."""

    def __init__(self) -> None:
        self.counters: dict[tuple[str, LabelSet], Counter] = {}
        self.gauges: dict[tuple[str, LabelSet], Gauge] = {}
        self.histograms: dict[tuple[str, LabelSet], Histogram] = {}
        self.time_series: dict[tuple[str, LabelSet], TimeSeries] = {}

    # ------------------------------------------------------------------
    # instrument accessors (get-or-create)

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, labelset(labels))
        if key not in self.counters:
            self.counters[key] = Counter(name, key[1])
        return self.counters[key]

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, labelset(labels))
        if key not in self.gauges:
            self.gauges[key] = Gauge(name, key[1])
        return self.gauges[key]

    def histogram(
        self, name: str, bounds: tuple[int, ...] | None = None, **labels: object
    ) -> Histogram:
        key = (name, labelset(labels))
        if key not in self.histograms:
            self.histograms[key] = Histogram(
                name, key[1], bounds or DEFAULT_NS_BUCKETS
            )
        return self.histograms[key]

    def series(self, name: str, **labels: object) -> TimeSeries:
        key = (name, labelset(labels))
        if key not in self.time_series:
            self.time_series[key] = TimeSeries(name, key[1])
        return self.time_series[key]

    # ------------------------------------------------------------------
    # queries

    def counter_value(self, name: str, **labels: object) -> int:
        counter = self.counters.get((name, labelset(labels)))
        return counter.value if counter is not None else 0

    def gauge_value(self, name: str, default: float = 0, **labels: object) -> float:
        gauge = self.gauges.get((name, labelset(labels)))
        return gauge.value if gauge is not None else default

    def sum_counters(self, name: str) -> int:
        """Total of every series of a counter family."""
        return sum(
            counter.value
            for (family, __), counter in self.counters.items()
            if family == name
        )

    def counters_by_label(self, name: str, key: str) -> dict[str, int]:
        """``label value -> total`` over one counter family."""
        out: dict[str, int] = {}
        for (family, labels), counter in sorted(self.counters.items()):
            if family != name:
                continue
            value = dict(labels).get(key)
            if value is not None:
                out[value] = out.get(value, 0) + counter.value
        return out

    def series_matching(self, name: str) -> list[TimeSeries]:
        return [
            series
            for (family, __), series in sorted(self.time_series.items())
            if family == name
        ]

    # ------------------------------------------------------------------
    # snapshot

    def snapshot(self) -> dict:
        """Deterministic nested-dict view of every instrument."""
        return {
            "counters": {
                f"{name}{labels_text(labels)}": counter.value
                for (name, labels), counter in sorted(self.counters.items())
            },
            "gauges": {
                f"{name}{labels_text(labels)}": gauge.value
                for (name, labels), gauge in sorted(self.gauges.items())
            },
            "histograms": {
                f"{name}{labels_text(labels)}": {
                    "count": hist.count,
                    "sum": hist.total,
                    "min": hist.min,
                    "max": hist.max,
                    "mean": hist.mean,
                    **{
                        f"p{int(q * 100)}": hist.quantile(q)
                        for q in SUMMARY_QUANTILES
                    },
                }
                for (name, labels), hist in sorted(self.histograms.items())
            },
            "series": {
                f"{name}{labels_text(labels)}": list(series.samples)
                for (name, labels), series in sorted(self.time_series.items())
            },
        }
