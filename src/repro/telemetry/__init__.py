"""DynaScope: unified tracing, metrics, and timeline export.

The paper's evaluation is built on *observed* behavior — throughput
timelines around live rewriting, trap counts, rewrite cost breakdowns.
This package is the one substrate those observations flow through:

* :class:`~repro.telemetry.registry.MetricsRegistry` — labeled
  counters, gauges, histograms, and per-instance time series;
* :class:`~repro.telemetry.tracer.SpanTracer` — nested virtual-clock
  spans over the checkpoint → rewrite → restore pipeline;
* :class:`~repro.telemetry.hub.TelemetryHub` — the per-run recording
  context combining both with a structured event stream;
* :mod:`~repro.telemetry.export` — JSONL event log + Prometheus text
  snapshot, and :func:`~repro.telemetry.export.summarize_events` to
  reconstruct every CLI-reported aggregate from the stream alone.

Instrumentation follows the ambient-plan idiom of :mod:`repro.faults`:
hot paths call the module-level helpers below (``count``, ``emit``,
``span`` …), which are **no-ops unless a hub is installed** — one
``is None`` test when telemetry is off.  Install a hub for a run with::

    hub = TelemetryHub(clock=lambda: kernel.clock_ns)
    with recording(hub):
        ...   # every instrumented layer records into `hub`

Determinism rules (load-bearing, tested):

* timestamps come from the bound virtual clock only — never wall time;
* label sets are sorted at creation; every export iterates in sorted
  order.  Two runs with the same :class:`~repro.faults.FaultPlan` seed
  therefore produce byte-identical snapshots and event streams.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Callable, Iterator

from .export import (
    attribute_traces,
    parse_prometheus,
    percentile,
    prometheus_snapshot,
    read_jsonl,
    read_trace_jsonl,
    summarize_events,
    to_jsonl,
    to_trace_jsonl,
)
from .hub import TelemetryEvent, TelemetryHub
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    labelset,
    quantile_from_buckets,
)
from .trace import (
    PHASES,
    RequestTracer,
    TraceContext,
    TraceError,
    TraceSpan,
)
from .tracer import Span, SpanTracer

_active: TelemetryHub | None = None


class TelemetryError(RuntimeError):
    """Misuse of the telemetry API (double install)."""


def _activate(hub: TelemetryHub) -> None:
    global _active
    if _active is not None and _active is not hub:
        raise TelemetryError("another TelemetryHub is already recording")
    _active = hub


def _deactivate(hub: TelemetryHub) -> None:
    global _active
    if _active is hub:
        _active = None


def hub() -> TelemetryHub | None:
    """The ambient hub, or None when nothing is recording."""
    return _active


@contextmanager
def recording(hub: TelemetryHub) -> Iterator[TelemetryHub]:
    """Install ``hub`` as the ambient recording context."""
    _activate(hub)
    try:
        yield hub
    finally:
        _deactivate(hub)


# ----------------------------------------------------------------------
# instrumentation-site helpers (no-ops without an active hub)

def emit(
    kind: str,
    name: str,
    clock_ns: int | None = None,
    labels: dict[str, object] | None = None,
    **fields: object,
) -> None:
    if _active is not None:
        _active.emit(kind, name, clock_ns=clock_ns, labels=labels, **fields)


def count(name: str, n: int = 1, **labels: object) -> None:
    if _active is not None:
        _active.count(name, n, **labels)


def gauge_set(name: str, value: float, **labels: object) -> None:
    if _active is not None:
        _active.gauge_set(name, value, **labels)


def observe(name: str, value: float, **labels: object) -> None:
    if _active is not None:
        _active.observe(name, value, **labels)


def sample(name: str, clock_ns: int, value: float, **labels: object) -> None:
    if _active is not None:
        _active.sample(name, clock_ns, value, **labels)


def span(name: str, clock: Callable[[], int] | None = None, **attrs: object):
    """Span context manager; a cheap null context when not recording."""
    if _active is None:
        return nullcontext()
    return _active.span(name, clock=clock, **attrs)


def label_scope(**labels: object):
    """Ambient label scope; null context when not recording."""
    if _active is None:
        return nullcontext()
    return _active.labels(**labels)


__all__ = [
    "PHASES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestTracer",
    "Span",
    "SpanTracer",
    "TelemetryError",
    "TelemetryEvent",
    "TelemetryHub",
    "TimeSeries",
    "TraceContext",
    "TraceError",
    "TraceSpan",
    "attribute_traces",
    "count",
    "emit",
    "gauge_set",
    "hub",
    "label_scope",
    "labelset",
    "observe",
    "parse_prometheus",
    "percentile",
    "prometheus_snapshot",
    "quantile_from_buckets",
    "read_jsonl",
    "read_trace_jsonl",
    "recording",
    "sample",
    "span",
    "summarize_events",
    "to_jsonl",
    "to_trace_jsonl",
]
