"""The telemetry hub: one registry, one tracer, one event stream.

A :class:`TelemetryHub` is the per-run recording context.  Installed
ambiently (see :mod:`repro.telemetry`), it receives every metric
update, finished span, and structured event the instrumented pipeline
produces, and timestamps them from a **bound virtual clock** (usually
``lambda: kernel.clock_ns``) so recordings replay bit-exactly.

Label scopes give emissions their identity without threading names
through every layer: the fleet controller wraps each instance's
lifecycle verbs in ``hub.labels(instance=...)``, and everything the
transaction engine, journal, and rewriter record underneath lands in
that instance's series automatically.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from .registry import LabelSet, MetricsRegistry, labelset
from .tracer import Span, SpanTracer


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured record of the unified event stream."""

    clock_ns: int
    kind: str            # journal | span | rewrite | dispatch | failover |
                         # traps | health | supervisor | rollout | drift |
                         # workload | campaign
    name: str
    labels: LabelSet = ()
    fields: tuple[tuple[str, object], ...] = ()

    def to_dict(self) -> dict:
        return {
            "clock_ns": self.clock_ns,
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "fields": dict(self.fields),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)

    @classmethod
    def from_dict(cls, payload: dict) -> "TelemetryEvent":
        return cls(
            clock_ns=payload["clock_ns"],
            kind=payload["kind"],
            name=payload["name"],
            labels=tuple(sorted(payload.get("labels", {}).items())),
            fields=tuple(sorted(payload.get("fields", {}).items())),
        )

    def field(self, key: str, default: object = None) -> object:
        return dict(self.fields).get(key, default)

    def label(self, key: str, default: str | None = None) -> str | None:
        return dict(self.labels).get(key, default)


class TelemetryHub:
    """Collects metrics, spans, and events for one recorded run."""

    def __init__(self, clock: Callable[[], int] | None = None):
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(clock)
        self.events: list[TelemetryEvent] = []
        self._clock = clock
        self._label_stack: list[dict[str, str]] = []
        self.tracer.on_finish = self._span_finished

    # ------------------------------------------------------------------
    # clock

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Point the hub at a (new) virtual clock, e.g. a fresh kernel."""
        self._clock = clock
        self.tracer.bind_clock(clock)

    def now(self) -> int:
        return self._clock() if self._clock is not None else 0

    # ------------------------------------------------------------------
    # label scopes

    @contextmanager
    def labels(self, **labels: object) -> Iterator[None]:
        """Apply ``labels`` to everything emitted inside the scope."""
        self._label_stack.append({k: str(v) for k, v in labels.items()})
        try:
            yield
        finally:
            self._label_stack.pop()

    def active_labels(self) -> dict[str, str]:
        merged: dict[str, str] = {}
        for scope in self._label_stack:
            merged.update(scope)
        return merged

    def _merged(self, labels: dict[str, object]) -> dict[str, str]:
        merged: dict[str, object] = dict(self.active_labels())
        merged.update(labels)
        return {k: str(v) for k, v in merged.items()}

    # ------------------------------------------------------------------
    # events

    def emit(
        self,
        kind: str,
        name: str,
        clock_ns: int | None = None,
        labels: dict[str, object] | None = None,
        **fields: object,
    ) -> TelemetryEvent:
        event = TelemetryEvent(
            clock_ns=self.now() if clock_ns is None else clock_ns,
            kind=kind,
            name=name,
            labels=labelset(self._merged(labels or {})),
            fields=tuple(sorted(fields.items())),
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # metrics (ambient labels merged in)

    def count(self, name: str, n: int = 1, **labels: object) -> None:
        self.registry.counter(name, **self._merged(labels)).inc(n)

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        self.registry.gauge(name, **self._merged(labels)).set(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        self.registry.histogram(name, **self._merged(labels)).observe(value)

    def sample(
        self, name: str, clock_ns: int, value: float, **labels: object
    ) -> None:
        self.registry.series(name, **self._merged(labels)).record(
            clock_ns, value
        )

    # ------------------------------------------------------------------
    # spans

    def span(
        self,
        name: str,
        clock: Callable[[], int] | None = None,
        **attrs: object,
    ):
        return self.tracer.span(name, clock=clock, **attrs)

    def _span_finished(self, span: Span) -> None:
        self.observe("span_ns", span.duration_ns, span=span.name)
        self.emit(
            "span",
            span.name,
            clock_ns=span.end_ns,
            start_ns=span.start_ns,
            duration_ns=span.duration_ns,
            parent=span.parent,
            depth=span.depth,
            status=span.status,
            span_id=span.span_id,
            parent_id=span.parent_id,
            **span.attrs,
        )
