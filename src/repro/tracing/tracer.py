"""The basic-block tracer (DynamoRIO drcov client analogue).

A :class:`BlockTracer` attaches to one process; the CPU reports every
completed basic block as ``(address, size)`` and the tracer resolves it
to a module-relative :class:`BlockRecord`.

The **nudge** mechanism reproduces the paper's extension to DynamoRIO:
an external signal (here a method call, there a DynamoRIO nudge) makes
the tool dump the coverage collected so far — the initialization-phase
trace — then clear its cache and keep recording, yielding the
post-initialization trace when the program finishes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .drcov import BlockRecord, CoverageTrace, ModuleEntry

if TYPE_CHECKING:
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process


class BlockTracer:
    """Collects drcov-style coverage for one traced process."""

    def __init__(self, kernel: "Kernel", proc: "Process"):
        self.kernel = kernel
        self.proc = proc
        self.trace = CoverageTrace(modules=self._module_table(proc))
        self.dumps: list[CoverageTrace] = []
        self.block_events = 0

    @staticmethod
    def _module_table(proc: "Process") -> list[ModuleEntry]:
        table = []
        for module in proc.modules:
            start = min(seg.vaddr for seg in module.image.segments) + module.load_base
            end = max(seg.end for seg in module.image.segments) + module.load_base
            table.append(ModuleEntry(module.name, start, end))
        return table

    # ------------------------------------------------------------------
    # CPU callback

    def on_block(self, proc: "Process", address: int, size: int) -> None:
        self.block_events += 1
        module = proc.module_for(address)
        if module is None:
            record = BlockRecord("[anon]", address, size)
        else:
            record = BlockRecord(module.name, address - module.load_base, size)
        self.trace.add(record)

    def on_syscall(self, proc: "Process", number: int) -> None:
        """Record syscall usage per phase (temporal specialization input)."""
        self.trace.syscalls.add(number)

    # ------------------------------------------------------------------
    # control

    def attach(self) -> "BlockTracer":
        self.kernel.attach_tracer(self.proc.pid, self)
        return self

    def detach(self) -> None:
        self.kernel.detach_tracer(self.proc.pid)

    def quiesce(self, max_instructions: int = 500_000) -> bool:
        """Step the traced process until it parks in a blocking syscall.

        Mirrors how a DynamoRIO nudge executes at a safe point: a host
        client sees a server's reply *before* the handler's tail runs,
        so dumping immediately would attribute trailing blocks to the
        wrong phase.  Only meaningful for event-loop programs; CPU-bound
        programs never block, so their callers pass ``quiesce=False``
        (their phase boundary is the observed output line itself).
        """
        from ..kernel.process import ProcessState

        executed = 0
        while (
            executed < max_instructions
            and self.proc.state is ProcessState.RUNNABLE
        ):
            self.kernel.cpu.step(self.proc)
            executed += 1
        return self.proc.state is not ProcessState.RUNNABLE

    def nudge_dump(self, quiesce: bool = True) -> CoverageTrace:
        """Dump coverage collected so far and reset the code cache.

        Returns the dumped trace (e.g. the init-phase coverage) and
        starts a fresh one for the next phase.
        """
        if quiesce:
            self.quiesce()
        dumped = self.trace
        self.dumps.append(dumped)
        self.trace = CoverageTrace(modules=self._module_table(self.proc))
        return dumped

    def finish(self, quiesce: bool = True) -> CoverageTrace:
        """Stop tracing and return the current-phase trace."""
        if quiesce:
            self.quiesce()
        self.detach()
        self.dumps.append(self.trace)
        return self.trace

    def __enter__(self) -> "BlockTracer":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()


def trace_run(
    kernel: "Kernel",
    proc: "Process",
    until,
    max_instructions: int = 20_000_000,
) -> CoverageTrace:
    """Trace ``proc`` while running the kernel until ``until`` fires."""
    tracer = BlockTracer(kernel, proc).attach()
    try:
        kernel.run_until(until, max_instructions=max_instructions)
    finally:
        tracer.detach()
    return tracer.trace
