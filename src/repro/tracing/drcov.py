"""drcov-style coverage traces.

DynamoRIO's ``drcov`` tool emits a module table plus a basic-block
table of ``<module id, start offset, size>`` entries.  DynaCut's
undesired-code identifier consumes exactly that: tuples of
``<BB addr, BB size>`` resolved against the module map.  This module
implements the same file format (text flavour) and the in-memory
:class:`CoverageTrace` the rest of the pipeline works with.

Offsets are **module-relative** (virtual address minus the module's
load base), so traces from different runs — and from different
processes with libraries at different bases — diff cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class BlockRecord:
    """One executed basic block, module-relative."""

    module: str
    offset: int
    size: int


@dataclass(frozen=True)
class ModuleEntry:
    """One loaded module observed during tracing."""

    name: str
    base: int
    end: int


@dataclass
class CoverageTrace:
    """A set of executed blocks with the module table they resolve against.

    ``order`` preserves first-execution order, which DynaCut uses to
    pick "the first basic block executed" of an undesired feature.
    """

    modules: list[ModuleEntry] = field(default_factory=list)
    blocks: set[BlockRecord] = field(default_factory=set)
    order: list[BlockRecord] = field(default_factory=list)
    #: syscall numbers observed during this trace (temporal syscall
    #: specialization input, Ghavamnia et al. / the paper's §5)
    syscalls: set[int] = field(default_factory=set)

    def add(self, record: BlockRecord) -> bool:
        """Record a block; returns True when first seen."""
        if record in self.blocks:
            return False
        self.blocks.add(record)
        self.order.append(record)
        return True

    def module_blocks(self, module: str) -> set[BlockRecord]:
        return {b for b in self.blocks if b.module == module}

    def module_names(self) -> list[str]:
        return sorted({b.module for b in self.blocks})

    def merged_with(self, *others: "CoverageTrace") -> "CoverageTrace":
        """Union of several traces (merging multiple request logs)."""
        merged = CoverageTrace(modules=list(self.modules))
        seen_modules = {m.name for m in merged.modules}
        for record in self.order:
            merged.add(record)
        merged.syscalls |= self.syscalls
        for other in others:
            for module in other.modules:
                if module.name not in seen_modules:
                    merged.modules.append(module)
                    seen_modules.add(module.name)
            for record in other.order:
                merged.add(record)
            merged.syscalls |= other.syscalls
        return merged

    # ------------------------------------------------------------------
    # drcov text format

    def to_text(self) -> str:
        lines = ["DRCOV VERSION: 2", f"Module Table: {len(self.modules)}"]
        module_ids = {}
        for index, module in enumerate(self.modules):
            module_ids[module.name] = index
            lines.append(
                f"{index}, {module.base:#x}, {module.end:#x}, {module.name}"
            )
        lines.append(f"BB Table: {len(self.order)} bbs")
        for record in self.order:
            module_id = module_ids.get(record.module, -1)
            lines.append(f"{module_id}, {record.offset:#x}, {record.size}")
        if self.syscalls:
            lines.append(f"Syscall Table: {len(self.syscalls)}")
            lines.append(", ".join(str(n) for n in sorted(self.syscalls)))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "CoverageTrace":
        trace = cls()
        lines = [line.strip() for line in text.splitlines() if line.strip()]
        if not lines or not lines[0].startswith("DRCOV VERSION"):
            raise ValueError("not a drcov trace (missing version header)")
        index = 1
        if index >= len(lines) or not lines[index].startswith("Module Table:"):
            raise ValueError("missing module table")
        module_count = int(lines[index].split(":")[1])
        index += 1
        names: dict[int, str] = {}
        for __ in range(module_count):
            parts = [p.strip() for p in lines[index].split(",", 3)]
            module_id = int(parts[0])
            base = int(parts[1], 0)
            end = int(parts[2], 0)
            name = parts[3]
            names[module_id] = name
            trace.modules.append(ModuleEntry(name, base, end))
            index += 1
        if index >= len(lines) or not lines[index].startswith("BB Table:"):
            raise ValueError("missing BB table")
        bb_count = int(lines[index].split(":")[1].split()[0])
        index += 1
        for __ in range(bb_count):
            parts = [p.strip() for p in lines[index].split(",")]
            module_id = int(parts[0])
            offset = int(parts[1], 0)
            size = int(parts[2], 0)
            trace.add(BlockRecord(names.get(module_id, "?"), offset, size))
            index += 1
        if index < len(lines) and lines[index].startswith("Syscall Table:"):
            index += 1
            if index < len(lines):
                trace.syscalls = {
                    int(tok) for tok in lines[index].split(",") if tok.strip()
                }
        return trace


def merge_traces(traces: list[CoverageTrace]) -> CoverageTrace:
    """Union a list of traces (DynaCut's trace-log merging)."""
    if not traces:
        return CoverageTrace()
    return traces[0].merged_with(*traces[1:])
