"""Basic-block coverage tracing (the DynamoRIO drcov + nudge analogue)."""

from .drcov import BlockRecord, CoverageTrace, ModuleEntry, merge_traces
from .tracer import BlockTracer, trace_run

__all__ = [
    "BlockRecord",
    "BlockTracer",
    "CoverageTrace",
    "ModuleEntry",
    "merge_traces",
    "trace_run",
]
