"""Host-side HTTP/1.0 client for the guest web servers."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.kernel import Kernel


@dataclass
class HttpResponse:
    """A parsed HTTP/1.0 response."""

    status: int
    reason: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class HttpError(RuntimeError):
    """Connection died or the response never arrived / did not parse."""


class HttpClient:
    """One-request-per-connection client (HTTP/1.0 semantics)."""

    def __init__(self, kernel: Kernel, port: int, max_instructions: int = 3_000_000):
        self.kernel = kernel
        self.port = port
        self.max_instructions = max_instructions

    # ------------------------------------------------------------------

    def raw_request(self, data: bytes | str) -> bytes:
        """Send raw bytes; wait until the server closes; return the reply."""
        sock = self.kernel.connect(self.port)
        sock.send(data)
        self.kernel.run_until(
            lambda: sock.closed_by_peer, max_instructions=self.max_instructions
        )
        reply = sock.recv_available()
        sock.close()
        return reply

    def request(
        self,
        method: str,
        path: str,
        body: bytes | str | None = None,
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        if isinstance(body, str):
            body = body.encode("utf-8")
        lines = [f"{method} {path} HTTP/1.0"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        if body:
            lines.append(f"Content-Length: {len(body)}")
        raw = "\r\n".join(lines).encode("utf-8") + b"\r\n\r\n" + (body or b"")
        return self._parse(self.raw_request(raw))

    # convenience verbs ------------------------------------------------

    def get(self, path: str) -> HttpResponse:
        return self.request("GET", path)

    def head(self, path: str) -> HttpResponse:
        return self.request("HEAD", path)

    def post(self, path: str, body: bytes | str) -> HttpResponse:
        return self.request("POST", path, body)

    def options(self, path: str = "/") -> HttpResponse:
        return self.request("OPTIONS", path)

    def put(self, path: str, body: bytes | str) -> HttpResponse:
        return self.request("PUT", path, body)

    def delete(self, path: str) -> HttpResponse:
        return self.request("DELETE", path)

    def propfind(self, path: str) -> HttpResponse:
        return self.request("PROPFIND", path)

    def mkcol(self, path: str) -> HttpResponse:
        return self.request("MKCOL", path)

    # ------------------------------------------------------------------

    @staticmethod
    def _parse(raw: bytes) -> HttpResponse:
        if not raw:
            raise HttpError("empty response (connection dropped?)")
        head, sep, body = raw.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        parts = lines[0].decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise HttpError(f"bad status line {lines[0]!r}")
        status = int(parts[1])
        reason = parts[2] if len(parts) > 2 else ""
        headers = {}
        for line in lines[1:]:
            name, __, value = line.decode("latin-1").partition(":")
            headers[name.strip()] = value.strip()
        return HttpResponse(status, reason, headers, body)
