"""Throughput-timeline driver (the redis-benchmark of Figure 8).

Sends a closed-loop stream of requests against a guest server and
records completions per virtual-time bucket.  Scheduled events (e.g.
"disable SET at t=20s, re-enable at t=48s") run between requests; a
DynaCut rewrite advances the virtual clock by the full service
interruption, which shows up as a dip in the affected bucket — exactly
the shape of the paper's Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from .. import telemetry
from ..telemetry import RequestTracer

SECOND_NS = 1_000_000_000


class _ClockConfig(Protocol):
    syscall_cost_ns: int


class VirtualClock(Protocol):
    """What the driver actually needs from a "kernel".

    A readable/writable virtual clock plus the syscall cost used to
    nudge past synchronous errors.  A real
    :class:`~repro.kernel.kernel.Kernel` satisfies this, and so does
    :class:`~repro.mesh.MeshClock` — the mesh facade whose reads return
    the max over member kernels and whose writes raise lagging ones —
    so one driver measures both a single machine and a sharded mesh.
    """

    clock_ns: int
    config: _ClockConfig


@dataclass(frozen=True)
class TimelineEvent:
    """An action to run once the virtual clock passes ``at_ns``."""

    at_ns: int
    label: str
    action: Callable[[], None]


@dataclass
class TimelinePoint:
    """One bucket of the measured timeline."""

    start_ns: int
    completed: int

    @property
    def start_s(self) -> float:
        return self.start_ns / SECOND_NS


@dataclass
class TimelineResult:
    points: list[TimelinePoint] = field(default_factory=list)
    events_fired: list[tuple[int, str]] = field(default_factory=list)
    total_requests: int = 0
    failed_requests: int = 0
    #: (offset ns, error repr) for requests that raised instead of
    #: returning False — connection refused to a drained/mid-customize
    #: backend, dropped replies, protocol errors
    errors: list[tuple[int, str]] = field(default_factory=list)
    #: requests that succeeded only after the balancer failed over away
    #: from a dead backend — served, but distinct from clean successes
    failed_over_requests: int = 0
    #: (offset ns, failover count) per request that observed failovers
    failover_events: list[tuple[int, int]] = field(default_factory=list)

    def throughput_series(self, bucket_ns: int) -> list[tuple[float, float]]:
        """(bucket start seconds, requests/second) pairs."""
        scale = SECOND_NS / bucket_ns
        return [(p.start_s, p.completed * scale) for p in self.points]

    def min_bucket(self) -> int:
        return min((p.completed for p in self.points), default=0)

    def max_bucket(self) -> int:
        return max((p.completed for p in self.points), default=0)


def run_request_timeline(
    kernel: VirtualClock,
    request_once: Callable[[], bool],
    duration_ns: int,
    bucket_ns: int = SECOND_NS,
    events: list[TimelineEvent] | None = None,
    max_requests: int = 1_000_000,
    tolerate_errors: bool = True,
    failover_meter: Callable[[], int] | None = None,
    tracer: RequestTracer | None = None,
) -> TimelineResult:
    """Drive ``request_once`` in a closed loop for ``duration_ns``.

    ``request_once`` issues one request and returns whether it
    succeeded; it is responsible for running the kernel until its reply
    arrives (both clients in this package do).

    With ``tolerate_errors`` (the default), an exception out of
    ``request_once`` counts as a failed request and is logged in
    :attr:`TimelineResult.errors` instead of aborting the run — a
    connection refused by a drained or mid-customization backend must
    show up as a dip, not kill the workload.  Exceptions advance the
    virtual clock by nothing on their own, so a refused connect cannot
    spin the loop forever: the clock is nudged by one syscall cost per
    error.  Pass ``tolerate_errors=False`` to re-raise (debugging).

    ``failover_meter`` (e.g. ``lambda: pool.total_failovers``) is
    sampled around every request; a request during which the meter
    advanced is counted in :attr:`TimelineResult.failed_over_requests`
    — served, but only because the balancer routed around a dead
    backend.  Failovers are accounted separately from failures: the
    accounting identity ``total = sum(buckets) + failed`` still holds.

    With a ``tracer`` (a :class:`~repro.telemetry.RequestTracer`) every
    loop iteration runs under its own
    :class:`~repro.telemetry.TraceContext`: due timeline events fire
    *inside* the context as ``stall`` spans (closed-loop honesty — the
    request that waited for a rewrite is the one that pays for it), the
    request itself is a ``dispatch`` leg, and the error nudge is a
    ``shed`` span, so every virtual nanosecond the loop advances is
    attributed to exactly one request phase.  Tracing never changes the
    virtual timeline: the same seed produces the same buckets, events,
    and final clock with tracing on or off (pinned by the overhead
    benchmark).
    """
    events = sorted(events or [], key=lambda e: e.at_ns)
    pending = list(events)
    start = kernel.clock_ns
    end = start + duration_ns
    result = TimelineResult()
    buckets: dict[int, int] = {}

    while kernel.clock_ns < end and result.total_requests < max_requests:
        context = (
            tracer.begin(
                lambda: kernel.clock_ns, index=result.total_requests
            )
            if tracer is not None
            else None
        )
        ok = False
        try:
            while pending and kernel.clock_ns - start >= pending[0].at_ns:
                event = pending.pop(0)
                if context is not None:
                    with context.stall(event.label):
                        event.action()
                else:
                    event.action()
                result.events_fired.append(
                    (kernel.clock_ns - start, event.label)
                )
            meter_before = failover_meter() if failover_meter is not None else 0
            try:
                if context is not None:
                    with context.leg("dispatch"):
                        ok = request_once()
                else:
                    ok = request_once()
            except Exception as exc:  # noqa: BLE001 — failed request, not a bug
                if not tolerate_errors:
                    raise
                ok = False
                result.errors.append((kernel.clock_ns - start, repr(exc)))
                # a synchronous refusal burns no guest work; charge one
                # kernel entry so an all-backends-down window still ends
                if context is not None:
                    with context.aux("error-nudge", "shed"):
                        kernel.clock_ns += kernel.config.syscall_cost_ns
                else:
                    kernel.clock_ns += kernel.config.syscall_cost_ns
        finally:
            if context is not None:
                tracer.finish(context, ok=ok)
        if failover_meter is not None:
            delta = failover_meter() - meter_before
            if delta > 0:
                result.failed_over_requests += 1
                result.failover_events.append((kernel.clock_ns - start, delta))
        result.total_requests += 1
        if ok:
            # a request issued inside the window may complete just past
            # its end; account it to the final bucket
            bucket = min(
                (kernel.clock_ns - start) // bucket_ns,
                -(-duration_ns // bucket_ns) - 1,
            )
            buckets[bucket] = buckets.get(bucket, 0) + 1
        else:
            result.failed_requests += 1

    n_buckets = max(1, -(-duration_ns // bucket_ns))
    result.points = [
        TimelinePoint(index * bucket_ns, buckets.get(index, 0))
        for index in range(n_buckets)
    ]
    telemetry.count("workload_requests_total", result.total_requests)
    telemetry.count("workload_failed_total", result.failed_requests)
    telemetry.count("workload_failed_over_total", result.failed_over_requests)
    scale = SECOND_NS / bucket_ns
    for point in result.points:
        telemetry.sample(
            "throughput_rps", start + point.start_ns, point.completed * scale
        )
    telemetry.emit(
        "workload", "timeline",
        clock_ns=kernel.clock_ns,
        start_ns=start,
        duration_ns=duration_ns,
        bucket_ns=bucket_ns,
        total_requests=result.total_requests,
        failed_requests=result.failed_requests,
        failed_over_requests=result.failed_over_requests,
        errors=len(result.errors),
        events_fired=len(result.events_fired),
        min_bucket=result.min_bucket(),
        max_bucket=result.max_bucket(),
    )
    return result
