"""Host-side workload generators and clients."""

from .http_client import HttpClient, HttpError, HttpResponse
from .redis_client import RedisClient, RedisError
from .driver import (
    SECOND_NS,
    TimelineEvent,
    TimelinePoint,
    TimelineResult,
    VirtualClock,
    run_request_timeline,
)

__all__ = [
    "HttpClient",
    "HttpError",
    "HttpResponse",
    "RedisClient",
    "RedisError",
    "SECOND_NS",
    "TimelineEvent",
    "TimelinePoint",
    "TimelineResult",
    "VirtualClock",
    "run_request_timeline",
]
