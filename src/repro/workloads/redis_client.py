"""Host-side client for miniredis (persistent connection, inline protocol)."""

from __future__ import annotations

from ..kernel.kernel import HostSocket, Kernel


class RedisError(RuntimeError):
    """Server returned -ERR, or the connection died."""


class RedisClient:
    """A persistent miniredis connection.

    The connection deliberately survives DynaCut rewrite cycles (TCP
    repair keeps it established), so the same client object can be used
    before and after a customization — the Figure 8 workload.
    """

    def __init__(self, kernel: Kernel, port: int, max_instructions: int = 2_000_000):
        self.kernel = kernel
        self.port = port
        self.max_instructions = max_instructions
        self._sock: HostSocket | None = None

    def _socket(self) -> HostSocket:
        if self._sock is None or self._sock.closed_by_peer:
            self._sock = self.kernel.connect(self.port)
        return self._sock

    # ------------------------------------------------------------------

    def command_raw(self, line: str) -> bytes:
        """Send one inline command; return the raw reply line."""
        sock = self._socket()
        sock.send(line.rstrip("\n") + "\n")
        reply = sock.recv_until(b"\n", max_instructions=self.max_instructions)
        if not reply:
            raise RedisError(f"no reply to {line!r} (server dead?)")
        return reply

    def command(self, line: str) -> str:
        """Send a command; return the decoded reply without the newline."""
        return self.command_raw(line).decode("utf-8", "replace").rstrip("\n")

    # typed helpers -----------------------------------------------------

    def ping(self) -> bool:
        return self.command("PING") == "+PONG"

    def set(self, key: str, value: str) -> bool:
        return self.command(f"SET {key} {value}") == "+OK"

    def get(self, key: str) -> str | None:
        reply = self.command(f"GET {key}")
        if reply == "$-1":
            return None
        if reply.startswith("$"):
            return reply[1:]
        raise RedisError(reply)

    def delete(self, key: str) -> int:
        return self._int(self.command(f"DEL {key}"))

    def incr(self, key: str) -> int:
        return self._int(self.command(f"INCR {key}"))

    def dbsize(self) -> int:
        return self._int(self.command("DBSIZE"))

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    @staticmethod
    def _int(reply: str) -> int:
        if not reply.startswith(":"):
            raise RedisError(reply)
        return int(reply[1:])
