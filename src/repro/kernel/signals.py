"""Signals: numbers, actions, sigframe layout.

DynaCut's runtime behaviour hinges on faithful signal semantics:

* executing a patched ``int3`` raises ``SIGTRAP`` with the saved
  instruction pointer pointing *after* the one-byte trap (x86
  semantics), so handlers recover the trap site as ``rip - 1``;
* a handler may rewrite the saved ``rip`` in the sigframe before
  returning, redirecting execution (the "respond 403 instead of
  crashing" policy);
* ``rt_sigreturn`` restores the full register file from the sigframe.

Sigframe layout (written to the stack on delivery)::

    sp -> [ restorer address ]      8 bytes (handler's return address)
          [ saved rip        ]      offset 0 within the frame
          [ saved zf, lt     ]      offsets 8, 16
          [ r0 .. r15        ]      offsets 24 .. 144

The handler receives the signal number in ``r1`` and the frame address
in ``r2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class Signal(IntEnum):
    SIGILL = 4
    SIGTRAP = 5
    SIGFPE = 8
    SIGKILL = 9
    SIGSEGV = 11
    SIGTERM = 15
    SIGCHLD = 17
    SIGSTOP = 19
    SIGUSR1 = 30
    SIGSYS = 31          # raised on syscall-filter violations (seccomp)


#: Signals whose default action terminates the process.
FATAL_BY_DEFAULT = frozenset(
    {Signal.SIGILL, Signal.SIGTRAP, Signal.SIGFPE, Signal.SIGKILL,
     Signal.SIGSEGV, Signal.SIGTERM, Signal.SIGSYS}
)

#: Signals that cannot be caught or ignored.
UNCATCHABLE = frozenset({Signal.SIGKILL, Signal.SIGSTOP})

#: Sigframe field offsets.
FRAME_RIP = 0
FRAME_ZF = 8
FRAME_LT = 16
FRAME_REGS = 24
FRAME_SIZE = 24 + 16 * 8


@dataclass
class SigAction:
    """An installed signal handler (the ``sigaction`` of the core image)."""

    handler: int        # guest address of the handler function
    restorer: int       # guest address of the sigreturn trampoline
    mask: int = 0       # reserved; kept for image fidelity


@dataclass(frozen=True)
class PendingSignal:
    """A queued signal with the fault address that produced it (if any)."""

    signal: Signal
    fault_address: int = 0
