"""Process model: registers, state machine, descriptors, signals.

A :class:`Process` is everything CRIU would checkpoint: the register
file, the address space, installed sigactions, the file-descriptor
table, and the metadata that ends up in the ``core``/``mm`` images
(binary name, loaded-module map).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable

from ..binfmt.self_format import SelfImage
from .memory import AddressSpace
from .signals import PendingSignal, SigAction, Signal

NUM_REGISTERS = 16
SP = 15
FP = 14


class RegisterFile:
    """Sixteen 64-bit registers plus ``rip`` and comparison flags."""

    __slots__ = ("gpr", "rip", "zf", "lt")

    def __init__(self) -> None:
        self.gpr = [0] * NUM_REGISTERS
        self.rip = 0
        self.zf = False   # last cmp: equal
        self.lt = False   # last cmp: signed less-than

    def snapshot(self) -> dict[str, Any]:
        return {"gpr": list(self.gpr), "rip": self.rip, "zf": self.zf, "lt": self.lt}

    def load_snapshot(self, state: dict[str, Any]) -> None:
        self.gpr = list(state["gpr"])
        self.rip = state["rip"]
        self.zf = bool(state["zf"])
        self.lt = bool(state["lt"])

    def clone(self) -> "RegisterFile":
        other = RegisterFile()
        other.load_snapshot(self.snapshot())
        return other


class ProcessState(Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    FROZEN = "frozen"      # stopped for checkpointing (ptrace/criu freeze)
    ZOMBIE = "zombie"      # exited, waiting to be reaped
    DEAD = "dead"


@dataclass(frozen=True)
class LoadedModule:
    """A binary image mapped into the process (one ``/proc/maps`` module)."""

    image: SelfImage
    load_base: int

    @property
    def name(self) -> str:
        return self.image.name

    def contains(self, address: int) -> bool:
        for seg in self.image.segments:
            if seg.vaddr + self.load_base <= address < seg.end + self.load_base:
                return True
        return False

    def text_bounds(self) -> tuple[int, int]:
        start, end = self.image.text_range()
        return start + self.load_base, end + self.load_base


@dataclass
class Descriptor:
    """Base class for file-descriptor table entries."""

    def clone_for_fork(self) -> "Descriptor":
        """fork() shares the underlying open file description."""
        return self


class Process:
    """One guest process."""

    def __init__(self, pid: int, ppid: int, binary: str, memory: AddressSpace):
        self.pid = pid
        self.ppid = ppid
        self.binary = binary
        self.memory = memory
        self.regs = RegisterFile()
        self.state = ProcessState.RUNNABLE
        self.exit_code: int | None = None
        self.term_signal: Signal | None = None
        self.fds: dict[int, Descriptor] = {}
        self.next_fd = 3
        self.sigactions: dict[int, SigAction] = {}
        self.pending_signals: deque[PendingSignal] = deque()
        self.modules: list[LoadedModule] = []
        self.children: list[int] = []
        self.stdout = bytearray()
        self.wake_predicate: Callable[[], bool] | None = None
        self.wake_deadline: int | None = None
        #: absolute deadline of an in-progress nanosleep (restartable syscall)
        self.sleep_until: int | None = None
        #: seccomp-style allow-list of syscall numbers; None = everything.
        #: A call outside the set raises SIGSYS (kill by default).
        self.syscall_filter: frozenset[int] | None = None
        self.instructions_retired = 0
        #: set by the CPU when entering a fresh basic block (tracing support)
        self.block_start: int | None = None

    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state not in (ProcessState.ZOMBIE, ProcessState.DEAD)

    def allocate_fd(self, descriptor: Descriptor) -> int:
        fd = self.next_fd
        self.next_fd += 1
        self.fds[fd] = descriptor
        return fd

    def module_for(self, address: int) -> LoadedModule | None:
        for module in self.modules:
            if module.contains(address):
                return module
        return None

    def executable_module(self) -> LoadedModule:
        """The main binary's module (first loaded)."""
        if not self.modules:
            raise RuntimeError(f"pid {self.pid}: no modules loaded")
        return self.modules[0]

    def block(self, predicate: Callable[[], bool]) -> None:
        self.state = ProcessState.BLOCKED
        self.wake_predicate = predicate

    def maybe_wake(self) -> bool:
        if self.state is not ProcessState.BLOCKED or self.wake_predicate is None:
            return False
        if self.wake_predicate():
            self.state = ProcessState.RUNNABLE
            self.wake_predicate = None
            self.wake_deadline = None
            return True
        return False

    def stdout_text(self) -> str:
        return self.stdout.decode("utf-8", errors="replace")

    def __repr__(self) -> str:
        return (
            f"<Process pid={self.pid} binary={self.binary!r} "
            f"state={self.state.value}>"
        )
