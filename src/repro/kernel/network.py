"""Loopback TCP: listening sockets, connections, and TCP repair.

The network stack models exactly what DynaCut needs from Linux TCP:

* guest servers ``socket``/``bind``/``listen``/``accept`` and exchange
  bytes with host-side clients (the evaluation's ``redis-benchmark``
  and HTTP clients live on the host side);
* established connections survive checkpoint/restore: the stack keeps
  a registry of live :class:`Connection` objects keyed by id, and a
  restored process re-attaches to its old connection with the buffered
  byte streams reinstated — the ``TCP_REPAIR`` behaviour the paper
  relies on to rewrite servers without dropping clients.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from .. import telemetry
from ..telemetry import trace
from .balancer import MemberPool, NetworkError, NoBackendAvailable
from .process import Descriptor

__all__ = [
    "BackendPool",
    "Connection",
    "Endpoint",
    "ListeningSocket",
    "MemberPool",
    "NetworkError",
    "NetworkStack",
    "NoBackendAvailable",
    "SocketDescriptor",
]


@dataclass
class Endpoint:
    """One side of a TCP connection."""

    conn_id: int
    side: str                      # "a" (connecting side) or "b" (accepting)
    recv_buffer: bytearray = field(default_factory=bytearray)
    closed: bool = False
    peer: "Endpoint | None" = None
    #: total bytes ever queued to this endpoint (TCP sequence analogue)
    seq_in: int = 0

    def send(self, data: bytes) -> int:
        if self.closed or self.peer is None or self.peer.closed:
            return -1
        self.peer.recv_buffer += data
        self.peer.seq_in += len(data)
        return len(data)

    def recv(self, size: int) -> bytes:
        chunk = bytes(self.recv_buffer[:size])
        del self.recv_buffer[:len(chunk)]
        return chunk

    @property
    def readable(self) -> bool:
        """Data available, or EOF observable."""
        return bool(self.recv_buffer) or self.closed or (
            self.peer is None or self.peer.closed
        )

    def close(self) -> None:
        self.closed = True


@dataclass
class Connection:
    """A full-duplex TCP connection between two endpoints."""

    conn_id: int
    a: Endpoint
    b: Endpoint

    def endpoint(self, side: str) -> Endpoint:
        if side == "a":
            return self.a
        if side == "b":
            return self.b
        raise NetworkError(f"bad connection side {side!r}")

    @property
    def alive(self) -> bool:
        return not (self.a.closed and self.b.closed)


@dataclass
class ListeningSocket:
    """A bound, listening server socket."""

    port: int
    backlog: deque[Connection] = field(default_factory=deque)
    closed: bool = False
    #: the owning process died abruptly (SIGKILL): the port is still in
    #: the table — the balancer's stale view — but no process will ever
    #: accept, so new connects are refused rather than queued
    orphaned: bool = False

    @property
    def has_pending(self) -> bool:
        return bool(self.backlog)


class SocketDescriptor(Descriptor):
    """A guest socket fd: unbound, listening, or connected."""

    def __init__(self) -> None:
        self.listener: ListeningSocket | None = None
        self.endpoint: Endpoint | None = None
        self.bound_port: int | None = None


class BackendPool(MemberPool):
    """Round-robin balancing across backend ports behind one frontend.

    The pool is the substrate DynaFleet's load balancer is built on: a
    *frontend port* that real listeners never bind, whose inbound
    connections are spread over the registered backend ports.  Members
    can be **drained** (kept registered, taken out of rotation — the
    step before customizing an instance) and **rejoined**.  Backends
    whose listener is currently gone (e.g. a process tree mid-
    checkpoint) are skipped automatically, so one frozen instance never
    turns into connection errors for balanced clients.

    The state machine itself lives in :class:`MemberPool` (DynaMesh
    reuses it one level up, over hosts); this subclass adds the
    port-specific validation and the per-port telemetry.
    """

    def __init__(
        self,
        frontend_port: int,
        backends: list[int] | None = None,
        failover_budget: int = 1,
    ):
        self.frontend_port = frontend_port
        super().__init__(
            label=f"frontend {frontend_port}",
            backends=backends,
            failover_budget=failover_budget,
        )

    def add(self, port: int) -> None:
        if port == self.frontend_port:
            raise NetworkError("a backend cannot be its own frontend")
        super().add(port)

    def note_dispatch(self, port: int) -> None:
        super().note_dispatch(port)
        telemetry.count("dispatch_total", port=port)
        telemetry.emit(
            "dispatch", "balanced",
            labels={"port": port}, frontend=self.frontend_port,
        )

    def record_failover(self, port: int) -> None:
        self.note_failover(port)

    def note_failover(self, port: int) -> None:
        super().note_failover(port)
        telemetry.count("failover_total", port=port)
        telemetry.emit(
            "failover", "routed-around",
            labels={"port": port}, frontend=self.frontend_port,
        )


class NetworkStack:
    """The loopback network shared by the kernel and host clients."""

    def __init__(self) -> None:
        self.ports: dict[int, ListeningSocket] = {}
        self.connections: dict[int, Connection] = {}
        self.frontends: dict[int, BackendPool] = {}
        self._next_conn_id = 1
        #: virtual-clock reader bound by the owning kernel; lets route
        #: resolution stamp request-trace spans on the right clock
        self.clock: Callable[[], int] | None = None

    # ------------------------------------------------------------------
    # guest-side operations (invoked by syscalls)

    def bind(self, sock: SocketDescriptor, port: int) -> bool:
        if port in self.ports and not self.ports[port].closed:
            return False
        if port in self.frontends:
            return False          # virtual balancer ports are reserved
        sock.bound_port = port
        return True

    def listen(self, sock: SocketDescriptor) -> bool:
        if sock.bound_port is None:
            return False
        listener = ListeningSocket(sock.bound_port)
        self.ports[sock.bound_port] = listener
        sock.listener = listener
        return True

    def accept(self, sock: SocketDescriptor) -> Endpoint | None:
        if sock.listener is None or not sock.listener.backlog:
            return None
        conn = sock.listener.backlog.popleft()
        return conn.b

    def release_port(self, port: int) -> None:
        listener = self.ports.pop(port, None)
        if listener is not None:
            listener.closed = True

    def rebind_listener(self, port: int, backlog: list[int]) -> ListeningSocket:
        """Recreate a listening socket at restore time.

        ``backlog`` holds connection ids that were pending at checkpoint.
        """
        listener = ListeningSocket(port)
        for conn_id in backlog:
            conn = self.connections.get(conn_id)
            if conn is not None and conn.alive:
                listener.backlog.append(conn)
        self.ports[port] = listener
        return listener

    # ------------------------------------------------------------------
    # multi-backend balancing (frontend ports)

    def register_frontend(
        self, frontend_port: int, backends: list[int] | None = None
    ) -> BackendPool:
        """Reserve ``frontend_port`` as a balanced virtual port."""
        if frontend_port in self.frontends:
            raise NetworkError(f"frontend port {frontend_port} already registered")
        listener = self.ports.get(frontend_port)
        if listener is not None and not listener.closed:
            raise NetworkError(
                f"port {frontend_port} has a live listener; cannot balance over it"
            )
        pool = BackendPool(frontend_port)
        for port in backends or []:
            pool.add(port)
        self.frontends[frontend_port] = pool
        return pool

    def release_frontend(self, frontend_port: int) -> None:
        self.frontends.pop(frontend_port, None)

    def _backend_listener(self, port: int) -> ListeningSocket | None:
        listener = self.ports.get(port)
        if listener is None or listener.closed:
            return None
        return listener

    def _pick_backend(self, pool: BackendPool) -> int:
        """Next in-service backend with a bound listener, round robin.

        Selection only — no dispatch accounting.  Backends whose port has
        no listener at all are skipped (a tree mid-checkpoint); *orphaned*
        listeners are **not** skipped here, because the balancer's view is
        stale until a dispatch actually bounces — that discovery and the
        failover retry happen in :meth:`_route`.
        """
        return pool.pick(lambda port: self._backend_listener(port) is not None)

    def _healthy_backend(self, port: int) -> bool:
        listener = self._backend_listener(port)
        return listener is not None and not listener.orphaned

    def _route(self, pool: BackendPool) -> int:
        """Resolve a frontend connect to a live backend, with failover.

        A pick that lands on an orphaned listener (owner crashed, port
        still in the balancer's view) marks that backend down and retries
        on the next live one, bounded by the pool's failover budget.
        """
        return pool.route(
            live=lambda port: self._backend_listener(port) is not None,
            healthy=self._healthy_backend,
        )

    # ------------------------------------------------------------------
    # connection lifecycle

    def connect(self, port: int) -> Endpoint:
        """Open a connection to ``port``; returns the client endpoint.

        A frontend port resolves through its :class:`BackendPool` to a
        live backend listener first (the load-balancer hop).
        """
        pool = self.frontends.get(port)
        if pool is not None:
            with trace.aux_span(
                "route", "route", clock=self.clock, frontend=port
            ) as span:
                port = self._route(pool)
                if span is not None:
                    span.attrs["backend"] = port
        listener = self.ports.get(port)
        if listener is None or listener.closed:
            raise NetworkError(f"connection refused: port {port}")
        if listener.orphaned:
            raise NetworkError(
                f"connection refused: port {port} (no accepting process)"
            )
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        a = Endpoint(conn_id, "a")
        b = Endpoint(conn_id, "b")
        a.peer, b.peer = b, a
        conn = Connection(conn_id, a, b)
        self.connections[conn_id] = conn
        listener.backlog.append(conn)
        return a

    def repair_endpoint(self, conn_id: int, side: str, buffered: bytes) -> Endpoint:
        """TCP_REPAIR: re-attach ``side`` of connection ``conn_id``.

        The checkpointed receive buffer is reinstated; bytes the peer
        queued *while the process was frozen* are appended after it, so
        no data is lost or reordered.
        """
        conn = self.connections.get(conn_id)
        if conn is None:
            raise NetworkError(f"cannot repair: connection {conn_id} is gone")
        endpoint = conn.endpoint(side)
        arrived_while_frozen = bytes(endpoint.recv_buffer)
        endpoint.recv_buffer = bytearray(buffered) + bytearray(arrived_while_frozen)
        endpoint.closed = False
        return endpoint

    def gc(self) -> None:
        """Drop fully closed connections."""
        dead = [cid for cid, conn in self.connections.items() if not conn.alive]
        for cid in dead:
            del self.connections[cid]
