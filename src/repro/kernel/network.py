"""Loopback TCP: listening sockets, connections, and TCP repair.

The network stack models exactly what DynaCut needs from Linux TCP:

* guest servers ``socket``/``bind``/``listen``/``accept`` and exchange
  bytes with host-side clients (the evaluation's ``redis-benchmark``
  and HTTP clients live on the host side);
* established connections survive checkpoint/restore: the stack keeps
  a registry of live :class:`Connection` objects keyed by id, and a
  restored process re-attaches to its old connection with the buffered
  byte streams reinstated — the ``TCP_REPAIR`` behaviour the paper
  relies on to rewrite servers without dropping clients.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .. import telemetry
from .process import Descriptor


class NetworkError(Exception):
    """Host-level misuse of the network API."""


class NoBackendAvailable(NetworkError):
    """Every backend behind a frontend is drained, down, or dead.

    Distinct from a generic :class:`NetworkError` so balanced clients
    (and the workload driver) can tell "the whole pool is gone" apart
    from a single refused port.
    """


@dataclass
class Endpoint:
    """One side of a TCP connection."""

    conn_id: int
    side: str                      # "a" (connecting side) or "b" (accepting)
    recv_buffer: bytearray = field(default_factory=bytearray)
    closed: bool = False
    peer: "Endpoint | None" = None
    #: total bytes ever queued to this endpoint (TCP sequence analogue)
    seq_in: int = 0

    def send(self, data: bytes) -> int:
        if self.closed or self.peer is None or self.peer.closed:
            return -1
        self.peer.recv_buffer += data
        self.peer.seq_in += len(data)
        return len(data)

    def recv(self, size: int) -> bytes:
        chunk = bytes(self.recv_buffer[:size])
        del self.recv_buffer[:len(chunk)]
        return chunk

    @property
    def readable(self) -> bool:
        """Data available, or EOF observable."""
        return bool(self.recv_buffer) or self.closed or (
            self.peer is None or self.peer.closed
        )

    def close(self) -> None:
        self.closed = True


@dataclass
class Connection:
    """A full-duplex TCP connection between two endpoints."""

    conn_id: int
    a: Endpoint
    b: Endpoint

    def endpoint(self, side: str) -> Endpoint:
        if side == "a":
            return self.a
        if side == "b":
            return self.b
        raise NetworkError(f"bad connection side {side!r}")

    @property
    def alive(self) -> bool:
        return not (self.a.closed and self.b.closed)


@dataclass
class ListeningSocket:
    """A bound, listening server socket."""

    port: int
    backlog: deque[Connection] = field(default_factory=deque)
    closed: bool = False
    #: the owning process died abruptly (SIGKILL): the port is still in
    #: the table — the balancer's stale view — but no process will ever
    #: accept, so new connects are refused rather than queued
    orphaned: bool = False

    @property
    def has_pending(self) -> bool:
        return bool(self.backlog)


class SocketDescriptor(Descriptor):
    """A guest socket fd: unbound, listening, or connected."""

    def __init__(self) -> None:
        self.listener: ListeningSocket | None = None
        self.endpoint: Endpoint | None = None
        self.bound_port: int | None = None


@dataclass
class BackendPool:
    """Round-robin balancing across backend ports behind one frontend.

    The pool is the substrate DynaFleet's load balancer is built on: a
    *frontend port* that real listeners never bind, whose inbound
    connections are spread over the registered backend ports.  Members
    can be **drained** (kept registered, taken out of rotation — the
    step before customizing an instance) and **rejoined**.  Backends
    whose listener is currently gone (e.g. a process tree mid-
    checkpoint) are skipped automatically, so one frozen instance never
    turns into connection errors for balanced clients.
    """

    frontend_port: int
    backends: list[int] = field(default_factory=list)
    drained: set[int] = field(default_factory=set)
    #: backends the balancer has marked unhealthy (crashed listener
    #: discovered at dispatch, or the supervisor taking one DOWN)
    down: set[int] = field(default_factory=set)
    #: how many extra backends one connect may try after landing on a
    #: dead one (0 = fail immediately, the pre-failover behaviour)
    failover_budget: int = 1
    #: connections dispatched per backend port (observability)
    dispatched: dict[int, int] = field(default_factory=dict)
    #: connections re-routed away from each dead backend (observability)
    failovers: dict[int, int] = field(default_factory=dict)
    _rr: int = 0

    def add(self, port: int) -> None:
        if port == self.frontend_port:
            raise NetworkError("a backend cannot be its own frontend")
        if port not in self.backends:
            self.backends.append(port)
            self.dispatched.setdefault(port, 0)

    def remove(self, port: int) -> None:
        if port in self.backends:
            self.backends.remove(port)
        self.drained.discard(port)
        self.down.discard(port)

    def drain(self, port: int) -> None:
        if port not in self.backends:
            raise NetworkError(f"port {port} is not a backend of this pool")
        self.drained.add(port)

    def rejoin(self, port: int) -> None:
        if port not in self.backends:
            raise NetworkError(f"port {port} is not a backend of this pool")
        self.drained.discard(port)
        self.down.discard(port)

    def mark_down(self, port: int) -> None:
        if port not in self.backends:
            raise NetworkError(f"port {port} is not a backend of this pool")
        self.down.add(port)

    def mark_up(self, port: int) -> None:
        if port not in self.backends:
            raise NetworkError(f"port {port} is not a backend of this pool")
        self.down.discard(port)

    def record_failover(self, port: int) -> None:
        self.failovers[port] = self.failovers.get(port, 0) + 1
        telemetry.count("failover_total", port=port)
        telemetry.emit(
            "failover", "routed-around",
            labels={"port": port}, frontend=self.frontend_port,
        )

    @property
    def total_failovers(self) -> int:
        return sum(self.failovers.values())

    def in_service(self) -> list[int]:
        """Backends currently eligible for new connections."""
        return [
            port
            for port in self.backends
            if port not in self.drained and port not in self.down
        ]


class NetworkStack:
    """The loopback network shared by the kernel and host clients."""

    def __init__(self) -> None:
        self.ports: dict[int, ListeningSocket] = {}
        self.connections: dict[int, Connection] = {}
        self.frontends: dict[int, BackendPool] = {}
        self._next_conn_id = 1

    # ------------------------------------------------------------------
    # guest-side operations (invoked by syscalls)

    def bind(self, sock: SocketDescriptor, port: int) -> bool:
        if port in self.ports and not self.ports[port].closed:
            return False
        if port in self.frontends:
            return False          # virtual balancer ports are reserved
        sock.bound_port = port
        return True

    def listen(self, sock: SocketDescriptor) -> bool:
        if sock.bound_port is None:
            return False
        listener = ListeningSocket(sock.bound_port)
        self.ports[sock.bound_port] = listener
        sock.listener = listener
        return True

    def accept(self, sock: SocketDescriptor) -> Endpoint | None:
        if sock.listener is None or not sock.listener.backlog:
            return None
        conn = sock.listener.backlog.popleft()
        return conn.b

    def release_port(self, port: int) -> None:
        listener = self.ports.pop(port, None)
        if listener is not None:
            listener.closed = True

    def rebind_listener(self, port: int, backlog: list[int]) -> ListeningSocket:
        """Recreate a listening socket at restore time.

        ``backlog`` holds connection ids that were pending at checkpoint.
        """
        listener = ListeningSocket(port)
        for conn_id in backlog:
            conn = self.connections.get(conn_id)
            if conn is not None and conn.alive:
                listener.backlog.append(conn)
        self.ports[port] = listener
        return listener

    # ------------------------------------------------------------------
    # multi-backend balancing (frontend ports)

    def register_frontend(
        self, frontend_port: int, backends: list[int] | None = None
    ) -> BackendPool:
        """Reserve ``frontend_port`` as a balanced virtual port."""
        if frontend_port in self.frontends:
            raise NetworkError(f"frontend port {frontend_port} already registered")
        listener = self.ports.get(frontend_port)
        if listener is not None and not listener.closed:
            raise NetworkError(
                f"port {frontend_port} has a live listener; cannot balance over it"
            )
        pool = BackendPool(frontend_port)
        for port in backends or []:
            pool.add(port)
        self.frontends[frontend_port] = pool
        return pool

    def release_frontend(self, frontend_port: int) -> None:
        self.frontends.pop(frontend_port, None)

    def _backend_listener(self, port: int) -> ListeningSocket | None:
        listener = self.ports.get(port)
        if listener is None or listener.closed:
            return None
        return listener

    def _pick_backend(self, pool: BackendPool) -> int:
        """Next in-service backend with a bound listener, round robin.

        Selection only — no dispatch accounting.  Backends whose port has
        no listener at all are skipped (a tree mid-checkpoint); *orphaned*
        listeners are **not** skipped here, because the balancer's view is
        stale until a dispatch actually bounces — that discovery and the
        failover retry happen in :meth:`_route`.
        """
        candidates = pool.in_service()
        if candidates:
            for step in range(len(candidates)):
                port = candidates[(pool._rr + step) % len(candidates)]
                if self._backend_listener(port) is not None:
                    pool._rr = (pool._rr + step + 1) % len(candidates)
                    return port
        raise NoBackendAvailable(
            f"connection refused: no backend in service behind frontend "
            f"{pool.frontend_port}"
        )

    def _route(self, pool: BackendPool) -> int:
        """Resolve a frontend connect to a live backend, with failover.

        A pick that lands on an orphaned listener (owner crashed, port
        still in the balancer's view) marks that backend down and retries
        on the next live one, bounded by the pool's failover budget.
        """
        for _attempt in range(pool.failover_budget + 1):
            port = self._pick_backend(pool)
            listener = self._backend_listener(port)
            if listener is not None and not listener.orphaned:
                pool.dispatched[port] = pool.dispatched.get(port, 0) + 1
                telemetry.count("dispatch_total", port=port)
                telemetry.emit(
                    "dispatch", "balanced",
                    labels={"port": port}, frontend=pool.frontend_port,
                )
                return port
            pool.mark_down(port)
            pool.record_failover(port)
        raise NoBackendAvailable(
            f"connection refused: failover budget ({pool.failover_budget}) "
            f"exhausted behind frontend {pool.frontend_port}"
        )

    # ------------------------------------------------------------------
    # connection lifecycle

    def connect(self, port: int) -> Endpoint:
        """Open a connection to ``port``; returns the client endpoint.

        A frontend port resolves through its :class:`BackendPool` to a
        live backend listener first (the load-balancer hop).
        """
        pool = self.frontends.get(port)
        if pool is not None:
            port = self._route(pool)
        listener = self.ports.get(port)
        if listener is None or listener.closed:
            raise NetworkError(f"connection refused: port {port}")
        if listener.orphaned:
            raise NetworkError(
                f"connection refused: port {port} (no accepting process)"
            )
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        a = Endpoint(conn_id, "a")
        b = Endpoint(conn_id, "b")
        a.peer, b.peer = b, a
        conn = Connection(conn_id, a, b)
        self.connections[conn_id] = conn
        listener.backlog.append(conn)
        return a

    def repair_endpoint(self, conn_id: int, side: str, buffered: bytes) -> Endpoint:
        """TCP_REPAIR: re-attach ``side`` of connection ``conn_id``.

        The checkpointed receive buffer is reinstated; bytes the peer
        queued *while the process was frozen* are appended after it, so
        no data is lost or reordered.
        """
        conn = self.connections.get(conn_id)
        if conn is None:
            raise NetworkError(f"cannot repair: connection {conn_id} is gone")
        endpoint = conn.endpoint(side)
        arrived_while_frozen = bytes(endpoint.recv_buffer)
        endpoint.recv_buffer = bytearray(buffered) + bytearray(arrived_while_frozen)
        endpoint.closed = False
        return endpoint

    def gc(self) -> None:
        """Drop fully closed connections."""
        dead = [cid for cid, conn in self.connections.items() if not conn.alive]
        for cid in dead:
            del self.connections[cid]
