"""Generic member-pool balancing, shared by intra- and cross-host tiers.

The round-robin/drain/down/failover machinery originally grew inside
:class:`~repro.kernel.network.NetworkStack` for one kernel's backend
ports.  DynaMesh needs the *same* state machine one level up — spreading
whole requests over hosts (kernels) instead of ports — so the substrate
lives here, parameterized over two predicates the owner supplies:

* ``live(member)`` — the member could plausibly take a connection
  (a bound listener exists; a host has an in-service fleet).  Dead-at-
  pick members are *skipped silently*: a tree mid-checkpoint must not
  burn failover budget.
* ``healthy(member)`` — discovered truth at dispatch time (the
  listener is not orphaned; the host actually accepted).  A pick that
  fails this check is **marked down**, recorded as a failover, and
  retried within :attr:`MemberPool.failover_budget`.

Members are plain ints (backend ports intra-host, shard indices in the
mesh frontend).  :class:`~repro.kernel.network.BackendPool` subclasses
this with the port-specific validation and telemetry labels; the mesh
:class:`~repro.mesh.frontend.Frontend` instantiates it directly over
shard indices.
"""

from __future__ import annotations

from typing import Callable

from ..telemetry import trace


class NetworkError(Exception):
    """Host-level misuse of the network API."""


class NoBackendAvailable(NetworkError):
    """Every backend behind a frontend is drained, down, or dead.

    Distinct from a generic :class:`NetworkError` so balanced clients
    (and the workload driver) can tell "the whole pool is gone" apart
    from a single refused port.
    """


class MemberPool:
    """Round-robin selection with drain/down state and bounded failover.

    Selection (:meth:`pick`) and dispatch (:meth:`route`) are split the
    same way ``NetworkStack._pick_backend`` / ``_route`` always were:
    picking consults only the pool's *view* (in-service members that
    pass ``live``), while routing additionally verifies ``healthy`` and
    converts a stale pick into a recorded, budget-bounded failover.
    """

    def __init__(
        self,
        label: str,
        backends: list[int] | None = None,
        failover_budget: int = 1,
    ):
        #: human-readable identity used in refusal messages
        self.label = label
        self.backends: list[int] = []
        self.drained: set[int] = set()
        #: members marked unhealthy (discovered at dispatch, or by a
        #: supervisor taking one DOWN)
        self.down: set[int] = set()
        #: how many extra members one dispatch may try after landing on
        #: a dead one (0 = fail immediately)
        self.failover_budget = failover_budget
        #: dispatches per member (observability)
        self.dispatched: dict[int, int] = {}
        #: dispatches re-routed away from each dead member
        self.failovers: dict[int, int] = {}
        self._rr = 0
        for member in backends or []:
            self.add(member)

    # ------------------------------------------------------------------
    # membership

    def add(self, member: int) -> None:
        if member not in self.backends:
            self.backends.append(member)
            self.dispatched.setdefault(member, 0)

    def remove(self, member: int) -> None:
        if member in self.backends:
            self.backends.remove(member)
        self.drained.discard(member)
        self.down.discard(member)

    def _known(self, member: int) -> None:
        if member not in self.backends:
            raise NetworkError(
                f"port {member} is not a backend of this pool"
            )

    def drain(self, member: int) -> None:
        self._known(member)
        self.drained.add(member)

    def rejoin(self, member: int) -> None:
        self._known(member)
        self.drained.discard(member)
        self.down.discard(member)

    def mark_down(self, member: int) -> None:
        self._known(member)
        self.down.add(member)

    def mark_up(self, member: int) -> None:
        self._known(member)
        self.down.discard(member)

    def in_service(self) -> list[int]:
        """Members currently eligible for new dispatches."""
        return [
            member
            for member in self.backends
            if member not in self.drained and member not in self.down
        ]

    # ------------------------------------------------------------------
    # accounting hooks (subclasses add telemetry)

    def note_dispatch(self, member: int) -> None:
        self.dispatched[member] = self.dispatched.get(member, 0) + 1

    def note_failover(self, member: int) -> None:
        self.failovers[member] = self.failovers.get(member, 0) + 1

    @property
    def total_failovers(self) -> int:
        return sum(self.failovers.values())

    # ------------------------------------------------------------------
    # selection and routing

    def pick(self, live: Callable[[int], bool]) -> int:
        """Next in-service member passing ``live``, round robin.

        Selection only — no dispatch accounting.  Members failing
        ``live`` are skipped (a tree mid-checkpoint); *stale* members —
        live-looking but actually dead — are **not** filtered here,
        because the view is stale until a dispatch bounces; that
        discovery and the failover retry happen in :meth:`route`.
        """
        candidates = self.in_service()
        if candidates:
            for step in range(len(candidates)):
                member = candidates[(self._rr + step) % len(candidates)]
                if live(member):
                    self._rr = (self._rr + step + 1) % len(candidates)
                    return member
        raise NoBackendAvailable(
            f"connection refused: no backend in service behind {self.label}"
        )

    def route(
        self,
        live: Callable[[int], bool],
        healthy: Callable[[int], bool],
    ) -> int:
        """Resolve one dispatch to a healthy member, with failover.

        A pick that fails ``healthy`` (owner crashed, view still stale)
        marks that member down and retries on the next live one,
        bounded by :attr:`failover_budget`.
        """
        for _attempt in range(self.failover_budget + 1):
            member = self.pick(live)
            if healthy(member):
                self.note_dispatch(member)
                return member
            self.mark_down(member)
            self.note_failover(member)
            trace.note_member_failover()
        raise NoBackendAvailable(
            f"connection refused: failover budget ({self.failover_budget}) "
            f"exhausted behind {self.label}"
        )
