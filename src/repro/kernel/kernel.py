"""The kernel: process table, scheduler, virtual clock, host APIs.

The :class:`Kernel` owns everything a real OS would: the process table,
the filesystem, the network stack, the syscall table, and the CPU.  A
deterministic **virtual clock** advances with executed instructions and
syscall costs, so every latency the evaluation reports (service
interruption, checkpoint time) is a reproducible function of work done,
not wall time.

Host-side code (experiments, attack clients) interacts through:

* :meth:`register_binary` / :meth:`spawn` — stage and start guest
  programs;
* :meth:`connect` — open a TCP connection to a guest server, returning
  a :class:`HostSocket`;
* :meth:`run` / :meth:`run_until` — drive the scheduler;
* :meth:`freeze` / :meth:`thaw` — the CRIU seize/resume primitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from ..binfmt.self_format import SelfImage
from .cpu import CPU
from .filesystem import InMemoryFS
from .loader import Loader
from .memory import AddressSpace
from .network import Endpoint, NetworkStack, SocketDescriptor
from .process import Process, ProcessState
from .signals import PendingSignal, Signal
from .syscalls import SecurityEvent, SyscallTable


@dataclass
class KernelConfig:
    """Tunable costs of the virtual clock (all in virtual nanoseconds)."""

    instruction_cost_ns: int = 10_000     # 10 us per instruction
    syscall_cost_ns: int = 50_000         # extra cost of kernel entry
    signal_cost_ns: int = 100_000         # signal delivery overhead
    quantum: int = 100                    # instructions per scheduling slice


class Tracer(Protocol):
    """Anything that consumes basic-block events (see repro.tracing)."""

    def on_block(self, proc: Process, address: int, size: int) -> None: ...


class HostSocket:
    """Host side of a guest TCP connection (the remote client)."""

    def __init__(self, kernel: "Kernel", endpoint: Endpoint):
        self.kernel = kernel
        self.endpoint = endpoint

    @property
    def conn_id(self) -> int:
        return self.endpoint.conn_id

    def send(self, data: bytes | str) -> None:
        if isinstance(data, str):
            data = data.encode("utf-8")
        if self.endpoint.send(data) < 0:
            raise ConnectionError("peer closed")

    def recv_available(self) -> bytes:
        return self.endpoint.recv(len(self.endpoint.recv_buffer))

    def recv_until(
        self,
        delimiter: bytes = b"\n",
        max_instructions: int = 2_000_000,
    ) -> bytes:
        """Run the kernel until ``delimiter`` arrives (or EOF); return bytes."""
        self.kernel.run_until(
            lambda: delimiter in self.endpoint.recv_buffer
            or (self.endpoint.peer is None or self.endpoint.peer.closed),
            max_instructions=max_instructions,
        )
        buf = self.endpoint.recv_buffer
        index = buf.find(delimiter)
        if index < 0:
            return self.recv_available()
        return self.endpoint.recv(index + len(delimiter))

    def request(
        self,
        data: bytes | str,
        delimiter: bytes = b"\n",
        max_instructions: int = 2_000_000,
    ) -> bytes:
        """Send ``data`` and wait for a delimited reply."""
        self.send(data)
        return self.recv_until(delimiter, max_instructions)

    @property
    def closed_by_peer(self) -> bool:
        return self.endpoint.peer is None or self.endpoint.peer.closed

    def close(self) -> None:
        self.endpoint.close()


class Kernel:
    """A complete simulated machine."""

    def __init__(self, config: KernelConfig | None = None):
        self.config = config or KernelConfig()
        self.clock_ns = 0
        self.fs = InMemoryFS()
        self.net = NetworkStack()
        # the stack has no kernel reference; give it a clock reader so
        # balancer route resolution can open request-trace spans
        self.net.clock = lambda: self.clock_ns
        self.binaries: dict[str, SelfImage] = {}
        self.processes: dict[int, Process] = {}
        self._next_pid = 100
        self.syscalls = SyscallTable(self)
        self.cpu = CPU(self)
        self.loader = Loader(self)
        self.tracers: dict[int, Tracer] = {}
        self.security_log: list[SecurityEvent] = []

    # ------------------------------------------------------------------
    # binaries and processes

    def register_binary(self, image: SelfImage) -> None:
        """Install ``image`` into the kernel's binary registry."""
        self.binaries[image.name] = image

    def allocate_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def spawn(
        self,
        binary: str,
        argv: list[str] | None = None,
        pid: int | None = None,
        ppid: int = 0,
    ) -> Process:
        """Create and load a new process running ``binary``."""
        if pid is None:
            pid = self.allocate_pid()
        if pid in self.processes and self.processes[pid].alive:
            raise RuntimeError(f"pid {pid} already in use")
        proc = Process(pid, ppid, binary, AddressSpace())
        self.loader.load(proc, binary, argv if argv is not None else [binary])
        self.processes[pid] = proc
        return proc

    def fork(self, parent: Process) -> Process:
        """Clone ``parent``; the caller fixes up each side's ``r0``."""
        child = Process(
            self.allocate_pid(), parent.pid, parent.binary, parent.memory.clone()
        )
        child.regs = parent.regs.clone()
        child.fds = {fd: d.clone_for_fork() for fd, d in parent.fds.items()}
        child.next_fd = parent.next_fd
        child.sigactions = dict(parent.sigactions)
        child.modules = list(parent.modules)
        parent.children.append(child.pid)
        self.processes[child.pid] = child
        return child

    def terminate(
        self,
        proc: Process,
        exit_code: int | None = None,
        signal: Signal | None = None,
    ) -> None:
        """End ``proc`` (exit or fatal signal); notify the parent."""
        if not proc.alive:
            return
        proc.state = ProcessState.ZOMBIE
        proc.exit_code = exit_code
        proc.term_signal = signal
        self._close_fds(proc)
        parent = self.processes.get(proc.ppid)
        if parent is not None and parent.alive:
            self.post_signal(parent, PendingSignal(Signal.SIGCHLD))

    def _close_fds(self, proc: Process) -> None:
        for descriptor in proc.fds.values():
            if isinstance(descriptor, SocketDescriptor):
                if descriptor.endpoint is not None:
                    descriptor.endpoint.close()
                if descriptor.listener is not None and not self._listener_shared(
                    proc, descriptor
                ):
                    self.net.release_port(descriptor.listener.port)
        proc.fds.clear()

    def _listener_shared(self, proc: Process, sock: SocketDescriptor) -> bool:
        for other in self.processes.values():
            if other.pid == proc.pid or not other.alive:
                continue
            for descriptor in other.fds.values():
                if (
                    isinstance(descriptor, SocketDescriptor)
                    and descriptor.listener is sock.listener
                ):
                    return True
        return False

    def reap(self, zombie: Process) -> None:
        zombie.state = ProcessState.DEAD
        parent = self.processes.get(zombie.ppid)
        if parent is not None and zombie.pid in parent.children:
            parent.children.remove(zombie.pid)

    def kill_process(self, pid: int, signal: Signal = Signal.SIGKILL) -> None:
        proc = self.processes.get(pid)
        if proc is not None and proc.alive:
            self.post_signal(proc, PendingSignal(signal))

    def crash_process(self, pid: int) -> list[int]:
        """Abruptly kill ``pid`` and its whole subtree (power-cut SIGKILL).

        Unlike :meth:`terminate`, nothing gets a chance to clean up:
        established peers see EOF, but the tree's listening ports stay in
        the network table marked *orphaned* — exactly the stale state a
        load balancer sees after a backend dies, and what the fleet
        supervisor must detect and clear.  Returns the pids crashed.
        """
        proc = self.processes.get(pid)
        if proc is None or not proc.alive:
            return []
        crashed: list[int] = []
        for child_pid in list(proc.children):
            crashed += self.crash_process(child_pid)
        proc.state = ProcessState.ZOMBIE
        proc.exit_code = None
        proc.term_signal = Signal.SIGKILL
        for descriptor in proc.fds.values():
            if isinstance(descriptor, SocketDescriptor):
                if descriptor.endpoint is not None:
                    descriptor.endpoint.close()
                if descriptor.listener is not None and not self._listener_shared(
                    proc, descriptor
                ):
                    descriptor.listener.orphaned = True
        proc.fds.clear()
        crashed.append(pid)
        return crashed

    def post_signal(self, proc: Process, pending: PendingSignal) -> None:
        proc.pending_signals.append(pending)
        # signals interrupt blocking syscalls
        if proc.state is ProcessState.BLOCKED and pending.signal != Signal.SIGCHLD:
            proc.state = ProcessState.RUNNABLE
            proc.wake_predicate = None
            proc.wake_deadline = None

    # ------------------------------------------------------------------
    # freeze/thaw (CRIU seize)

    def freeze(self, pid: int) -> Process:
        proc = self._live(pid)
        proc.frozen_prior_state = proc.state  # type: ignore[attr-defined]
        proc.state = ProcessState.FROZEN
        return proc

    def thaw(self, pid: int) -> Process:
        proc = self._live(pid)
        if proc.state is not ProcessState.FROZEN:
            raise RuntimeError(f"pid {pid} is not frozen")
        prior = getattr(proc, "frozen_prior_state", ProcessState.RUNNABLE)
        proc.state = (
            ProcessState.RUNNABLE if prior is ProcessState.FROZEN else prior
        )
        if proc.state is ProcessState.BLOCKED and proc.wake_predicate is None:
            proc.state = ProcessState.RUNNABLE
        return proc

    def _live(self, pid: int) -> Process:
        proc = self.processes.get(pid)
        if proc is None or not proc.alive:
            raise RuntimeError(f"no live process with pid {pid}")
        return proc

    # ------------------------------------------------------------------
    # host network API

    def connect(self, port: int) -> HostSocket:
        """Open a host-side TCP connection to a guest server."""
        return HostSocket(self, self.net.connect(port))

    # ------------------------------------------------------------------
    # tracing and security log

    def attach_tracer(self, pid: int, tracer: Tracer) -> None:
        self.tracers[pid] = tracer

    def detach_tracer(self, pid: int) -> None:
        self.tracers.pop(pid, None)

    def log_security_event(self, pid: int, kind: str, detail: str) -> None:
        self.security_log.append(SecurityEvent(pid, kind, detail, self.clock_ns))

    # ------------------------------------------------------------------
    # scheduling

    def runnable_processes(self) -> list[Process]:
        return [
            p for p in self.processes.values() if p.state is ProcessState.RUNNABLE
        ]

    def run(
        self,
        max_instructions: int = 5_000_000,
        until: Callable[[], bool] | None = None,
        until_clock_ns: int | None = None,
    ) -> int:
        """Round-robin schedule until a condition or budget is reached.

        Returns the number of instructions executed.  Stops early when
        no process can make progress (all exited, frozen, or blocked on
        host input).
        """
        executed = 0
        quantum = self.config.quantum
        while executed < max_instructions:
            if until is not None and until():
                break
            if until_clock_ns is not None and self.clock_ns >= until_clock_ns:
                break
            for proc in list(self.processes.values()):
                proc.maybe_wake()
            runnable = self.runnable_processes()
            if not runnable:
                if not self._advance_clock_to_deadline(until_clock_ns):
                    break
                continue
            for proc in runnable:
                executed += self.cpu.run_quantum(proc, quantum)
                if until is not None and until():
                    return executed
                if until_clock_ns is not None and self.clock_ns >= until_clock_ns:
                    return executed
        return executed

    def _advance_clock_to_deadline(self, until_clock_ns: int | None) -> bool:
        """Fast-forward to the earliest sleep deadline; False if none."""
        deadlines = [
            p.wake_deadline
            for p in self.processes.values()
            if p.state is ProcessState.BLOCKED and p.wake_deadline is not None
        ]
        if not deadlines:
            return False
        target = min(deadlines)
        if until_clock_ns is not None:
            target = min(target, until_clock_ns)
        if target <= self.clock_ns:
            return False
        self.clock_ns = target
        return True

    def run_until(
        self, predicate: Callable[[], bool], max_instructions: int = 5_000_000
    ) -> bool:
        """Run until ``predicate`` is true; returns whether it fired."""
        self.run(max_instructions=max_instructions, until=predicate)
        return predicate()

    def run_until_quiescent(self, max_instructions: int = 2_000_000) -> bool:
        """Run until every process is blocked/frozen/dead.

        Profiling workflows call this before dumping coverage: a host
        client sees a server's reply *before* the server finishes its
        handler, so dumping immediately would attribute the handler's
        trailing blocks to the wrong phase.
        """
        executed = 0
        quantum = self.config.quantum
        while executed < max_instructions:
            for proc in list(self.processes.values()):
                proc.maybe_wake()
            runnable = self.runnable_processes()
            if not runnable:
                return True
            for proc in runnable:
                executed += self.cpu.run_quantum(proc, quantum)
        return not self.runnable_processes()

    def run_for(self, virtual_ns: int, max_instructions: int = 50_000_000) -> None:
        """Advance the virtual clock by ``virtual_ns``."""
        self.run(
            max_instructions=max_instructions,
            until_clock_ns=self.clock_ns + virtual_ns,
        )

    # ------------------------------------------------------------------

    def stdout_of(self, pid: int) -> str:
        return self.processes[pid].stdout_text()

    def process_alive(self, pid: int) -> bool:
        proc = self.processes.get(pid)
        return proc is not None and proc.alive
