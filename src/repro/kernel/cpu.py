"""The VM64 CPU: fetch/decode/execute with signal delivery.

Key fidelity points for DynaCut:

* ``int3`` raises ``SIGTRAP`` with the saved ``rip`` pointing *after*
  the one-byte instruction (handlers recover the trap site as
  ``rip - 1``, or read it directly from ``r3``);
* fetching unmapped/non-executable memory raises ``SIGSEGV``; decoding
  wiped (garbage) bytes raises ``SIGILL`` — both are what code-reuse
  attacks hit after DynaCut removes code;
* a decode cache keyed on the address space's ``code_epoch`` keeps
  interpretation fast while guaranteeing that patched bytes (int3
  insertion / feature restore) take effect immediately;
* the CPU reports basic-block entries to an attached tracer with
  ``<block address, block size>`` granularity — the drcov trace format.

Execution dispatch is a per-mnemonic method table; decode-cache entries
carry the bound handler so the hot path is one dict probe plus one
call, with no string comparisons.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..isa.encoding import DecodeError, decode
from ..isa.instructions import BLOCK_TERMINATORS
from ..telemetry import trace
from .memory import MemoryFault, PAGE_SIZE
from .process import Process, SP
from .signals import (
    FRAME_LT,
    FRAME_REGS,
    FRAME_RIP,
    FRAME_SIZE,
    FRAME_ZF,
    PendingSignal,
    Signal,
    UNCATCHABLE,
)
from .syscalls import Block

if TYPE_CHECKING:
    from .kernel import Kernel

_MASK64 = (1 << 64) - 1
_SIGN_BIT = 1 << 63
#: longest encoded instruction (movi: opcode + reg + imm64)
_MAX_INSTRUCTION = 10


def _signed(value: int) -> int:
    return value - (1 << 64) if value & _SIGN_BIT else value


def _u64(value: int) -> bytes:
    return (value & _MASK64).to_bytes(8, "little")


class CPU:
    """Interprets VM64 instructions for every process in a kernel."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._handlers = {
            "movi": self._op_movi,
            "mov": self._op_mov,
            "ld8": self._op_ld8,
            "ld64": self._op_ld64,
            "st8": self._op_st8,
            "st64": self._op_st64,
            "lea": self._op_lea,
            "add": self._op_add,
            "sub": self._op_sub,
            "mul": self._op_mul,
            "div": self._op_div,
            "mod": self._op_mod,
            "and": self._op_and,
            "or": self._op_or,
            "xor": self._op_xor,
            "shl": self._op_shl,
            "shr": self._op_shr,
            "addi": self._op_addi,
            "subi": self._op_subi,
            "muli": self._op_muli,
            "andi": self._op_andi,
            "ori": self._op_ori,
            "xori": self._op_xori,
            "shli": self._op_shli,
            "shri": self._op_shri,
            "neg": self._op_neg,
            "not": self._op_not,
            "cmp": self._op_cmp,
            "cmpi": self._op_cmpi,
            "jmp": self._op_jmp,
            "je": self._op_je,
            "jne": self._op_jne,
            "jl": self._op_jl,
            "jle": self._op_jle,
            "jg": self._op_jg,
            "jge": self._op_jge,
            "jmpr": self._op_jmpr,
            "call": self._op_call,
            "callr": self._op_callr,
            "ret": self._op_ret,
            "push": self._op_push,
            "pop": self._op_pop,
            "syscall": self._op_syscall,
            "nop": self._op_nop,
            "int3": self._op_int3,
            "hlt": self._op_hlt,
        }

    # ------------------------------------------------------------------
    # stepping

    def step(self, proc: Process) -> None:
        """Run one instruction (or deliver one pending signal)."""
        if proc.pending_signals:
            self._deliver_signal(proc)
            return

        rip = proc.regs.rip
        memory = proc.memory
        cache = memory.decode_cache
        entry = cache.get(rip)
        if entry is not None and entry[0] == memory.code_epoch:
            __, handler, operands, length, terminates = entry
        else:
            if entry is not None:
                # epoch moved: all cached decodes are suspect
                cache.clear()
            try:
                raw = memory.fetch(rip, _MAX_INSTRUCTION)
            except MemoryFault as fault:
                self._fault(proc, Signal.SIGSEGV, fault.address)
                return
            try:
                instruction = decode(raw)
            except DecodeError:
                self._fault(proc, Signal.SIGILL, rip)
                return
            # the fetch above over-reads; verify the actual length is
            # executable (a short tail at a VMA boundary decodes fine)
            length = instruction.length
            if length < _MAX_INSTRUCTION:
                try:
                    memory.fetch(rip, length)
                except MemoryFault as fault:
                    self._fault(proc, Signal.SIGSEGV, fault.address)
                    return
            mnemonic = instruction.mnemonic
            handler = self._handlers[mnemonic]
            operands = instruction.operands
            terminates = mnemonic in BLOCK_TERMINATORS
            cache[rip] = (
                memory.code_epoch, handler, operands, length, terminates,
            )

        if proc.block_start is None:
            proc.block_start = rip

        self.kernel.clock_ns += self.kernel.config.instruction_cost_ns
        proc.instructions_retired += 1

        end = rip + length
        proc.regs.rip = end  # default fall-through; branches overwrite
        try:
            handler(proc, operands, rip, end)
        except MemoryFault as fault:
            self._fault(proc, Signal.SIGSEGV, fault.address)
            return

        if terminates:
            self._emit_block(proc, end)

    def run_quantum(self, proc: Process, budget: int) -> int:
        """Run up to ``budget`` steps of ``proc``; returns steps taken.

        The scheduler's fast path: identical semantics to calling
        :meth:`step` in a loop, with the per-instruction lookups
        (registers, decode cache, clock cost) hoisted out of the loop.
        """
        from .process import ProcessState

        executed = 0
        kernel = self.kernel
        cost = kernel.config.instruction_cost_ns
        regs = proc.regs
        memory = proc.memory
        cache = memory.decode_cache
        gpr_state = ProcessState.RUNNABLE
        while executed < budget and proc.state is gpr_state:
            if proc.pending_signals:
                self._deliver_signal(proc)
                executed += 1
                continue
            rip = regs.rip
            entry = cache.get(rip)
            if entry is None or entry[0] != memory.code_epoch:
                self.step(proc)      # slow path: decode (and cache) first
                executed += 1
                continue
            __, handler, operands, length, terminates = entry
            if proc.block_start is None:
                proc.block_start = rip
            kernel.clock_ns += cost
            proc.instructions_retired += 1
            end = rip + length
            regs.rip = end
            try:
                handler(proc, operands, rip, end)
            except MemoryFault as fault:
                self._fault(proc, Signal.SIGSEGV, fault.address)
                executed += 1
                continue
            if terminates:
                self._emit_block(proc, end)
            executed += 1
        return executed

    # ------------------------------------------------------------------
    # tracing support

    def _emit_block(self, proc: Process, block_end: int) -> None:
        start = proc.block_start
        proc.block_start = None
        if start is None:
            return
        tracer = self.kernel.tracers.get(proc.pid)
        if tracer is not None and block_end > start:
            tracer.on_block(proc, start, block_end - start)

    # ------------------------------------------------------------------
    # faults and signals

    def _fault(self, proc: Process, signal: Signal, address: int) -> None:
        """Post a synchronous fault; ``rip`` stays at the faulting site."""
        self._emit_block(proc, proc.regs.rip)
        proc.pending_signals.append(PendingSignal(signal, address))

    def _trap(self, proc: Process, address: int) -> None:
        """int3: rip has advanced past the trap; post SIGTRAP."""
        proc.pending_signals.append(PendingSignal(Signal.SIGTRAP, address))

    def _deliver_signal(self, proc: Process) -> None:
        pending = proc.pending_signals.popleft()
        signal = pending.signal
        action = proc.sigactions.get(signal)
        if signal in UNCATCHABLE:
            action = None
        if action is None:
            if signal in (Signal.SIGCHLD, Signal.SIGUSR1):
                return  # ignored by default
            self.kernel.terminate(proc, signal=signal)
            return

        # close the current (partial) trace block at the interruption point
        self._emit_block(proc, proc.regs.rip)

        if signal is Signal.SIGTRAP:
            # open a per-request trap window: delivery (incl. the frame
            # cost added below) through the handler's rt_sigreturn
            trace.note_trap_delivered(
                proc.pid, self.kernel.clock_ns, pending.fault_address
            )

        regs = proc.regs
        new_sp = (regs.gpr[SP] - (8 + FRAME_SIZE)) & ~0xF
        frame = new_sp + 8
        try:
            memory = proc.memory
            memory.write_raw(new_sp, _u64(action.restorer))
            memory.write_raw(frame + FRAME_RIP, _u64(regs.rip))
            memory.write_raw(frame + FRAME_ZF, _u64(int(regs.zf)))
            memory.write_raw(frame + FRAME_LT, _u64(int(regs.lt)))
            for index in range(16):
                memory.write_raw(frame + FRAME_REGS + 8 * index, _u64(regs.gpr[index]))
        except MemoryFault:
            self.kernel.terminate(proc, signal=Signal.SIGSEGV)
            return
        regs.gpr[SP] = new_sp
        regs.gpr[1] = int(signal)
        regs.gpr[2] = frame
        regs.gpr[3] = pending.fault_address
        regs.rip = action.handler
        self.kernel.clock_ns += self.kernel.config.signal_cost_ns

    # ------------------------------------------------------------------
    # data movement

    def _op_movi(self, proc, ops, rip, end):
        proc.regs.gpr[ops[0]] = ops[1] & _MASK64

    def _op_mov(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = gpr[ops[1]]

    def _op_ld8(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = proc.memory.read((gpr[ops[1]] + ops[2]) & _MASK64, 1)[0]

    def _op_ld64(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        data = proc.memory.read((gpr[ops[1]] + ops[2]) & _MASK64, 8)
        gpr[ops[0]] = int.from_bytes(data, "little")

    def _op_st8(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        proc.memory.write(
            (gpr[ops[0]] + ops[2]) & _MASK64, bytes([gpr[ops[1]] & 0xFF])
        )

    def _op_st64(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        proc.memory.write((gpr[ops[0]] + ops[2]) & _MASK64, _u64(gpr[ops[1]]))

    def _op_lea(self, proc, ops, rip, end):
        proc.regs.gpr[ops[0]] = (end + ops[1]) & _MASK64

    # ------------------------------------------------------------------
    # arithmetic / logic

    def _op_add(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = (gpr[ops[0]] + gpr[ops[1]]) & _MASK64

    def _op_sub(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = (gpr[ops[0]] - gpr[ops[1]]) & _MASK64

    def _op_mul(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = (gpr[ops[0]] * gpr[ops[1]]) & _MASK64

    def _divmod(self, proc, ops, rip, want_mod: bool):
        gpr = proc.regs.gpr
        divisor = _signed(gpr[ops[1]])
        if divisor == 0:
            proc.regs.rip = rip  # fault at the div
            self._fault(proc, Signal.SIGFPE, rip)
            return
        dividend = _signed(gpr[ops[0]])
        quotient = int(dividend / divisor)  # C-style truncation
        if want_mod:
            gpr[ops[0]] = (dividend - quotient * divisor) & _MASK64
        else:
            gpr[ops[0]] = quotient & _MASK64

    def _op_div(self, proc, ops, rip, end):
        self._divmod(proc, ops, rip, want_mod=False)

    def _op_mod(self, proc, ops, rip, end):
        self._divmod(proc, ops, rip, want_mod=True)

    def _op_and(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] &= gpr[ops[1]]

    def _op_or(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] |= gpr[ops[1]]

    def _op_xor(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] ^= gpr[ops[1]]

    def _op_shl(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = (gpr[ops[0]] << (gpr[ops[1]] & 63)) & _MASK64

    def _op_shr(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = gpr[ops[0]] >> (gpr[ops[1]] & 63)

    def _op_addi(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = (gpr[ops[0]] + ops[1]) & _MASK64

    def _op_subi(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = (gpr[ops[0]] - ops[1]) & _MASK64

    def _op_muli(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = (gpr[ops[0]] * ops[1]) & _MASK64

    def _op_andi(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] &= ops[1] & _MASK64

    def _op_ori(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] |= ops[1] & _MASK64

    def _op_xori(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] ^= ops[1] & _MASK64

    def _op_shli(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = (gpr[ops[0]] << (ops[1] & 63)) & _MASK64

    def _op_shri(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = gpr[ops[0]] >> (ops[1] & 63)

    def _op_neg(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = (-gpr[ops[0]]) & _MASK64

    def _op_not(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        gpr[ops[0]] = (~gpr[ops[0]]) & _MASK64

    # ------------------------------------------------------------------
    # compare and branch

    def _op_cmp(self, proc, ops, rip, end):
        gpr = proc.regs.gpr
        a, b = _signed(gpr[ops[0]]), _signed(gpr[ops[1]])
        proc.regs.zf = a == b
        proc.regs.lt = a < b

    def _op_cmpi(self, proc, ops, rip, end):
        a = _signed(proc.regs.gpr[ops[0]])
        proc.regs.zf = a == ops[1]
        proc.regs.lt = a < ops[1]

    def _op_jmp(self, proc, ops, rip, end):
        proc.regs.rip = (end + ops[0]) & _MASK64

    def _op_je(self, proc, ops, rip, end):
        if proc.regs.zf:
            proc.regs.rip = (end + ops[0]) & _MASK64

    def _op_jne(self, proc, ops, rip, end):
        if not proc.regs.zf:
            proc.regs.rip = (end + ops[0]) & _MASK64

    def _op_jl(self, proc, ops, rip, end):
        if proc.regs.lt:
            proc.regs.rip = (end + ops[0]) & _MASK64

    def _op_jle(self, proc, ops, rip, end):
        regs = proc.regs
        if regs.lt or regs.zf:
            regs.rip = (end + ops[0]) & _MASK64

    def _op_jg(self, proc, ops, rip, end):
        regs = proc.regs
        if not (regs.lt or regs.zf):
            regs.rip = (end + ops[0]) & _MASK64

    def _op_jge(self, proc, ops, rip, end):
        if not proc.regs.lt:
            proc.regs.rip = (end + ops[0]) & _MASK64

    def _op_jmpr(self, proc, ops, rip, end):
        proc.regs.rip = proc.regs.gpr[ops[0]]

    def _op_call(self, proc, ops, rip, end):
        self._push(proc, end)
        proc.regs.rip = (end + ops[0]) & _MASK64

    def _op_callr(self, proc, ops, rip, end):
        self._push(proc, end)
        proc.regs.rip = proc.regs.gpr[ops[0]]

    def _op_ret(self, proc, ops, rip, end):
        proc.regs.rip = self._pop(proc)

    # ------------------------------------------------------------------
    # stack and system

    def _op_push(self, proc, ops, rip, end):
        self._push(proc, proc.regs.gpr[ops[0]])

    def _op_pop(self, proc, ops, rip, end):
        proc.regs.gpr[ops[0]] = self._pop(proc)

    def _op_syscall(self, proc, ops, rip, end):
        self._syscall(proc, rip)

    def _op_nop(self, proc, ops, rip, end):
        pass

    def _op_int3(self, proc, ops, rip, end):
        self._trap(proc, rip)

    def _op_hlt(self, proc, ops, rip, end):
        # privileged on x86; user-mode execution faults
        proc.regs.rip = rip
        self._fault(proc, Signal.SIGSEGV, rip)

    # ------------------------------------------------------------------

    def _push(self, proc: Process, value: int) -> None:
        proc.regs.gpr[SP] = (proc.regs.gpr[SP] - 8) & _MASK64
        proc.memory.write(proc.regs.gpr[SP], _u64(value))

    def _pop(self, proc: Process) -> int:
        value = int.from_bytes(proc.memory.read(proc.regs.gpr[SP], 8), "little")
        proc.regs.gpr[SP] = (proc.regs.gpr[SP] + 8) & _MASK64
        return value

    def _syscall(self, proc: Process, rip: int) -> None:
        self.kernel.clock_ns += self.kernel.config.syscall_cost_ns
        result = self.kernel.syscalls.dispatch(proc)
        if result is None:
            return  # exit / sigreturn / SIGSYS changed control state
        if isinstance(result, Block):
            # restartable: rewind to the syscall instruction and sleep
            proc.regs.rip = rip
            proc.block(result.predicate)
            proc.wake_deadline = result.deadline
            return
        proc.regs.gpr[0] = result & _MASK64


# page-size sanity: sigframes must fit comfortably within one page
assert FRAME_SIZE + 16 < PAGE_SIZE
