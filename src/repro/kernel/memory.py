"""Paged virtual address spaces with VMA bookkeeping.

The memory model mirrors what CRIU sees through ``/proc/pid/maps`` and
``/proc/pid/pagemap``:

* an :class:`AddressSpace` is a sparse set of 4 KiB pages plus a sorted
  list of :class:`VMA` regions carrying permissions and (optionally)
  file-backing metadata;
* permission checks distinguish read/write/execute, so executing an
  unmapped or non-executable address faults exactly like on Linux;
* writes that touch executable pages bump ``code_epoch`` so the CPU's
  decode cache is invalidated — this is what makes an ``int3`` patched
  into a restored image take effect immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

PAGE_SIZE = 4096
PAGE_SHIFT = 12


class MemoryFault(Exception):
    """An access violation; the kernel turns this into SIGSEGV."""

    def __init__(self, address: int, access: str, reason: str):
        super().__init__(f"{access} fault at {address:#x}: {reason}")
        self.address = address
        self.access = access
        self.reason = reason


@dataclass(frozen=True)
class FileBacking:
    """File-backing metadata for a VMA (the ``/proc/maps`` file column)."""

    path: str          # binary or library name in the kernel binary registry
    offset: int        # offset of the VMA start within that file's image
    private: bool = True


@dataclass
class VMA:
    """A virtual memory area: ``[start, end)`` with permissions."""

    start: int
    end: int
    perms: str                      # "rwx" subset, e.g. "r-x"
    backing: FileBacking | None = None
    tag: str = ""                   # human-readable label ("stack", "[heap]")

    def __post_init__(self) -> None:
        if self.start % PAGE_SIZE or self.end % PAGE_SIZE:
            raise ValueError(
                f"VMA [{self.start:#x}, {self.end:#x}) is not page aligned"
            )
        if self.end <= self.start:
            raise ValueError("empty VMA")

    @property
    def size(self) -> int:
        return self.end - self.start

    @property
    def readable(self) -> bool:
        return "r" in self.perms

    @property
    def writable(self) -> bool:
        return "w" in self.perms

    @property
    def executable(self) -> bool:
        return "x" in self.perms

    @property
    def is_file_private(self) -> bool:
        return self.backing is not None and self.backing.private

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def overlaps(self, start: int, end: int) -> bool:
        return self.start < end and start < self.end

    def describe(self) -> str:
        backing = self.backing.path if self.backing else "anon"
        label = f" {self.tag}" if self.tag else ""
        return f"{self.start:#014x}-{self.end:#014x} {self.perms} {backing}{label}"


@dataclass
class AddressSpace:
    """A process's virtual memory."""

    pages: dict[int, bytearray] = field(default_factory=dict)
    vmas: list[VMA] = field(default_factory=list)
    #: bumped whenever executable memory changes; CPUs key decode caches on it
    code_epoch: int = 0
    #: CPU decode cache: address -> (code_epoch, DecodedInstruction); never
    #: serialized or forked — each address space starts with a cold cache
    decode_cache: dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    # VMA management

    def find_vma(self, address: int) -> VMA | None:
        for vma in self.vmas:
            if vma.contains(address):
                return vma
        return None

    def mmap(
        self,
        start: int,
        size: int,
        perms: str,
        backing: FileBacking | None = None,
        tag: str = "",
    ) -> VMA:
        """Map ``[start, start+size)`` (page-rounded); pages start zeroed."""
        end = start + _page_round_up(size)
        if start % PAGE_SIZE:
            raise ValueError(f"mmap start {start:#x} not page aligned")
        for vma in self.vmas:
            if vma.overlaps(start, end):
                raise MemoryFault(start, "map", f"overlaps {vma.describe()}")
        vma = VMA(start, end, perms, backing, tag)
        self.vmas.append(vma)
        self.vmas.sort(key=lambda v: v.start)
        for index in range(start >> PAGE_SHIFT, end >> PAGE_SHIFT):
            self.pages.setdefault(index, bytearray(PAGE_SIZE))
        if "x" in perms:
            self.code_epoch += 1
        return vma

    def munmap(self, start: int, size: int) -> None:
        """Unmap ``[start, start+size)``; splits partially covered VMAs."""
        end = start + _page_round_up(size)
        if start % PAGE_SIZE:
            raise ValueError(f"munmap start {start:#x} not page aligned")
        touched_exec = False
        new_vmas: list[VMA] = []
        for vma in self.vmas:
            if not vma.overlaps(start, end):
                new_vmas.append(vma)
                continue
            touched_exec = touched_exec or vma.executable
            if vma.start < start:
                new_vmas.append(replace(vma, end=start))
            if vma.end > end:
                tail_backing = vma.backing
                if tail_backing is not None:
                    tail_backing = replace(
                        tail_backing, offset=tail_backing.offset + (end - vma.start)
                    )
                new_vmas.append(replace(vma, start=end, backing=tail_backing))
        self.vmas = sorted(new_vmas, key=lambda v: v.start)
        for index in range(start >> PAGE_SHIFT, end >> PAGE_SHIFT):
            if not self._page_mapped(index):
                self.pages.pop(index, None)
        if touched_exec:
            self.code_epoch += 1

    def mprotect(self, start: int, size: int, perms: str) -> None:
        """Change permissions on ``[start, start+size)``."""
        end = start + _page_round_up(size)
        updated: list[VMA] = []
        for vma in self.vmas:
            if not vma.overlaps(start, end):
                updated.append(vma)
                continue
            if vma.start < start:
                updated.append(replace(vma, end=start))
            mid_start = max(vma.start, start)
            mid_end = min(vma.end, end)
            mid_backing = vma.backing
            if mid_backing is not None and mid_start > vma.start:
                mid_backing = replace(
                    mid_backing, offset=mid_backing.offset + (mid_start - vma.start)
                )
            updated.append(
                VMA(mid_start, mid_end, perms, mid_backing, vma.tag)
            )
            if vma.end > end:
                tail_backing = vma.backing
                if tail_backing is not None:
                    tail_backing = replace(
                        tail_backing, offset=tail_backing.offset + (end - vma.start)
                    )
                updated.append(replace(vma, start=end, backing=tail_backing))
        self.vmas = sorted(updated, key=lambda v: v.start)
        self.code_epoch += 1

    def _page_mapped(self, index: int) -> bool:
        address = index << PAGE_SHIFT
        return any(vma.contains(address) for vma in self.vmas)

    def find_free_range(self, size: int, hint: int = 0x7F00_0000_0000) -> int:
        """Find an unmapped, page-aligned range of ``size`` bytes."""
        size = _page_round_up(size)
        candidate = hint
        for vma in sorted(self.vmas, key=lambda v: v.start):
            if candidate + size <= vma.start:
                return candidate
            if vma.end > candidate:
                candidate = vma.end
        return candidate

    # ------------------------------------------------------------------
    # checked access (guest loads/stores)

    def read(self, address: int, size: int) -> bytes:
        self._check(address, size, "read")
        return self._read_raw(address, size)

    def write(self, address: int, data: bytes) -> None:
        self._check(address, len(data), "write")
        self._write_raw(address, data)
        if self._range_executable(address, len(data)):
            self.code_epoch += 1

    def fetch(self, address: int, size: int) -> bytes:
        """Instruction fetch: requires execute permission."""
        vma = self.find_vma(address)
        if vma is None:
            raise MemoryFault(address, "exec", "unmapped")
        if not vma.executable:
            raise MemoryFault(address, "exec", f"not executable ({vma.perms})")
        # a fetch may straddle into the next VMA; validate the tail too
        if address + size > vma.end:
            self._check_exec(vma.end, address + size - vma.end)
        return self._read_raw(address, size)

    def read_cstring(self, address: int, limit: int = 65536) -> bytes:
        """Read a NUL-terminated string (guest ``char*``)."""
        out = bytearray()
        cursor = address
        while len(out) < limit:
            chunk = self.read(cursor, min(256, limit - len(out)))
            nul = chunk.find(b"\x00")
            if nul >= 0:
                out += chunk[:nul]
                return bytes(out)
            out += chunk
            cursor += len(chunk)
        raise MemoryFault(address, "read", "unterminated string")

    def _check(self, address: int, size: int, access: str) -> None:
        cursor = address
        end = address + size
        while cursor < end:
            vma = self.find_vma(cursor)
            if vma is None:
                raise MemoryFault(cursor, access, "unmapped")
            needed = "r" if access == "read" else "w"
            if needed not in vma.perms:
                raise MemoryFault(cursor, access, f"permission ({vma.perms})")
            cursor = vma.end

    def _check_exec(self, address: int, size: int) -> None:
        cursor = address
        end = address + size
        while cursor < end:
            vma = self.find_vma(cursor)
            if vma is None:
                raise MemoryFault(cursor, "exec", "unmapped")
            if not vma.executable:
                raise MemoryFault(cursor, "exec", f"not executable ({vma.perms})")
            cursor = vma.end

    def _range_executable(self, address: int, size: int) -> bool:
        for vma in self.vmas:
            if vma.executable and vma.overlaps(address, address + size):
                return True
        return False

    # ------------------------------------------------------------------
    # raw access (kernel/loader/checkpoint: no permission checks)

    def _read_raw(self, address: int, size: int) -> bytes:
        out = bytearray()
        cursor = address
        remaining = size
        while remaining:
            index = cursor >> PAGE_SHIFT
            offset = cursor & (PAGE_SIZE - 1)
            take = min(remaining, PAGE_SIZE - offset)
            page = self.pages.get(index)
            if page is None:
                raise MemoryFault(cursor, "read", "page not present")
            out += page[offset:offset + take]
            cursor += take
            remaining -= take
        return bytes(out)

    def _write_raw(self, address: int, data: bytes) -> None:
        cursor = address
        pos = 0
        while pos < len(data):
            index = cursor >> PAGE_SHIFT
            offset = cursor & (PAGE_SIZE - 1)
            take = min(len(data) - pos, PAGE_SIZE - offset)
            page = self.pages.get(index)
            if page is None:
                raise MemoryFault(cursor, "write", "page not present")
            page[offset:offset + take] = data[pos:pos + take]
            cursor += take
            pos += take

    def write_raw(self, address: int, data: bytes) -> None:
        """Kernel-privileged write (loader, restore, ptrace-style pokes)."""
        self._write_raw(address, data)
        if self._range_executable(address, len(data)):
            self.code_epoch += 1

    def read_raw(self, address: int, size: int) -> bytes:
        """Kernel-privileged read."""
        return self._read_raw(address, size)

    # ------------------------------------------------------------------
    # whole-space operations

    def clone(self) -> "AddressSpace":
        """Deep copy (fork)."""
        return AddressSpace(
            pages={index: bytearray(page) for index, page in self.pages.items()},
            vmas=[replace(vma) for vma in self.vmas],
            code_epoch=self.code_epoch,
        )

    def total_mapped(self) -> int:
        return sum(vma.size for vma in self.vmas)

    def describe_maps(self) -> str:
        """A ``/proc/pid/maps``-style listing."""
        return "\n".join(vma.describe() for vma in self.vmas)


def _page_round_up(value: int) -> int:
    return -(-value // PAGE_SIZE) * PAGE_SIZE
