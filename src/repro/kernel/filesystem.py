"""In-memory filesystem shared by all guest processes.

Provides regular files (configs, served web content, WebDAV uploads)
plus a ``/tmp`` subtree standing in for the tmpfs the paper uses to
store CRIU images.  The host-side API (:meth:`InMemoryFS.write_file`
etc.) is how experiments stage configs and inspect uploads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import faults
from .process import Descriptor

# open(2)-style flags
O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_TRUNC = 0x200
O_APPEND = 0x400


class FileSystemError(Exception):
    """Host-level filesystem misuse (guest errors become -1 returns)."""


@dataclass
class InMemoryFS:
    """Flat path -> bytes store with POSIX-flavoured open semantics."""

    files: dict[str, bytearray] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # host-side API

    def write_file(self, path: str, data: bytes | str) -> None:
        if isinstance(data, str):
            data = data.encode("utf-8")
        fault = faults.check("fs.write_file", detail=path)
        if fault is not None:
            # a torn write persists a truncated prefix (the crashed-
            # mid-write shape); a plain fault persists nothing
            if fault.fraction is not None:
                self.files[_norm(path)] = bytearray(
                    data[: fault.keep_bytes(len(data))]
                )
            raise fault
        self.files[_norm(path)] = bytearray(data)

    def read_file(self, path: str) -> bytes:
        path = _norm(path)
        if path not in self.files:
            raise FileSystemError(f"no such file: {path}")
        return bytes(self.files[path])

    def exists(self, path: str) -> bool:
        return _norm(path) in self.files

    def unlink(self, path: str) -> bool:
        return self.files.pop(_norm(path), None) is not None

    def listdir(self, prefix: str) -> list[str]:
        prefix = _norm(prefix).rstrip("/") + "/"
        return sorted(p for p in self.files if p.startswith(prefix))

    # ------------------------------------------------------------------
    # guest-side open

    def open(self, path: str, flags: int) -> "FileHandle | None":
        path = _norm(path)
        exists = path in self.files
        if not exists:
            if not flags & O_CREAT:
                return None
            self.files[path] = bytearray()
        elif flags & O_TRUNC and flags & (O_WRONLY | O_RDWR):
            self.files[path] = bytearray()
        handle = FileHandle(self, path, flags)
        if flags & O_APPEND:
            handle.offset = len(self.files[path])
        return handle


@dataclass
class FileHandle(Descriptor):
    """An open regular file."""

    fs: InMemoryFS
    path: str
    flags: int
    offset: int = 0

    @property
    def _writable(self) -> bool:
        return bool(self.flags & (O_WRONLY | O_RDWR))

    @property
    def _readable(self) -> bool:
        return (self.flags & 0x3) in (O_RDONLY, O_RDWR)

    def read(self, size: int) -> bytes | None:
        if not self._readable:
            return None
        data = self.fs.files.get(self.path)
        if data is None:
            return None
        chunk = bytes(data[self.offset:self.offset + size])
        self.offset += len(chunk)
        return chunk

    def write(self, data: bytes) -> int | None:
        if not self._writable:
            return None
        buf = self.fs.files.get(self.path)
        if buf is None:
            return None
        end = self.offset + len(data)
        if end > len(buf):
            buf += b"\x00" * (end - len(buf))
        buf[self.offset:end] = data
        self.offset = end
        return len(data)


def _norm(path: str) -> str:
    if not path.startswith("/"):
        path = "/" + path
    while "//" in path:
        path = path.replace("//", "/")
    return path
