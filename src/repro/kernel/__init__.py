"""Simulated OS kernel: memory, processes, signals, syscalls, CPU, network."""

from .memory import AddressSpace, FileBacking, MemoryFault, PAGE_SIZE, VMA
from .process import (
    FP,
    LoadedModule,
    Process,
    ProcessState,
    RegisterFile,
    SP,
)
from .signals import (
    FRAME_LT,
    FRAME_REGS,
    FRAME_RIP,
    FRAME_SIZE,
    FRAME_ZF,
    PendingSignal,
    SigAction,
    Signal,
)
from .filesystem import (
    FileHandle,
    InMemoryFS,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
)
from .network import (
    BackendPool,
    Connection,
    Endpoint,
    ListeningSocket,
    NetworkError,
    NetworkStack,
    SocketDescriptor,
)
from .syscalls import Block, PROT_EXEC, PROT_READ, PROT_WRITE, SecurityEvent, Sys
from .loader import Loader, LoaderError
from .cpu import CPU
from .kernel import HostSocket, Kernel, KernelConfig

__all__ = [
    "AddressSpace",
    "BackendPool",
    "Block",
    "CPU",
    "Connection",
    "Endpoint",
    "FP",
    "FRAME_LT",
    "FRAME_REGS",
    "FRAME_RIP",
    "FRAME_SIZE",
    "FRAME_ZF",
    "FileBacking",
    "FileHandle",
    "HostSocket",
    "InMemoryFS",
    "Kernel",
    "KernelConfig",
    "ListeningSocket",
    "LoadedModule",
    "Loader",
    "LoaderError",
    "MemoryFault",
    "NetworkError",
    "NetworkStack",
    "O_APPEND",
    "O_CREAT",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
    "PAGE_SIZE",
    "PROT_EXEC",
    "PROT_READ",
    "PROT_WRITE",
    "PendingSignal",
    "Process",
    "ProcessState",
    "RegisterFile",
    "SP",
    "SecurityEvent",
    "SigAction",
    "Signal",
    "SocketDescriptor",
    "Sys",
    "VMA",
]
