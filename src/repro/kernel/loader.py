"""Program loader and dynamic linker (the ELF loader + ld.so analogue).

Maps a SELF executable and its needed shared libraries into a fresh
address space, applies load-time relocations (``RELATIVE`` rebasing for
position-independent objects, ``GLOB_DAT`` import resolution into GOT
slots and direct sites), builds the initial stack with ``argc``/
``argv``, and points ``rip`` at the entry symbol.

VMAs created here carry :class:`~repro.kernel.memory.FileBacking`
metadata naming the binary image and the in-image offset — the same
information CRIU reads from ``/proc/pid/maps`` to decide which pages
need dumping and how file-backed pages are reconstructed at restore.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from ..binfmt.self_format import (
    DynRelocType,
    ImageKind,
    PAGE_SIZE,
    SelfImage,
    page_align,
)
from .memory import AddressSpace, FileBacking
from .process import LoadedModule, Process, SP

if TYPE_CHECKING:
    from .kernel import Kernel

#: Where shared libraries are mapped, spaced widely apart.
LIBRARY_REGION = 0x7F00_0000_0000
LIBRARY_STRIDE = 0x1000_0000

STACK_TOP = 0x7FFF_FF10_0000
STACK_SIZE = 1 << 20


class LoaderError(RuntimeError):
    """Raised when an image cannot be loaded."""


class Loader:
    """Loads executables registered with the kernel's binary registry."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel

    # ------------------------------------------------------------------

    def load(self, proc: Process, binary: str, argv: list[str]) -> None:
        """Populate ``proc`` with ``binary``'s mapped image and stack."""
        image = self.kernel.binaries.get(binary)
        if image is None:
            raise LoaderError(f"unknown binary {binary!r}")
        if image.kind is not ImageKind.EXEC:
            raise LoaderError(f"{binary!r} is not an executable")

        memory = proc.memory
        self.map_image(memory, image, load_base=0)
        proc.modules.append(LoadedModule(image, 0))

        # load shared library dependencies (transitively, load order = BFS)
        pending = list(image.needed)
        loaded_names = {image.name}
        lib_index = 0
        while pending:
            name = pending.pop(0)
            if name in loaded_names:
                continue
            lib = self.kernel.binaries.get(name)
            if lib is None:
                raise LoaderError(f"{binary}: needed library {name!r} not found")
            base = LIBRARY_REGION + lib_index * LIBRARY_STRIDE
            lib_index += 1
            self.map_image(memory, lib, load_base=base)
            proc.modules.append(LoadedModule(lib, base))
            loaded_names.add(name)
            pending.extend(lib.needed)

        exports = self._export_map(proc.modules)
        for module in proc.modules:
            self.apply_dynamic_relocs(memory, module.image, module.load_base, exports)

        self._setup_stack(proc, argv)
        proc.regs.rip = image.entry
        memory.decode_cache.clear()

    # ------------------------------------------------------------------

    def map_image(
        self, memory: AddressSpace, image: SelfImage, load_base: int
    ) -> None:
        """Map every segment of ``image`` at ``load_base`` offsets."""
        for seg in image.segments:
            start = seg.vaddr + load_base
            if start % PAGE_SIZE:
                raise LoaderError(
                    f"{image.name}: segment {seg.name} not page aligned"
                )
            memory.mmap(
                start,
                page_align(max(seg.memsize, 1)),
                seg.perms,
                backing=FileBacking(image.name, seg.vaddr, private=True),
                tag=seg.name,
            )
            if seg.data:
                memory.write_raw(start, seg.data)

    @staticmethod
    def _export_map(modules: list[LoadedModule]) -> dict[str, int]:
        exports: dict[str, int] = {}
        for module in modules:
            for name, info in module.image.exports().items():
                exports.setdefault(name, info.vaddr + module.load_base)
        return exports

    def apply_dynamic_relocs(
        self,
        memory: AddressSpace,
        image: SelfImage,
        load_base: int,
        exports: dict[str, int],
    ) -> None:
        """Apply RELATIVE and GLOB_DAT relocations for a mapped image."""
        for reloc in image.dynamic_relocs:
            site = reloc.vaddr + load_base
            if reloc.type is DynRelocType.RELATIVE:
                value = load_base + reloc.addend
            else:  # GLOB_DAT
                target = exports.get(reloc.symbol)
                if target is None:
                    raise LoaderError(
                        f"{image.name}: unresolved import {reloc.symbol!r}"
                    )
                value = target + reloc.addend
            memory.write_raw(site, struct.pack("<Q", value & ((1 << 64) - 1)))

    # ------------------------------------------------------------------

    def _setup_stack(self, proc: Process, argv: list[str]) -> None:
        memory = proc.memory
        memory.mmap(STACK_TOP - STACK_SIZE, STACK_SIZE, "rw-", tag="stack")

        # argv strings at the very top, pointer array beneath them
        cursor = STACK_TOP
        pointers: list[int] = []
        for arg in argv:
            data = arg.encode("utf-8") + b"\x00"
            cursor -= len(data)
            memory.write_raw(cursor, data)
            pointers.append(cursor)
        cursor &= ~0x7
        cursor -= 8 * (len(pointers) + 1)
        argv_array = cursor
        packed = b"".join(struct.pack("<Q", p) for p in pointers) + b"\x00" * 8
        memory.write_raw(argv_array, packed)

        sp = (argv_array - 64) & ~0xF
        proc.regs.gpr[SP] = sp
        proc.regs.gpr[1] = len(argv)
        proc.regs.gpr[2] = argv_array
