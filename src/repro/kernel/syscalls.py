"""Guest syscall interface.

Calling convention: syscall number in ``r0``, arguments in ``r1..r6``,
result in ``r0`` (negative values are errors, -1 unless noted).

Blocking syscalls (``accept``, ``recv``, ``poll``, ``waitpid``,
``nanosleep``) are restartable: when the operation cannot complete, the
CPU rewinds ``rip`` to the ``syscall`` instruction and the process
blocks on a wake predicate; the syscall re-executes in full once the
predicate fires.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING, Callable

from ..telemetry import trace
from .filesystem import FileHandle
from .memory import MemoryFault
from .network import Endpoint, SocketDescriptor
from .process import Process, ProcessState
from .signals import PendingSignal, SigAction, Signal, UNCATCHABLE
from .signals import FRAME_LT, FRAME_REGS, FRAME_RIP, FRAME_ZF

if TYPE_CHECKING:
    from .kernel import Kernel


class Sys(IntEnum):
    """Syscall numbers."""

    EXIT = 1
    WRITE = 2
    READ = 3
    OPEN = 4
    CLOSE = 5
    SOCKET = 6
    BIND = 7
    LISTEN = 8
    ACCEPT = 9
    SEND = 10
    RECV = 11
    FORK = 12
    GETPID = 13
    MMAP = 14
    MUNMAP = 15
    SIGACTION = 16
    SIGRETURN = 17
    NANOSLEEP = 18
    KILL = 21
    WAITPID = 22
    CLOCK_GETTIME = 23
    UNLINK = 24
    EXECVE = 25
    GETPPID = 26
    POLL = 28
    MPROTECT = 29


#: mmap prot bits
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4


@dataclass(frozen=True)
class Block:
    """Returned by a handler when the syscall must wait.

    ``deadline`` (virtual ns) is set for time-based waits so the
    scheduler can fast-forward the clock when every process sleeps.
    """

    predicate: Callable[[], bool]
    deadline: int | None = None


@dataclass(frozen=True)
class SecurityEvent:
    """A sensitive action observed by the kernel (for the security eval)."""

    pid: int
    kind: str          # "execve", "fork", ...
    detail: str
    clock_ns: int


class SyscallTable:
    """Dispatches and implements all guest syscalls."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._handlers: dict[int, Callable[[Process], int | Block]] = {
            Sys.EXIT: self._sys_exit,
            Sys.WRITE: self._sys_write,
            Sys.READ: self._sys_read,
            Sys.OPEN: self._sys_open,
            Sys.CLOSE: self._sys_close,
            Sys.SOCKET: self._sys_socket,
            Sys.BIND: self._sys_bind,
            Sys.LISTEN: self._sys_listen,
            Sys.ACCEPT: self._sys_accept,
            Sys.SEND: self._sys_send,
            Sys.RECV: self._sys_recv,
            Sys.FORK: self._sys_fork,
            Sys.GETPID: self._sys_getpid,
            Sys.MMAP: self._sys_mmap,
            Sys.MUNMAP: self._sys_munmap,
            Sys.SIGACTION: self._sys_sigaction,
            Sys.SIGRETURN: self._sys_sigreturn,
            Sys.NANOSLEEP: self._sys_nanosleep,
            Sys.KILL: self._sys_kill,
            Sys.WAITPID: self._sys_waitpid,
            Sys.CLOCK_GETTIME: self._sys_clock_gettime,
            Sys.UNLINK: self._sys_unlink,
            Sys.EXECVE: self._sys_execve,
            Sys.GETPPID: self._sys_getppid,
            Sys.POLL: self._sys_poll,
            Sys.MPROTECT: self._sys_mprotect,
        }

    # ------------------------------------------------------------------

    def dispatch(self, proc: Process) -> int | Block | None:
        """Execute the syscall selected by ``r0``.

        Returns the result value, a :class:`Block`, or ``None`` when the
        process no longer runs (exit / sigreturn already set state, or a
        seccomp-style filter violation raised SIGSYS).
        """
        number = proc.regs.gpr[0]
        if proc.syscall_filter is not None and number not in proc.syscall_filter:
            self.kernel.log_security_event(
                proc.pid, "seccomp-violation", f"syscall {number}"
            )
            proc.pending_signals.append(PendingSignal(Signal.SIGSYS, number))
            return None
        tracer = self.kernel.tracers.get(proc.pid)
        if tracer is not None:
            on_syscall = getattr(tracer, "on_syscall", None)
            if on_syscall is not None:
                on_syscall(proc, number)
        handler = self._handlers.get(number)
        if handler is None:
            return -38  # ENOSYS
        return handler(proc)

    # ------------------------------------------------------------------
    # helpers

    def _arg(self, proc: Process, index: int) -> int:
        return proc.regs.gpr[index]

    def _read_path(self, proc: Process, pointer: int) -> str | None:
        try:
            return proc.memory.read_cstring(pointer).decode("utf-8")
        except (MemoryFault, UnicodeDecodeError):
            return None

    # ------------------------------------------------------------------
    # process lifecycle

    def _sys_exit(self, proc: Process) -> None:
        self.kernel.terminate(proc, exit_code=self._arg(proc, 1) & 0xFF)
        return None

    def _sys_fork(self, proc: Process) -> int:
        child = self.kernel.fork(proc)
        self.kernel.log_security_event(proc.pid, "fork", f"child={child.pid}")
        # child resumes after the syscall with r0 = 0
        child.regs.gpr[0] = 0
        child.regs.rip = proc.regs.rip
        return child.pid

    def _sys_getpid(self, proc: Process) -> int:
        return proc.pid

    def _sys_getppid(self, proc: Process) -> int:
        return proc.ppid

    def _sys_waitpid(self, proc: Process) -> int | Block:
        target = self._arg(proc, 1)

        def find_zombie() -> Process | None:
            for pid in proc.children:
                child = self.kernel.processes.get(pid)
                if child is None:
                    continue
                if child.state is ProcessState.ZOMBIE and (
                    target in (0, 2**64 - 1) or target == pid
                ):
                    return child
            return None

        zombie = find_zombie()
        if zombie is None:
            if not proc.children:
                return -10  # ECHILD
            return Block(lambda: find_zombie() is not None)
        self.kernel.reap(zombie)
        return zombie.pid

    def _sys_kill(self, proc: Process) -> int:
        pid = self._arg(proc, 1)
        sig = self._arg(proc, 2)
        target = self.kernel.processes.get(pid)
        if target is None or not target.alive:
            return -3  # ESRCH
        try:
            signal = Signal(sig)
        except ValueError:
            return -22  # EINVAL
        self.kernel.post_signal(target, PendingSignal(signal))
        return 0

    def _sys_execve(self, proc: Process) -> int:
        path = self._read_path(proc, self._arg(proc, 1)) or "?"
        self.kernel.log_security_event(proc.pid, "execve", path)
        return -1  # the simulated kernel refuses exec; the event is the point

    # ------------------------------------------------------------------
    # files

    def _sys_open(self, proc: Process) -> int:
        path = self._read_path(proc, self._arg(proc, 1))
        if path is None:
            return -14  # EFAULT
        handle = self.kernel.fs.open(path, self._arg(proc, 2))
        if handle is None:
            return -2  # ENOENT
        return proc.allocate_fd(handle)

    def _sys_close(self, proc: Process) -> int:
        fd = self._arg(proc, 1)
        descriptor = proc.fds.pop(fd, None)
        if descriptor is None:
            return -9  # EBADF
        if isinstance(descriptor, SocketDescriptor):
            if descriptor.endpoint is not None:
                descriptor.endpoint.close()
            if descriptor.listener is not None:
                self.kernel.net.release_port(descriptor.listener.port)
        return 0

    def _sys_write(self, proc: Process) -> int:
        fd, buf, size = (self._arg(proc, i) for i in (1, 2, 3))
        try:
            data = proc.memory.read(buf, size) if size else b""
        except MemoryFault:
            return -14
        if fd in (1, 2):
            proc.stdout += data
            return len(data)
        descriptor = proc.fds.get(fd)
        if isinstance(descriptor, FileHandle):
            result = descriptor.write(data)
            return -9 if result is None else result
        if isinstance(descriptor, SocketDescriptor) and descriptor.endpoint:
            return descriptor.endpoint.send(data)
        return -9

    def _sys_read(self, proc: Process) -> int | Block:
        fd, buf, size = (self._arg(proc, i) for i in (1, 2, 3))
        descriptor = proc.fds.get(fd)
        if isinstance(descriptor, FileHandle):
            data = descriptor.read(size)
            if data is None:
                return -9
            try:
                proc.memory.write(buf, data)
            except MemoryFault:
                return -14
            return len(data)
        if isinstance(descriptor, SocketDescriptor) and descriptor.endpoint:
            return self._recv_endpoint(proc, descriptor.endpoint, buf, size)
        return -9

    def _sys_unlink(self, proc: Process) -> int:
        path = self._read_path(proc, self._arg(proc, 1))
        if path is None:
            return -14
        return 0 if self.kernel.fs.unlink(path) else -2

    # ------------------------------------------------------------------
    # sockets

    def _sys_socket(self, proc: Process) -> int:
        return proc.allocate_fd(SocketDescriptor())

    def _socket_arg(self, proc: Process) -> SocketDescriptor | None:
        descriptor = proc.fds.get(self._arg(proc, 1))
        return descriptor if isinstance(descriptor, SocketDescriptor) else None

    def _sys_bind(self, proc: Process) -> int:
        sock = self._socket_arg(proc)
        if sock is None:
            return -9
        port = self._arg(proc, 2)
        return 0 if self.kernel.net.bind(sock, port) else -98  # EADDRINUSE

    def _sys_listen(self, proc: Process) -> int:
        sock = self._socket_arg(proc)
        if sock is None:
            return -9
        return 0 if self.kernel.net.listen(sock) else -22

    def _sys_accept(self, proc: Process) -> int | Block:
        sock = self._socket_arg(proc)
        if sock is None or sock.listener is None:
            return -9
        listener = sock.listener
        if not listener.has_pending:
            return Block(lambda: listener.has_pending or listener.closed)
        endpoint = self.kernel.net.accept(sock)
        if endpoint is None:
            return -11
        conn_sock = SocketDescriptor()
        conn_sock.endpoint = endpoint
        return proc.allocate_fd(conn_sock)

    def _sys_send(self, proc: Process) -> int:
        sock = self._socket_arg(proc)
        if sock is None or sock.endpoint is None:
            return -9
        buf, size = self._arg(proc, 2), self._arg(proc, 3)
        try:
            data = proc.memory.read(buf, size) if size else b""
        except MemoryFault:
            return -14
        return sock.endpoint.send(data)

    def _sys_recv(self, proc: Process) -> int | Block:
        sock = self._socket_arg(proc)
        if sock is None or sock.endpoint is None:
            return -9
        return self._recv_endpoint(
            proc, sock.endpoint, self._arg(proc, 2), self._arg(proc, 3)
        )

    def _recv_endpoint(
        self, proc: Process, endpoint: Endpoint, buf: int, size: int
    ) -> int | Block:
        if not endpoint.recv_buffer:
            if endpoint.closed or endpoint.peer is None or endpoint.peer.closed:
                return 0  # EOF
            return Block(lambda: endpoint.readable)
        data = endpoint.recv(size)
        try:
            proc.memory.write(buf, data)
        except MemoryFault:
            return -14
        return len(data)

    def _sys_poll(self, proc: Process) -> int | Block:
        """poll(fds_ptr, count): block until some fd is ready; return index.

        Ready means: connected socket with data/EOF, or listener with a
        pending connection.
        """
        fds_ptr, count = self._arg(proc, 1), self._arg(proc, 2)
        if count == 0 or count > 1024:
            return -22
        try:
            raw = proc.memory.read(fds_ptr, count * 8)
        except MemoryFault:
            return -14
        fds = list(struct.unpack(f"<{count}Q", raw))

        def ready_index() -> int | None:
            for index, fd in enumerate(fds):
                descriptor = proc.fds.get(fd)
                if not isinstance(descriptor, SocketDescriptor):
                    continue
                if descriptor.endpoint is not None and descriptor.endpoint.readable:
                    return index
                if descriptor.listener is not None and (
                    descriptor.listener.has_pending
                ):
                    return index
            return None

        index = ready_index()
        if index is None:
            return Block(lambda: ready_index() is not None)
        return index

    # ------------------------------------------------------------------
    # memory

    def _sys_mmap(self, proc: Process) -> int:
        addr, size, prot = (self._arg(proc, i) for i in (1, 2, 3))
        if size == 0:
            return -22
        perms = "".join(
            flag if prot & bit else "-"
            for flag, bit in (("r", PROT_READ), ("w", PROT_WRITE), ("x", PROT_EXEC))
        )
        if addr == 0:
            addr = proc.memory.find_free_range(size, hint=0x7000_0000_0000)
        try:
            proc.memory.mmap(addr, size, perms, tag="mmap")
        except (MemoryFault, ValueError):
            return -22
        return addr

    def _sys_mprotect(self, proc: Process) -> int:
        addr, size, prot = (self._arg(proc, i) for i in (1, 2, 3))
        perms = "".join(
            flag if prot & bit else "-"
            for flag, bit in (("r", PROT_READ), ("w", PROT_WRITE), ("x", PROT_EXEC))
        )
        if proc.memory.find_vma(addr) is None:
            return -12  # ENOMEM, like Linux for unmapped ranges
        try:
            proc.memory.mprotect(addr, size, perms)
        except (MemoryFault, ValueError):
            return -22
        return 0

    def _sys_munmap(self, proc: Process) -> int:
        addr, size = self._arg(proc, 1), self._arg(proc, 2)
        try:
            proc.memory.munmap(addr, size)
        except (MemoryFault, ValueError):
            return -22
        return 0

    # ------------------------------------------------------------------
    # signals

    def _sys_sigaction(self, proc: Process) -> int:
        sig, handler, restorer = (self._arg(proc, i) for i in (1, 2, 3))
        try:
            signal = Signal(sig)
        except ValueError:
            return -22
        if signal in UNCATCHABLE:
            return -22
        old = proc.sigactions.get(signal)
        if handler == 0:
            proc.sigactions.pop(signal, None)
        else:
            proc.sigactions[signal] = SigAction(handler, restorer)
        return old.handler if old else 0

    def _sys_sigreturn(self, proc: Process) -> None:
        """Restore the register file from the sigframe at ``r1``."""
        frame = self._arg(proc, 1)
        try:
            proc.regs.rip = _read_u64(proc, frame + FRAME_RIP)
            proc.regs.zf = bool(_read_u64(proc, frame + FRAME_ZF))
            proc.regs.lt = bool(_read_u64(proc, frame + FRAME_LT))
            for index in range(16):
                proc.regs.gpr[index] = _read_u64(proc, frame + FRAME_REGS + 8 * index)
        except MemoryFault:
            self.kernel.terminate(proc, signal=Signal.SIGSEGV)
            return None
        trace.note_trap_returned(proc.pid, self.kernel.clock_ns)
        return None

    # ------------------------------------------------------------------
    # time

    def _sys_nanosleep(self, proc: Process) -> int | Block:
        # the syscall restarts after blocking, so the absolute deadline is
        # computed once and parked on the process until the sleep finishes
        deadline = getattr(proc, "sleep_until", None)
        if deadline is None:
            deadline = self.kernel.clock_ns + self._arg(proc, 1)
            proc.sleep_until = deadline
        if self.kernel.clock_ns >= deadline:
            proc.sleep_until = None
            return 0
        return Block(lambda: self.kernel.clock_ns >= deadline, deadline=deadline)

    def _sys_clock_gettime(self, proc: Process) -> int:
        return self.kernel.clock_ns


def _read_u64(proc: Process, address: int) -> int:
    return struct.unpack("<Q", proc.memory.read(address, 8))[0]
