"""CRIT — the CRiu Image Tool.

The paper extends CRIT into the process-rewriting API; this module
provides the same two layers:

* **decode/encode**: lossless conversion between binary image files and
  JSON-friendly dictionaries (``crit decode`` / ``crit encode``);
* **inspection**: ``show_mems`` prints the VMA table of a checkpoint
  (``crit x <dir> mems``), ``show_core`` the register state
  (``crit show core.img``).

The mutation API the rewriter builds on lives directly on
:class:`~repro.criu.images.ProcessImage` (``write_memory``,
``add_pages``, ``drop_range``) — CRIT exposes them over a directory.
"""

from __future__ import annotations

import base64
import json
from typing import Any

from .images import (
    CheckpointImage,
    CoreImage,
    FdEntryImage,
    FilesImage,
    ImageError,
    MmImage,
    PagemapEntry,
    PagemapImage,
    PagesImage,
    RegsImage,
    SigactionEntry,
    VmaEntry,
)

_KIND_MAGIC_PREFIX = {
    b"CORE": "core",
    b"MMAP": "mm",
    b"PGMP": "pagemap",
    b"PAGE": "pages",
    b"FILE": "files",
}


def image_kind(data: bytes) -> str:
    """Identify an image file by magic."""
    kind = _KIND_MAGIC_PREFIX.get(data[:4])
    if kind is None:
        raise ImageError("unknown image magic")
    return kind


# ----------------------------------------------------------------------
# decode


def decode(data: bytes) -> dict[str, Any]:
    """Decode any image file to a JSON-friendly dict."""
    kind = image_kind(data)
    if kind == "core":
        return _decode_core(CoreImage.from_bytes(data))
    if kind == "mm":
        return _decode_mm(MmImage.from_bytes(data))
    if kind == "pagemap":
        pagemap = PagemapImage.from_bytes(data)
        return {
            "kind": "pagemap",
            "entries": [
                {"vaddr": e.vaddr, "nr_pages": e.nr_pages} for e in pagemap.entries
            ],
        }
    if kind == "pages":
        pages = PagesImage.from_bytes(data)
        return {
            "kind": "pages",
            "data_b64": base64.b64encode(pages.data).decode("ascii"),
        }
    return _decode_files(FilesImage.from_bytes(data))


def _decode_core(core: CoreImage) -> dict[str, Any]:
    return {
        "kind": "core",
        "pid": core.pid,
        "ppid": core.ppid,
        "binary": core.binary,
        "regs": {
            "gpr": list(core.regs.gpr),
            "rip": core.regs.rip,
            "zf": core.regs.zf,
            "lt": core.regs.lt,
        },
        "sigactions": [
            {"signal": s.signal, "handler": s.handler, "restorer": s.restorer}
            for s in core.sigactions
        ],
        "next_fd": core.next_fd,
        "syscall_filter": core.syscall_filter,
    }


def _decode_mm(mm: MmImage) -> dict[str, Any]:
    return {
        "kind": "mm",
        "vmas": [
            {
                "start": v.start,
                "end": v.end,
                "perms": v.perms,
                "file_path": v.file_path,
                "file_offset": v.file_offset,
                "tag": v.tag,
            }
            for v in mm.vmas
        ],
    }


def _decode_files(files: FilesImage) -> dict[str, Any]:
    return {
        "kind": "files",
        "fds": [
            {
                "fd": f.fd,
                "fd_kind": f.kind,
                "path": f.path,
                "offset": f.offset,
                "flags": f.flags,
                "port": f.port,
                "pending_conns": list(f.pending_conns),
                "conn_id": f.conn_id,
                "side": f.side,
                "recv_buffer_b64": base64.b64encode(f.recv_buffer).decode("ascii"),
            }
            for f in files.fds
        ],
    }


# ----------------------------------------------------------------------
# encode


def encode(payload: dict[str, Any]) -> bytes:
    """Encode a decoded dict back to binary image bytes."""
    kind = payload.get("kind")
    if kind == "core":
        regs = payload["regs"]
        return CoreImage(
            pid=payload["pid"],
            ppid=payload["ppid"],
            binary=payload["binary"],
            regs=RegsImage(list(regs["gpr"]), regs["rip"], regs["zf"], regs["lt"]),
            sigactions=[
                SigactionEntry(s["signal"], s["handler"], s["restorer"])
                for s in payload["sigactions"]
            ],
            next_fd=payload["next_fd"],
            syscall_filter=payload.get("syscall_filter"),
        ).to_bytes()
    if kind == "mm":
        return MmImage(
            vmas=[
                VmaEntry(
                    v["start"], v["end"], v["perms"], v["file_path"],
                    v["file_offset"], v["tag"],
                )
                for v in payload["vmas"]
            ]
        ).to_bytes()
    if kind == "pagemap":
        return PagemapImage(
            entries=[
                PagemapEntry(e["vaddr"], e["nr_pages"]) for e in payload["entries"]
            ]
        ).to_bytes()
    if kind == "pages":
        return PagesImage(base64.b64decode(payload["data_b64"])).to_bytes()
    if kind == "files":
        return FilesImage(
            fds=[
                FdEntryImage(
                    f["fd"], f["fd_kind"], f["path"], f["offset"], f["flags"],
                    f["port"], list(f["pending_conns"]), f["conn_id"], f["side"],
                    base64.b64decode(f["recv_buffer_b64"]),
                )
                for f in payload["fds"]
            ]
        ).to_bytes()
    raise ImageError(f"cannot encode kind {kind!r}")


def decode_to_json(data: bytes, indent: int = 2) -> str:
    """``crit decode``: binary image file -> JSON text."""
    return json.dumps(decode(data), indent=indent)


def encode_from_json(text: str) -> bytes:
    """``crit encode``: JSON text -> binary image file."""
    return encode(json.loads(text))


# ----------------------------------------------------------------------
# inspection (crit x / crit show)


def show_mems(fs, image_dir: str) -> str:
    """``crit x <dir> mems``: the VMA tables of every process image."""
    checkpoint = CheckpointImage.load(fs, image_dir)
    lines = []
    for proc in checkpoint.processes:
        lines.append(f"pid {proc.pid} ({proc.core.binary}):")
        for vma in proc.mm.vmas:
            backing = vma.file_path or "anon"
            lines.append(
                f"  {vma.start:#014x}-{vma.end:#014x} {vma.perms} {backing} {vma.tag}"
            )
    return "\n".join(lines)


def show_core(fs, image_dir: str, pid: int) -> str:
    """``crit show core-<pid>.img``: registers and sigactions."""
    core = CoreImage.from_bytes(fs.read_file(f"{image_dir}/core-{pid}.img"))
    lines = [f"pid {core.pid} ppid {core.ppid} binary {core.binary}"]
    lines.append(f"  rip {core.regs.rip:#x} zf {core.regs.zf} lt {core.regs.lt}")
    for index, value in enumerate(core.regs.gpr):
        lines.append(f"  r{index:<2} {value:#018x}")
    for action in core.sigactions:
        lines.append(
            f"  sigaction {action.signal}: handler {action.handler:#x} "
            f"restorer {action.restorer:#x}"
        )
    return "\n".join(lines)
