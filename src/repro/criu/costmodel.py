"""Virtual-time cost model for checkpoint/restore/rewrite operations.

The paper reports wall-clock costs measured on an i5-10210U laptop.
This reproduction runs on a deterministic virtual clock, so every
CRIU-side operation advances the clock by a modelled cost.  The model's
*structure* matches where the paper says the time goes:

* checkpoint/restore scale with the number of dumped pages and the
  number of processes (Nginx's two processes checkpoint slower than
  Lighttpd's one — Figure 6);
* code update scales with the number of patched basic blocks
  (perlbench's ~10.8k init blocks dominate its 18 s — Figure 7);
* inserting the signal-handler library is a small constant (parse,
  relocate, add pages).

Constants are calibrated so the three servers land in the right
hundreds-of-milliseconds band; absolute values are configuration, not
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

MS = 1_000_000   # virtual nanoseconds per millisecond
US = 1_000


@dataclass(frozen=True)
class CriuCostModel:
    """Cost constants (virtual ns) for every rewriting pipeline step."""

    freeze_ns: int = 3 * MS                 # seize + quiesce one process
    checkpoint_base_ns: int = 55 * MS       # per-dump fixed cost
    checkpoint_proc_ns: int = 35 * MS       # per extra process in the tree
    dump_page_ns: int = 90 * US             # per dumped 4 KiB page
    restore_base_ns: int = 80 * MS          # fork+prepare on restore
    restore_proc_ns: int = 30 * MS          # per extra restored process
    restore_page_ns: int = 60 * US          # per restored page
    patch_block_ns: int = int(1.4 * MS)     # analyze + patch one basic block
    wipe_byte_ns: int = 2 * US              # per byte fully wiped
    unmap_vma_ns: int = 2 * MS              # drop one VMA from the image
    insert_library_ns: int = 45 * MS        # parse SELF + relocate + add pages
    set_sigaction_ns: int = 1 * MS          # edit the core image
    retry_backoff_ns: int = 10 * MS         # base delay after a transient fault
    retry_backoff_cap_ns: int = 80 * MS     # exponential backoff ceiling

    # ------------------------------------------------------------------

    def checkpoint_cost(self, pages: int, processes: int) -> int:
        return (
            self.checkpoint_base_ns
            + self.freeze_ns * processes
            + self.checkpoint_proc_ns * max(0, processes - 1)
            + self.dump_page_ns * pages
        )

    def restore_cost(self, pages: int, processes: int) -> int:
        return (
            self.restore_base_ns
            + self.restore_proc_ns * max(0, processes - 1)
            + self.restore_page_ns * pages
        )

    def patch_cost(self, blocks: int, wiped_bytes: int = 0) -> int:
        return self.patch_block_ns * blocks + self.wipe_byte_ns * wiped_bytes

    def library_injection_cost(self) -> int:
        return self.insert_library_ns + self.set_sigaction_ns

    def retry_backoff(self, failures: int) -> int:
        """Deterministic exponential backoff after the Nth transient
        failure (1-based), capped so retry storms stay bounded."""
        return min(
            self.retry_backoff_ns << max(0, failures - 1),
            self.retry_backoff_cap_ns,
        )


DEFAULT_COST_MODEL = CriuCostModel()
