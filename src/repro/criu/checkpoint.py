"""Checkpoint (dump) a process tree into CRIU-style images.

Follows CRIU's dump pipeline: freeze every task in the tree, walk
``/proc``-equivalent state into per-process images, then either kill
the originals (CRIU's default, what DynaCut's rewrite flow uses) or
thaw them (``--leave-running``).

The **page-dump policy** reproduces both vanilla CRIU and DynaCut's
modification (criu/mem.c):

* anonymous pages: always dumped;
* writable file-backed private pages: dumped (they may be dirty);
* read-only file-backed pages: skipped — the restorer reconstructs
  them from the binary (vanilla CRIU's bandwidth optimization);
* **executable** file-backed private pages: dumped only when
  ``dump_exec_pages=True`` — DynaCut's change.  Without it, int3
  patches applied to the image's code would be silently lost at
  restore, because the pristine binary would be mapped back in.

Killing the originals uses TCP-repair semantics: established
connections are detached silently (buffers serialized into the files
image) so the remote peers never see a reset.
"""

from __future__ import annotations

from .. import faults
from ..kernel.filesystem import FileHandle
from ..kernel.kernel import Kernel
from ..kernel.memory import PAGE_SIZE, VMA
from ..kernel.network import SocketDescriptor
from ..kernel.process import Process, ProcessState
from .costmodel import CriuCostModel, DEFAULT_COST_MODEL
from .images import (
    CheckpointImage,
    CoreImage,
    FdEntryImage,
    FilesImage,
    MmImage,
    PagemapEntry,
    PagemapImage,
    PagesImage,
    ProcessImage,
    RegsImage,
    SigactionEntry,
    VmaEntry,
)

DEFAULT_IMAGE_DIR = "/tmp/criu"


class CheckpointError(RuntimeError):
    pass


def process_tree_pids(kernel: Kernel, root_pid: int) -> list[int]:
    """``root_pid`` plus all live descendants, parents before children."""
    root = kernel.processes.get(root_pid)
    if root is None or not root.alive:
        raise CheckpointError(f"no live process {root_pid}")
    out = [root_pid]
    frontier = [root_pid]
    while frontier:
        pid = frontier.pop()
        for proc in kernel.processes.values():
            if proc.ppid == pid and proc.alive and proc.pid not in out:
                out.append(proc.pid)
                frontier.append(proc.pid)
    return out


def checkpoint_tree(
    kernel: Kernel,
    root_pid: int,
    image_dir: str | None = DEFAULT_IMAGE_DIR,
    dump_exec_pages: bool = True,
    leave_running: bool = False,
    cost_model: CriuCostModel = DEFAULT_COST_MODEL,
) -> CheckpointImage:
    """Dump ``root_pid``'s process tree; returns the checkpoint image.

    When ``image_dir`` is given the image files are also written into
    the kernel filesystem (the paper stores them on a tmpfs).
    """
    pids = process_tree_pids(kernel, root_pid)
    procs = [kernel.freeze(pid) for pid in pids]

    # The dump is abort-safe: until it fully succeeds (including the
    # image-dir save) nothing has been destroyed, so any failure thaws
    # the frozen tree and the service keeps running untouched.
    try:
        images = [
            _dump_process(proc, dump_exec_pages=dump_exec_pages)
            for proc in procs
        ]
        checkpoint = CheckpointImage(images, clock_ns=kernel.clock_ns)

        if image_dir is not None:
            checkpoint.save(kernel.fs, image_dir)
    except Exception:
        for pid in pids:
            kernel.thaw(pid)
        raise

    kernel.clock_ns += cost_model.checkpoint_cost(
        checkpoint.total_pages(), len(procs)
    )

    if leave_running:
        for pid in pids:
            kernel.thaw(pid)
    else:
        for proc in procs:
            _destroy_quietly(kernel, proc)
    return checkpoint


# ----------------------------------------------------------------------


def _dump_process(proc: Process, dump_exec_pages: bool) -> ProcessImage:
    core = CoreImage(
        pid=proc.pid,
        ppid=proc.ppid,
        binary=proc.binary,
        regs=RegsImage(
            list(proc.regs.gpr), proc.regs.rip, proc.regs.zf, proc.regs.lt
        ),
        sigactions=[
            SigactionEntry(int(sig), action.handler, action.restorer)
            for sig, action in sorted(proc.sigactions.items())
        ],
        next_fd=proc.next_fd,
        syscall_filter=(
            sorted(proc.syscall_filter)
            if proc.syscall_filter is not None else None
        ),
    )
    mm = MmImage(
        vmas=[
            VmaEntry(
                vma.start,
                vma.end,
                vma.perms,
                vma.backing.path if vma.backing else "",
                vma.backing.offset if vma.backing else 0,
                vma.tag,
            )
            for vma in proc.memory.vmas
        ]
    )
    pagemap, pages = _dump_pages(proc, dump_exec_pages)
    files = _dump_files(proc)
    return ProcessImage(core, mm, pagemap, pages, files)


def _should_dump(vma: VMA, dump_exec_pages: bool) -> bool:
    if vma.backing is None:
        return True
    if vma.writable:
        return True
    if vma.executable:
        return dump_exec_pages
    return False  # read-only file pages: reconstructed from the binary


def _dump_pages(
    proc: Process, dump_exec_pages: bool
) -> tuple[PagemapImage, PagesImage]:
    faults.trip("checkpoint.dump_pages", detail=f"pid={proc.pid}")
    entries: list[PagemapEntry] = []
    blob = bytearray()
    for vma in proc.memory.vmas:
        if not _should_dump(vma, dump_exec_pages):
            continue
        nr_pages = vma.size // PAGE_SIZE
        data = proc.memory.read_raw(vma.start, vma.size)
        if entries and entries[-1].end == vma.start:
            entries[-1] = PagemapEntry(
                entries[-1].vaddr, entries[-1].nr_pages + nr_pages
            )
        else:
            entries.append(PagemapEntry(vma.start, nr_pages))
        blob += data
    return PagemapImage(entries), PagesImage(bytes(blob))


def _dump_files(proc: Process) -> FilesImage:
    fds: list[FdEntryImage] = []
    for fd, descriptor in sorted(proc.fds.items()):
        if isinstance(descriptor, FileHandle):
            fds.append(
                FdEntryImage(
                    fd,
                    "file",
                    path=descriptor.path,
                    offset=descriptor.offset,
                    flags=descriptor.flags,
                )
            )
        elif isinstance(descriptor, SocketDescriptor):
            if descriptor.listener is not None:
                fds.append(
                    FdEntryImage(
                        fd,
                        "socket-listen",
                        port=descriptor.listener.port,
                        pending_conns=[
                            conn.conn_id for conn in descriptor.listener.backlog
                        ],
                    )
                )
            elif descriptor.endpoint is not None:
                endpoint = descriptor.endpoint
                fds.append(
                    FdEntryImage(
                        fd,
                        "socket-conn",
                        conn_id=endpoint.conn_id,
                        side=endpoint.side,
                        recv_buffer=bytes(endpoint.recv_buffer),
                    )
                )
            else:
                fds.append(
                    FdEntryImage(fd, "socket-raw", port=descriptor.bound_port or 0)
                )
    return FilesImage(fds)


def _destroy_quietly(kernel: Kernel, proc: Process) -> None:
    """Remove a dumped process without disturbing its connections.

    Unlike a normal exit, endpoints are *not* closed (TCP repair keeps
    them alive for the restored process) — but listening ports are
    released so the restorer can rebind them.
    """
    for descriptor in proc.fds.values():
        if not isinstance(descriptor, SocketDescriptor):
            continue
        if descriptor.listener:
            kernel.net.release_port(descriptor.listener.port)
        if descriptor.endpoint is not None:
            # the dumped bytes now belong to the image; anything the peer
            # sends while we are down accumulates freshly and is appended
            # after the image bytes at repair time
            descriptor.endpoint.recv_buffer.clear()
    proc.fds.clear()
    proc.state = ProcessState.DEAD
    kernel.detach_tracer(proc.pid)
