"""CRIU-style process images.

A checkpoint is a set of per-process image files, mirroring CRIU's
layout (§3.3 of the paper):

* ``core-<pid>.img`` — registers, sigactions, binary name;
* ``mm-<pid>.img`` — every VMA (start, end, perms, file backing);
* ``pagemap-<pid>.img`` — which page ranges were dumped;
* ``pages-<pid>.img`` — the raw page contents;
* ``files-<pid>.img`` — fd table incl. TCP-repair connection state;
* ``inventory.img`` — checkpoint metadata and the pid list.

Each file serializes with the same TLV scheme as the SELF format
(:mod:`repro.binfmt.serde`) — a stand-in for CRIU's protobuf encoding
that CRIT (:mod:`repro.criu.crit`) can decode to JSON and re-encode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import faults
from ..binfmt.serde import ByteReader, ByteWriter
from ..kernel.memory import PAGE_SIZE

IMAGE_VERSION = 3
_MAGICS = {
    "core": b"CORE\x01",
    "mm": b"MMAP\x01",
    "pagemap": b"PGMP\x01",
    "pages": b"PAGE\x01",
    "files": b"FILE\x01",
    "inventory": b"INVT\x01",
}


class ImageError(ValueError):
    """Malformed or mismatched image data."""


def _check_magic(data: bytes, kind: str) -> ByteReader:
    magic = _MAGICS[kind]
    if data[: len(magic)] != magic:
        raise ImageError(f"not a {kind} image (bad magic)")
    return ByteReader(data, len(magic))


# ----------------------------------------------------------------------
# core


@dataclass
class RegsImage:
    gpr: list[int]
    rip: int
    zf: bool
    lt: bool


@dataclass
class SigactionEntry:
    signal: int
    handler: int
    restorer: int


@dataclass
class CoreImage:
    pid: int
    ppid: int
    binary: str
    regs: RegsImage
    sigactions: list[SigactionEntry] = field(default_factory=list)
    next_fd: int = 3
    #: seccomp-style syscall allow-list; None means unrestricted
    syscall_filter: list[int] | None = None

    def to_bytes(self) -> bytes:
        w = ByteWriter().raw(_MAGICS["core"])
        w.u64(self.pid).u64(self.ppid).string(self.binary)
        for value in self.regs.gpr:
            w.u64(value)
        w.u64(self.regs.rip).u8(int(self.regs.zf)).u8(int(self.regs.lt))
        w.u32(len(self.sigactions))
        for entry in self.sigactions:
            w.u32(entry.signal).u64(entry.handler).u64(entry.restorer)
        w.u64(self.next_fd)
        if self.syscall_filter is None:
            w.u8(0)
        else:
            w.u8(1)
            w.u32(len(self.syscall_filter))
            for number in sorted(self.syscall_filter):
                w.u32(number)
        return w.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "CoreImage":
        r = _check_magic(data, "core")
        pid = r.u64()
        ppid = r.u64()
        binary = r.string()
        gpr = [r.u64() for __ in range(16)]
        regs = RegsImage(gpr, r.u64(), bool(r.u8()), bool(r.u8()))
        sigactions = [
            SigactionEntry(r.u32(), r.u64(), r.u64()) for __ in range(r.u32())
        ]
        next_fd = r.u64()
        syscall_filter = None
        if r.u8():
            syscall_filter = [r.u32() for __ in range(r.u32())]
        return cls(pid, ppid, binary, regs, sigactions, next_fd, syscall_filter)


# ----------------------------------------------------------------------
# mm


@dataclass
class VmaEntry:
    start: int
    end: int
    perms: str
    file_path: str = ""      # "" means anonymous
    file_offset: int = 0
    tag: str = ""

    @property
    def is_anon(self) -> bool:
        return not self.file_path

    @property
    def size(self) -> int:
        return self.end - self.start

    @property
    def executable(self) -> bool:
        return "x" in self.perms

    @property
    def writable(self) -> bool:
        return "w" in self.perms


@dataclass
class MmImage:
    vmas: list[VmaEntry] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        w = ByteWriter().raw(_MAGICS["mm"])
        w.u32(len(self.vmas))
        for vma in self.vmas:
            w.u64(vma.start).u64(vma.end).string(vma.perms)
            w.string(vma.file_path).u64(vma.file_offset).string(vma.tag)
        return w.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "MmImage":
        r = _check_magic(data, "mm")
        vmas = []
        for __ in range(r.u32()):
            vmas.append(
                VmaEntry(r.u64(), r.u64(), r.string(), r.string(), r.u64(), r.string())
            )
        return cls(vmas)

    def vma_at(self, address: int) -> VmaEntry | None:
        for vma in self.vmas:
            if vma.start <= address < vma.end:
                return vma
        return None


# ----------------------------------------------------------------------
# pagemap + pages


@dataclass
class PagemapEntry:
    vaddr: int
    nr_pages: int

    @property
    def size(self) -> int:
        return self.nr_pages * PAGE_SIZE

    @property
    def end(self) -> int:
        return self.vaddr + self.size


@dataclass
class PagemapImage:
    entries: list[PagemapEntry] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        w = ByteWriter().raw(_MAGICS["pagemap"])
        w.u32(len(self.entries))
        for entry in self.entries:
            w.u64(entry.vaddr).u64(entry.nr_pages)
        return w.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "PagemapImage":
        r = _check_magic(data, "pagemap")
        return cls([PagemapEntry(r.u64(), r.u64()) for __ in range(r.u32())])

    @property
    def total_pages(self) -> int:
        return sum(entry.nr_pages for entry in self.entries)


@dataclass
class PagesImage:
    data: bytes = b""

    def to_bytes(self) -> bytes:
        return ByteWriter().raw(_MAGICS["pages"]).blob(self.data).getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "PagesImage":
        return cls(_check_magic(data, "pages").blob())


# ----------------------------------------------------------------------
# files (fd table, incl. TCP repair state)


@dataclass
class FdEntryImage:
    fd: int
    kind: str                # "file" | "socket-listen" | "socket-conn" | "socket-raw"
    path: str = ""
    offset: int = 0
    flags: int = 0
    port: int = 0
    pending_conns: list[int] = field(default_factory=list)
    conn_id: int = 0
    side: str = ""
    recv_buffer: bytes = b""


@dataclass
class FilesImage:
    fds: list[FdEntryImage] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        w = ByteWriter().raw(_MAGICS["files"])
        w.u32(len(self.fds))
        for entry in self.fds:
            w.u64(entry.fd).string(entry.kind).string(entry.path)
            w.u64(entry.offset).u64(entry.flags).u64(entry.port)
            w.u32(len(entry.pending_conns))
            for cid in entry.pending_conns:
                w.u64(cid)
            w.u64(entry.conn_id).string(entry.side).blob(entry.recv_buffer)
        return w.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "FilesImage":
        r = _check_magic(data, "files")
        fds = []
        for __ in range(r.u32()):
            fd = r.u64()
            kind = r.string()
            path = r.string()
            offset = r.u64()
            flags = r.u64()
            port = r.u64()
            pending = [r.u64() for __ in range(r.u32())]
            conn_id = r.u64()
            side = r.string()
            buffered = r.blob()
            fds.append(
                FdEntryImage(
                    fd, kind, path, offset, flags, port, pending, conn_id,
                    side, buffered,
                )
            )
        return cls(fds)


# ----------------------------------------------------------------------
# per-process bundle + checkpoint


@dataclass
class ProcessImage:
    """All image files of one checkpointed process."""

    core: CoreImage
    mm: MmImage
    pagemap: PagemapImage
    pages: PagesImage
    files: FilesImage

    @property
    def pid(self) -> int:
        return self.core.pid

    # ------------------------------------------------------------------
    # page-content access, used heavily by the rewriter

    def _locate(self, address: int) -> int | None:
        """Offset of ``address`` within the dumped pages blob, or None."""
        cursor = 0
        for entry in self.pagemap.entries:
            if entry.vaddr <= address < entry.end:
                return cursor + (address - entry.vaddr)
            cursor += entry.size
        return None

    def has_dumped(self, address: int) -> bool:
        return self._locate(address) is not None

    def read_memory(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes of dumped memory (must be fully dumped)."""
        offset = self._locate(address)
        if offset is None:
            raise ImageError(f"address {address:#x} not in dumped pages")
        end_offset = self._locate(address + size - 1)
        if end_offset is None or end_offset != offset + size - 1:
            raise ImageError(
                f"range {address:#x}+{size:#x} spans non-dumped pages"
            )
        return self.pages.data[offset:offset + size]

    def write_memory(self, address: int, data: bytes) -> None:
        """Patch dumped memory (the rewriter's byte-replacement primitive)."""
        offset = self._locate(address)
        if offset is None:
            raise ImageError(f"address {address:#x} not in dumped pages")
        end_offset = self._locate(address + len(data) - 1)
        if end_offset is None or end_offset != offset + len(data) - 1:
            raise ImageError(
                f"range {address:#x}+{len(data):#x} spans non-dumped pages"
            )
        blob = bytearray(self.pages.data)
        blob[offset:offset + len(data)] = data
        self.pages.data = bytes(blob)

    def add_pages(self, vaddr: int, data: bytes) -> None:
        """Append a dumped-page run (library injection support)."""
        if vaddr % PAGE_SIZE:
            raise ImageError(f"page run at {vaddr:#x} not page aligned")
        padded = data + b"\x00" * (-len(data) % PAGE_SIZE)
        self.pagemap.entries.append(PagemapEntry(vaddr, len(padded) // PAGE_SIZE))
        self.pages.data += padded

    def relocate_page_range(self, start: int, end: int, delta: int) -> int:
        """Relabel dumped pages in ``[start, end)`` to ``+delta`` addresses.

        The pages blob is untouched (entry order keeps its chunk
        correspondence); only the virtual addresses move.  Used by the
        re-randomization rewrite.  Returns pages moved; raises if a
        pagemap run straddles the range boundary.
        """
        if delta % PAGE_SIZE:
            raise ImageError(f"relocation delta {delta:#x} not page aligned")
        moved = 0
        for index, entry in enumerate(self.pagemap.entries):
            if entry.end <= start or entry.vaddr >= end:
                continue
            if not (start <= entry.vaddr and entry.end <= end):
                raise ImageError(
                    f"pagemap run {entry.vaddr:#x}+{entry.nr_pages}p "
                    f"straddles the relocated range"
                )
            self.pagemap.entries[index] = PagemapEntry(
                entry.vaddr + delta, entry.nr_pages
            )
            moved += entry.nr_pages
        return moved

    def drop_range(self, start: int, end: int) -> int:
        """Remove dumped pages overlapping [start, end); returns pages dropped."""
        new_entries: list[PagemapEntry] = []
        new_data = bytearray()
        dropped = 0
        cursor = 0
        for entry in self.pagemap.entries:
            chunk = self.pages.data[cursor:cursor + entry.size]
            cursor += entry.size
            for page_index in range(entry.nr_pages):
                page_vaddr = entry.vaddr + page_index * PAGE_SIZE
                page_data = chunk[page_index * PAGE_SIZE:(page_index + 1) * PAGE_SIZE]
                if start <= page_vaddr < end:
                    dropped += 1
                    continue
                if new_entries and new_entries[-1].end == page_vaddr:
                    new_entries[-1] = PagemapEntry(
                        new_entries[-1].vaddr, new_entries[-1].nr_pages + 1
                    )
                else:
                    new_entries.append(PagemapEntry(page_vaddr, 1))
                new_data += page_data
        self.pagemap.entries = new_entries
        self.pages.data = bytes(new_data)
        return dropped

    def total_bytes(self) -> int:
        """Approximate on-disk image size (the paper's 'image size')."""
        return (
            len(self.core.to_bytes())
            + len(self.mm.to_bytes())
            + len(self.pagemap.to_bytes())
            + len(self.pages.to_bytes())
            + len(self.files.to_bytes())
        )


@dataclass
class CheckpointImage:
    """A full checkpoint: one or more process images plus metadata."""

    processes: list[ProcessImage] = field(default_factory=list)
    clock_ns: int = 0
    version: int = IMAGE_VERSION

    @property
    def pids(self) -> list[int]:
        return [p.pid for p in self.processes]

    def process(self, pid: int) -> ProcessImage:
        for proc in self.processes:
            if proc.pid == pid:
                return proc
        raise ImageError(f"no process image for pid {pid}")

    def root(self) -> ProcessImage:
        """The tree root: the process whose parent is outside the image."""
        pids = set(self.pids)
        for proc in self.processes:
            if proc.core.ppid not in pids:
                return proc
        return self.processes[0]

    def total_bytes(self) -> int:
        return sum(proc.total_bytes() for proc in self.processes)

    def total_pages(self) -> int:
        return sum(proc.pagemap.total_pages for proc in self.processes)

    # ------------------------------------------------------------------
    # filesystem layout (tmpfs in the paper)

    def inventory_bytes(self) -> bytes:
        w = ByteWriter().raw(_MAGICS["inventory"])
        w.u32(self.version).u64(self.clock_ns).u32(len(self.processes))
        for proc in self.processes:
            w.u64(proc.pid)
        return w.getvalue()

    def save(self, fs, directory: str) -> None:
        """Write all image files into ``directory`` of a kernel fs."""
        directory = directory.rstrip("/")
        faults.trip("image.save", detail=directory)
        fs.write_file(f"{directory}/inventory.img", self.inventory_bytes())
        for proc in self.processes:
            pid = proc.pid
            fs.write_file(f"{directory}/core-{pid}.img", proc.core.to_bytes())
            fs.write_file(f"{directory}/mm-{pid}.img", proc.mm.to_bytes())
            fs.write_file(f"{directory}/pagemap-{pid}.img", proc.pagemap.to_bytes())
            fs.write_file(f"{directory}/pages-{pid}.img", proc.pages.to_bytes())
            fs.write_file(f"{directory}/files-{pid}.img", proc.files.to_bytes())

    @classmethod
    def load(cls, fs, directory: str) -> "CheckpointImage":
        directory = directory.rstrip("/")
        r = _check_magic(fs.read_file(f"{directory}/inventory.img"), "inventory")
        version = r.u32()
        clock_ns = r.u64()
        pids = [r.u64() for __ in range(r.u32())]
        processes = []
        for pid in pids:
            processes.append(
                ProcessImage(
                    core=CoreImage.from_bytes(
                        fs.read_file(f"{directory}/core-{pid}.img")
                    ),
                    mm=MmImage.from_bytes(fs.read_file(f"{directory}/mm-{pid}.img")),
                    pagemap=PagemapImage.from_bytes(
                        fs.read_file(f"{directory}/pagemap-{pid}.img")
                    ),
                    pages=PagesImage.from_bytes(
                        fs.read_file(f"{directory}/pages-{pid}.img")
                    ),
                    files=FilesImage.from_bytes(
                        fs.read_file(f"{directory}/files-{pid}.img")
                    ),
                )
            )
        return cls(processes, clock_ns, version)
