"""Restore CRIU-style images into live processes.

Mirrors CRIU's restore pipeline:

* recreate each address space from the mm image — file-backed regions
  are first populated from the named binary (the page-fault-handler
  reconstruction vanilla CRIU relies on), then dumped pages from the
  pagemap/pages images are overlaid on top, so DynaCut's patched code
  pages win over the pristine binary content;
* reinstall registers and sigactions from the core image;
* rebuild the fd table: regular files reopen at their saved offsets,
  listening sockets rebind with their saved backlog, and established
  connections re-attach through TCP repair with their buffered bytes;
* reconstruct the loaded-module map from the file-backed VMAs, which
  is how the rewriter (and the PLT analysis) knows where libc lives.

Restored processes keep their original pids, parent links, and blocked
syscalls simply re-execute (every syscall in this kernel is
restartable), so a process frozen inside ``accept`` resumes waiting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import faults
from ..binfmt.self_format import SelfImage
from ..kernel.filesystem import O_CREAT, O_TRUNC
from ..kernel.kernel import Kernel
from ..kernel.memory import AddressSpace, FileBacking, PAGE_SIZE
from ..kernel.network import Endpoint, NetworkError, SocketDescriptor
from ..kernel.process import LoadedModule, Process, ProcessState
from ..kernel.signals import SigAction, Signal
from .costmodel import CriuCostModel, DEFAULT_COST_MODEL
from .images import CheckpointImage, ProcessImage


class RestoreError(RuntimeError):
    pass


@dataclass
class _UndoLog:
    """Side effects of an in-flight restore, in application order.

    A restore that fails halfway has already rebound listening ports,
    repaired TCP endpoints, and registered processes; unwinding these
    precisely is what lets the transactional engine retry the restore
    (or restore a different image) without double-repairing buffers or
    colliding on ports.
    """

    ports: list[int] = field(default_factory=list)
    #: (endpoint, reinstated-prefix length, closed flag before repair)
    repairs: list[tuple[Endpoint, int, bool]] = field(default_factory=list)
    #: (pid, table entry before registration — usually the dead original)
    registered: list[tuple[int, Process | None]] = field(default_factory=list)


def _unwind(kernel: Kernel, undo: _UndoLog) -> None:
    for pid, prior in reversed(undo.registered):
        if prior is None:
            kernel.processes.pop(pid, None)
        else:
            kernel.processes[pid] = prior
        kernel.detach_tracer(pid)
    for endpoint, prefix_len, was_closed in reversed(undo.repairs):
        del endpoint.recv_buffer[:prefix_len]
        endpoint.closed = was_closed
    for port in reversed(undo.ports):
        kernel.net.release_port(port)


def restore_tree(
    kernel: Kernel,
    checkpoint: CheckpointImage,
    cost_model: CriuCostModel = DEFAULT_COST_MODEL,
) -> list[Process]:
    """Restore every process of ``checkpoint``; returns them in image order.

    All-or-nothing: a failure mid-restore unwinds every side effect of
    the partial restore (registered pids, rebound ports, repaired
    endpoints) before re-raising, so the kernel is exactly as it was
    and the same — or a pristine — checkpoint can be restored next.
    """
    for pid in checkpoint.pids:
        existing = kernel.processes.get(pid)
        if existing is not None and existing.alive:
            raise RestoreError(f"pid {pid} is still alive; cannot restore over it")

    undo = _UndoLog()
    try:
        restored = [
            _restore_process(kernel, image, undo)
            for image in checkpoint.processes
        ]
    except Exception:
        _unwind(kernel, undo)
        raise

    # parent/child links within the restored tree
    by_pid = {proc.pid: proc for proc in restored}
    for proc in restored:
        parent = by_pid.get(proc.ppid)
        if parent is not None and proc.pid not in parent.children:
            parent.children.append(proc.pid)

    kernel.clock_ns += cost_model.restore_cost(
        checkpoint.total_pages(), len(restored)
    )
    return restored


def restore_from_dir(
    kernel: Kernel,
    image_dir: str,
    cost_model: CriuCostModel = DEFAULT_COST_MODEL,
) -> list[Process]:
    """Load images from the kernel fs and restore them."""
    checkpoint = CheckpointImage.load(kernel.fs, image_dir)
    return restore_tree(kernel, checkpoint, cost_model)


# ----------------------------------------------------------------------


def _restore_process(
    kernel: Kernel, image: ProcessImage, undo: _UndoLog
) -> Process:
    memory = _restore_memory(kernel, image)
    proc = Process(image.core.pid, image.core.ppid, image.core.binary, memory)

    regs = image.core.regs
    proc.regs.gpr = list(regs.gpr)
    proc.regs.rip = regs.rip
    proc.regs.zf = regs.zf
    proc.regs.lt = regs.lt

    for entry in image.core.sigactions:
        proc.sigactions[Signal(entry.signal)] = SigAction(
            entry.handler, entry.restorer
        )
    proc.next_fd = image.core.next_fd
    if image.core.syscall_filter is not None:
        proc.syscall_filter = frozenset(image.core.syscall_filter)
    proc.modules = _restore_modules(kernel, image)
    _restore_fds(kernel, proc, image, undo)

    proc.state = ProcessState.RUNNABLE
    undo.registered.append((proc.pid, kernel.processes.get(proc.pid)))
    kernel.processes[proc.pid] = proc
    return proc


def _restore_memory(kernel: Kernel, image: ProcessImage) -> AddressSpace:
    faults.trip("restore.memory", detail=f"pid={image.pid}")
    claimed = sum(entry.size for entry in image.pagemap.entries)
    if claimed != len(image.pages.data):
        raise RestoreError(
            f"pid {image.pid}: pagemap claims {claimed} bytes of pages but "
            f"the pages image holds {len(image.pages.data)} (corrupt dump?)"
        )
    memory = AddressSpace()
    for vma in image.mm.vmas:
        backing = None
        if vma.file_path:
            backing = FileBacking(vma.file_path, vma.file_offset)
        memory.mmap(vma.start, vma.size, vma.perms, backing=backing, tag=vma.tag)
        if backing is not None:
            _populate_from_binary(kernel, memory, vma.start, vma.size, backing)
    # overlay the dumped pages (patched code pages included)
    cursor = 0
    for entry in image.pagemap.entries:
        data = image.pages.data[cursor:cursor + entry.size]
        cursor += entry.size
        memory.write_raw(entry.vaddr, data)
    return memory


def _populate_from_binary(
    kernel: Kernel,
    memory: AddressSpace,
    start: int,
    size: int,
    backing: FileBacking,
) -> None:
    binary = kernel.binaries.get(backing.path)
    if binary is None:
        raise RestoreError(f"backing binary {backing.path!r} not registered")
    for page_offset in range(0, size, PAGE_SIZE):
        file_offset = backing.offset + page_offset
        data = _read_image_page(binary, file_offset)
        if data is not None:
            memory.write_raw(start + page_offset, data)


def _read_image_page(binary: SelfImage, vaddr: int) -> bytes | None:
    """One page of file content at link-relative ``vaddr`` (None if hole)."""
    for seg in binary.segments:
        if seg.vaddr <= vaddr < seg.vaddr + max(len(seg.data), 1):
            offset = vaddr - seg.vaddr
            chunk = seg.data[offset:offset + PAGE_SIZE]
            if not chunk:
                return None
            return chunk + b"\x00" * (PAGE_SIZE - len(chunk))
    return None


def _restore_modules(kernel: Kernel, image: ProcessImage) -> list[LoadedModule]:
    bases: dict[str, int] = {}
    for vma in image.mm.vmas:
        if not vma.file_path:
            continue
        base = vma.start - vma.file_offset
        previous = bases.get(vma.file_path)
        if previous is None or base < previous:
            bases[vma.file_path] = base
    modules: list[LoadedModule] = []
    main = image.core.binary
    ordered = sorted(bases, key=lambda name: (name != main, bases[name]))
    for name in ordered:
        binary = kernel.binaries.get(name)
        if binary is None:
            raise RestoreError(f"module binary {name!r} not registered")
        modules.append(LoadedModule(binary, bases[name]))
    return modules


def _restore_fds(
    kernel: Kernel, proc: Process, image: ProcessImage, undo: _UndoLog
) -> None:
    faults.trip("restore.fds", detail=f"pid={image.pid}")
    for entry in image.files.fds:
        if entry.kind == "file":
            flags = entry.flags & ~(O_TRUNC | O_CREAT)
            handle = kernel.fs.open(entry.path, flags | O_CREAT)
            if handle is None:
                raise RestoreError(f"cannot reopen {entry.path!r}")
            handle.flags = entry.flags
            handle.offset = entry.offset
            proc.fds[entry.fd] = handle
        elif entry.kind == "socket-listen":
            sock = SocketDescriptor()
            sock.bound_port = entry.port
            sock.listener = kernel.net.rebind_listener(
                entry.port, entry.pending_conns
            )
            undo.ports.append(entry.port)
            proc.fds[entry.fd] = sock
        elif entry.kind == "socket-conn":
            sock = SocketDescriptor()
            try:
                prior_closed = _endpoint_closed(kernel, entry.conn_id, entry.side)
                sock.endpoint = kernel.net.repair_endpoint(
                    entry.conn_id, entry.side, entry.recv_buffer
                )
                undo.repairs.append(
                    (sock.endpoint, len(entry.recv_buffer), prior_closed)
                )
            except NetworkError:
                # peer vanished while we were down: a dead endpoint (EOF)
                dead = Endpoint(entry.conn_id, entry.side)
                dead.recv_buffer = bytearray(entry.recv_buffer)
                dead.closed = False
                sock.endpoint = dead
            proc.fds[entry.fd] = sock
        elif entry.kind == "socket-raw":
            sock = SocketDescriptor()
            sock.bound_port = entry.port or None
            proc.fds[entry.fd] = sock
        else:
            raise RestoreError(f"unknown fd kind {entry.kind!r}")


def _endpoint_closed(kernel: Kernel, conn_id: int, side: str) -> bool:
    """The ``closed`` flag a repair is about to clear (for the undo log)."""
    conn = kernel.net.connections.get(conn_id)
    if conn is None:
        return False  # repair_endpoint will raise; value never recorded
    return conn.endpoint(side).closed
