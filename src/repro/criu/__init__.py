"""Checkpoint/restore in userspace (the CRIU + CRIT analogue)."""

from .images import (
    CheckpointImage,
    CoreImage,
    FdEntryImage,
    FilesImage,
    ImageError,
    MmImage,
    PagemapEntry,
    PagemapImage,
    PagesImage,
    ProcessImage,
    RegsImage,
    SigactionEntry,
    VmaEntry,
)
from .costmodel import DEFAULT_COST_MODEL, CriuCostModel, MS, US
from .checkpoint import (
    CheckpointError,
    DEFAULT_IMAGE_DIR,
    checkpoint_tree,
    process_tree_pids,
)
from .restore import RestoreError, restore_from_dir, restore_tree
from . import crit

__all__ = [
    "CheckpointError",
    "CheckpointImage",
    "CoreImage",
    "CriuCostModel",
    "DEFAULT_COST_MODEL",
    "DEFAULT_IMAGE_DIR",
    "FdEntryImage",
    "FilesImage",
    "ImageError",
    "MS",
    "MmImage",
    "PagemapEntry",
    "PagemapImage",
    "PagesImage",
    "ProcessImage",
    "RegsImage",
    "RestoreError",
    "SigactionEntry",
    "US",
    "VmaEntry",
    "checkpoint_tree",
    "crit",
    "process_tree_pids",
    "restore_from_dir",
    "restore_tree",
]
