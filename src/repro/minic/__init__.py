"""MiniC: the small C-like language guest applications are written in."""

from .lexer import LexError, Token, TokenKind, tokenize
from .parser import ParseError, parse
from .codegen import (
    BUILTINS,
    CompileError,
    compile_source,
    compile_to_assembly,
)

__all__ = [
    "BUILTINS",
    "CompileError",
    "LexError",
    "ParseError",
    "Token",
    "TokenKind",
    "compile_source",
    "compile_to_assembly",
    "parse",
    "tokenize",
]
