"""MiniC code generator: AST -> VM64 assembly -> object module.

The generator is a straightforward single-accumulator scheme: every
expression leaves its value in ``r0``, with intermediate results pushed
to the stack.  It is not an optimizing compiler — and that is a
feature for this reproduction: the emitted code has the plain
basic-block structure (dispatcher compare chains, per-feature handler
functions) that DynaCut's trace-diff analysis expects from ``-O0``-ish
server binaries.

Calling convention (matches ``repro.isa``): arguments in ``r1..r6``,
return value in ``r0``, ``fp``/``sp`` callee-maintained via the
standard prologue/epilogue.
"""

from __future__ import annotations

from ..binfmt.object import ObjectModule
from ..isa.assembler import assemble
from .ast import (
    AsmStmt,
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    Expr,
    ExprStmt,
    FuncDecl,
    IfStmt,
    IndexAssignStmt,
    IndexExpr,
    NameExpr,
    NumberExpr,
    Program,
    ReturnStmt,
    Stmt,
    StringExpr,
    SwitchStmt,
    UnaryExpr,
    VarDeclStmt,
    WhileStmt,
)
from .parser import parse

#: builtins handled inline by the code generator
BUILTINS = frozenset({"load8", "load64", "store8", "store64", "syscall"})

_CMP_JUMPS = {
    "==": "je", "!=": "jne", "<": "jl", "<=": "jle", ">": "jg", ">=": "jge",
}
_ARITH_OPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
}


class CompileError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class _FunctionContext:
    """Per-function state: locals, labels, loop stack."""

    def __init__(self, func: FuncDecl):
        self.func = func
        self.locals: dict[str, tuple[str, int]] = {}  # name -> (kind, fp offset)
        self.frame_size = 0
        self.loop_stack: list[tuple[str, str]] = []   # (break label, continue label)

    def add_scalar(self, name: str, line: int) -> int:
        # MiniC has function-wide scope: re-declaring the same scalar in
        # disjoint branches shares one slot (old-C style)
        if name in self.locals:
            kind, offset = self.locals[name]
            if kind != "scalar":
                raise CompileError(f"local {name!r} redeclared as scalar", line)
            return offset
        self.frame_size += 8
        offset = self.frame_size
        self.locals[name] = ("scalar", offset)
        return offset

    def add_array(self, name: str, size: int, line: int) -> int:
        if name in self.locals:
            raise CompileError(f"duplicate local array {name!r}", line)
        self.frame_size += -(-size // 8) * 8
        offset = self.frame_size
        self.locals[name] = ("array", offset)
        return offset


class CodeGenerator:
    """Compiles one MiniC :class:`Program` into assembly text."""

    def __init__(self, program: Program, module_name: str):
        self.program = program
        self.module_name = module_name
        self.text: list[str] = []
        self.rodata: list[str] = []
        self.data: list[str] = []
        self.bss: list[str] = []
        self._strings: dict[str, str] = {}
        self._label_counter = 0
        self._global_kinds: dict[str, str] = {}   # name -> "scalar" | "array"
        self._function_names = {f.name for f in program.functions}
        self._extern_names = set(program.externs)

    # ------------------------------------------------------------------

    def generate(self, entry: bool = True) -> str:
        """Produce full assembly; ``entry`` adds the ``_start`` shim."""
        self._collect_globals()
        if entry:
            if "main" not in self._function_names:
                raise CompileError("program has no main function", 0)
            self._emit_start_shim()
        for func in self.program.functions:
            self._function(func)
        return self._render()

    def _render(self) -> str:
        parts = [".section text"]
        parts += self.text
        if self.rodata:
            parts.append(".section rodata")
            parts += self.rodata
        if self.data:
            parts.append(".section data")
            parts += self.data
        if self.bss:
            parts.append(".section bss")
            parts += self.bss
        return "\n".join(parts) + "\n"

    # ------------------------------------------------------------------
    # emission helpers

    def _emit(self, line: str) -> None:
        self.text.append("    " + line)

    def _label(self, label: str) -> None:
        self.text.append(label + ":")

    def _new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"_L{hint}_{self._label_counter}"

    def _intern_string(self, value: str) -> str:
        label = self._strings.get(value)
        if label is None:
            label = f"_Lstr_{len(self._strings)}"
            self._strings[value] = label
            escaped = (
                value.encode("unicode_escape").decode("ascii").replace('"', '\\"')
            )
            self.rodata.append(f'{label}: .asciiz "{escaped}"')
        return label

    # ------------------------------------------------------------------
    # globals and entry shim

    def _collect_globals(self) -> None:
        for decl in self.program.globals:
            if decl.name in self._global_kinds:
                raise CompileError(f"duplicate global {decl.name!r}", decl.line)
            if decl.size is not None:
                self._global_kinds[decl.name] = "array"
                size = -(-decl.size // 8) * 8
                self.bss.append(f".global {decl.name}")
                self.bss.append(f"{decl.name}: .space {size}")
            else:
                self._global_kinds[decl.name] = "scalar"
                if decl.init is None:
                    self.bss.append(f".global {decl.name}")
                    self.bss.append(f"{decl.name}: .space 8")
                elif isinstance(decl.init, NumberExpr):
                    self.data.append(f".global {decl.name}")
                    self.data.append(f"{decl.name}: .quad {decl.init.value}")
                elif isinstance(decl.init, StringExpr):
                    label = self._intern_string(decl.init.value)
                    self.data.append(f".global {decl.name}")
                    self.data.append(f"{decl.name}: .quad @{label}")
                else:  # pragma: no cover - parser restricts initializers
                    raise CompileError("bad global initializer", decl.line)

    def _emit_start_shim(self) -> None:
        self.text.append(".global _start")
        self._label("_start")
        # the loader leaves argc in r1 and argv in r2 — pass them through
        self._emit("call main")
        self._emit("mov r1, r0")
        self._emit("movi r0, 1")          # SYS_EXIT
        self._emit("syscall")

    # ------------------------------------------------------------------
    # functions

    def _function(self, func: FuncDecl) -> None:
        ctx = _FunctionContext(func)
        for param in func.params:
            ctx.add_scalar(param, func.line)
        self._predeclare_locals(ctx, func.body)

        frame = -(-ctx.frame_size // 16) * 16
        self.text.append(f".global {func.name}")
        self._label(func.name)
        self._emit("push fp")
        self._emit("mov fp, sp")
        if frame:
            self._emit(f"subi sp, {frame}")
        for index, param in enumerate(func.params):
            __, offset = ctx.locals[param]
            self._emit(f"st64 [fp-{offset}], r{index + 1}")

        for stmt in func.body:
            self._statement(ctx, stmt)

        # implicit return 0 at the end of the body
        self._emit("movi r0, 0")
        self._emit("mov sp, fp")
        self._emit("pop fp")
        self._emit("ret")

    def _predeclare_locals(self, ctx: _FunctionContext, body: tuple[Stmt, ...]) -> None:
        """Function-wide scoping: collect every var decl up front."""
        for stmt in body:
            if isinstance(stmt, VarDeclStmt):
                if stmt.size is not None:
                    ctx.add_array(stmt.name, stmt.size, stmt.line)
                else:
                    ctx.add_scalar(stmt.name, stmt.line)
            elif isinstance(stmt, IfStmt):
                self._predeclare_locals(ctx, stmt.then_body)
                self._predeclare_locals(ctx, stmt.else_body)
            elif isinstance(stmt, WhileStmt):
                self._predeclare_locals(ctx, stmt.body)
            elif isinstance(stmt, SwitchStmt):
                for case in stmt.cases:
                    self._predeclare_locals(ctx, case.body)
                if stmt.default is not None:
                    self._predeclare_locals(ctx, stmt.default)

    # ------------------------------------------------------------------
    # statements

    def _statement(self, ctx: _FunctionContext, stmt: Stmt) -> None:
        if isinstance(stmt, VarDeclStmt):
            if stmt.init is not None:
                self._expression(ctx, stmt.init)
                __, offset = ctx.locals[stmt.name]
                self._emit(f"st64 [fp-{offset}], r0")
        elif isinstance(stmt, AssignStmt):
            self._expression(ctx, stmt.value)
            self._store_name(ctx, stmt.name, stmt.line)
        elif isinstance(stmt, IndexAssignStmt):
            self._expression(ctx, stmt.value)
            self._emit("push r0")
            self._expression(ctx, stmt.index)
            self._emit("push r0")
            self._address_of(ctx, stmt.name, stmt.line)
            self._emit("pop r1")          # index
            self._emit("add r0, r1")
            self._emit("pop r1")          # value
            self._emit("st8 [r0], r1")
        elif isinstance(stmt, ExprStmt):
            self._expression(ctx, stmt.expr)
        elif isinstance(stmt, IfStmt):
            self._if(ctx, stmt)
        elif isinstance(stmt, WhileStmt):
            self._while(ctx, stmt)
        elif isinstance(stmt, SwitchStmt):
            self._switch(ctx, stmt)
        elif isinstance(stmt, BreakStmt):
            if not ctx.loop_stack:
                raise CompileError("break outside loop/switch", stmt.line)
            self._emit(f"jmp {ctx.loop_stack[-1][0]}")
        elif isinstance(stmt, ContinueStmt):
            target = next(
                (cont for __, cont in reversed(ctx.loop_stack) if cont), None
            )
            if target is None:
                raise CompileError("continue outside loop", stmt.line)
            self._emit(f"jmp {target}")
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                self._expression(ctx, stmt.value)
            else:
                self._emit("movi r0, 0")
            self._emit("mov sp, fp")
            self._emit("pop fp")
            self._emit("ret")
        elif isinstance(stmt, AsmStmt):
            for line in stmt.text.splitlines():
                line = line.strip()
                if line:
                    self._emit(line)
        else:  # pragma: no cover - parser and codegen must agree
            raise CompileError(f"unhandled statement {type(stmt).__name__}", stmt.line)

    def _if(self, ctx: _FunctionContext, stmt: IfStmt) -> None:
        else_label = self._new_label("else")
        end_label = self._new_label("endif")
        self._condition(ctx, stmt.condition, false_target=else_label)
        for inner in stmt.then_body:
            self._statement(ctx, inner)
        if stmt.else_body:
            self._emit(f"jmp {end_label}")
            self._label(else_label)
            for inner in stmt.else_body:
                self._statement(ctx, inner)
            self._label(end_label)
        else:
            self._label(else_label)

    def _while(self, ctx: _FunctionContext, stmt: WhileStmt) -> None:
        head = self._new_label("while")
        end = self._new_label("endwhile")
        self._label(head)
        self._condition(ctx, stmt.condition, false_target=end)
        ctx.loop_stack.append((end, head))
        for inner in stmt.body:
            self._statement(ctx, inner)
        ctx.loop_stack.pop()
        self._emit(f"jmp {head}")
        self._label(end)

    def _switch(self, ctx: _FunctionContext, stmt: SwitchStmt) -> None:
        """The dispatcher pattern: one compare chain, one label per case."""
        end = self._new_label("endswitch")
        default = self._new_label("default") if stmt.default is not None else end
        case_labels = [self._new_label("case") for __ in stmt.cases]

        self._expression(ctx, stmt.selector)
        for case, label in zip(stmt.cases, case_labels):
            self._emit(f"cmpi r0, {case.value}")
            self._emit(f"je {label}")
        self._emit(f"jmp {default}")

        ctx.loop_stack.append((end, ""))  # break exits the switch
        for case, label in zip(stmt.cases, case_labels):
            self._label(label)
            for inner in case.body:
                self._statement(ctx, inner)
            self._emit(f"jmp {end}")
        if stmt.default is not None:
            self._label(default)
            for inner in stmt.default:
                self._statement(ctx, inner)
        ctx.loop_stack.pop()
        self._label(end)

    def _condition(self, ctx: _FunctionContext, expr: Expr, false_target: str) -> None:
        """Evaluate ``expr`` for control flow; jump when false."""
        self._expression(ctx, expr)
        self._emit("cmpi r0, 0")
        self._emit(f"je {false_target}")

    # ------------------------------------------------------------------
    # expressions

    def _expression(self, ctx: _FunctionContext, expr: Expr) -> None:
        if isinstance(expr, NumberExpr):
            self._emit(f"movi r0, {expr.value}")
        elif isinstance(expr, StringExpr):
            label = self._intern_string(expr.value)
            self._emit(f"movi r0, @{label}")
        elif isinstance(expr, NameExpr):
            self._load_name(ctx, expr.name, expr.line)
        elif isinstance(expr, UnaryExpr):
            self._expression(ctx, expr.operand)
            if expr.op == "-":
                self._emit("neg r0")
            elif expr.op == "~":
                self._emit("not r0")
            else:  # "!"
                true_label = self._new_label("not1")
                end_label = self._new_label("notend")
                self._emit("cmpi r0, 0")
                self._emit(f"je {true_label}")
                self._emit("movi r0, 0")
                self._emit(f"jmp {end_label}")
                self._label(true_label)
                self._emit("movi r0, 1")
                self._label(end_label)
        elif isinstance(expr, BinaryExpr):
            self._binary(ctx, expr)
        elif isinstance(expr, IndexExpr):
            self._expression(ctx, expr.index)
            self._emit("push r0")
            self._address_of(ctx, expr.name, expr.line)
            self._emit("pop r1")
            self._emit("add r0, r1")
            self._emit("ld8 r0, [r0]")
        elif isinstance(expr, CallExpr):
            self._call(ctx, expr)
        else:  # pragma: no cover
            raise CompileError(f"unhandled expression {type(expr).__name__}", expr.line)

    def _binary(self, ctx: _FunctionContext, expr: BinaryExpr) -> None:
        if expr.op == "&&":
            false_label = self._new_label("andf")
            end_label = self._new_label("andend")
            self._expression(ctx, expr.left)
            self._emit("cmpi r0, 0")
            self._emit(f"je {false_label}")
            self._expression(ctx, expr.right)
            self._emit("cmpi r0, 0")
            self._emit(f"je {false_label}")
            self._emit("movi r0, 1")
            self._emit(f"jmp {end_label}")
            self._label(false_label)
            self._emit("movi r0, 0")
            self._label(end_label)
            return
        if expr.op == "||":
            true_label = self._new_label("ort")
            end_label = self._new_label("orend")
            self._expression(ctx, expr.left)
            self._emit("cmpi r0, 0")
            self._emit(f"jne {true_label}")
            self._expression(ctx, expr.right)
            self._emit("cmpi r0, 0")
            self._emit(f"jne {true_label}")
            self._emit("movi r0, 0")
            self._emit(f"jmp {end_label}")
            self._label(true_label)
            self._emit("movi r0, 1")
            self._label(end_label)
            return

        self._expression(ctx, expr.left)
        self._emit("push r0")
        self._expression(ctx, expr.right)
        self._emit("mov r1, r0")
        self._emit("pop r0")
        if expr.op in _ARITH_OPS:
            self._emit(f"{_ARITH_OPS[expr.op]} r0, r1")
            return
        jump = _CMP_JUMPS.get(expr.op)
        if jump is None:  # pragma: no cover - parser restricts operators
            raise CompileError(f"unhandled operator {expr.op!r}", expr.line)
        true_label = self._new_label("cmpt")
        end_label = self._new_label("cmpend")
        self._emit("cmp r0, r1")
        self._emit(f"{jump} {true_label}")
        self._emit("movi r0, 0")
        self._emit(f"jmp {end_label}")
        self._label(true_label)
        self._emit("movi r0, 1")
        self._label(end_label)

    # ------------------------------------------------------------------
    # names

    def _load_name(self, ctx: _FunctionContext, name: str, line: int) -> None:
        if name in ctx.locals:
            kind, offset = ctx.locals[name]
            if kind == "scalar":
                self._emit(f"ld64 r0, [fp-{offset}]")
            else:
                self._emit("mov r0, fp")
                self._emit(f"subi r0, {offset}")
            return
        if name in self.program.constants:
            self._emit(f"movi r0, {self.program.constants[name]}")
            return
        kind = self._global_kinds.get(name)
        if kind == "scalar":
            self._emit(f"movi r0, @{name}")
            self._emit("ld64 r0, [r0]")
            return
        if kind == "array":
            self._emit(f"movi r0, @{name}")
            return
        if name in self._function_names or name in self._extern_names:
            self._emit(f"movi r0, @{name}")   # function address
            return
        raise CompileError(f"undefined name {name!r}", line)

    def _store_name(self, ctx: _FunctionContext, name: str, line: int) -> None:
        if name in ctx.locals:
            kind, offset = ctx.locals[name]
            if kind != "scalar":
                raise CompileError(f"cannot assign to array {name!r}", line)
            self._emit(f"st64 [fp-{offset}], r0")
            return
        if self._global_kinds.get(name) == "scalar":
            self._emit(f"movi r2, @{name}")
            self._emit("st64 [r2], r0")
            return
        raise CompileError(f"cannot assign to {name!r}", line)

    def _address_of(self, ctx: _FunctionContext, name: str, line: int) -> None:
        """Base address for indexing: arrays decay, scalars dereference."""
        if name in ctx.locals:
            kind, offset = ctx.locals[name]
            if kind == "array":
                self._emit("mov r0, fp")
                self._emit(f"subi r0, {offset}")
            else:
                self._emit(f"ld64 r0, [fp-{offset}]")
            return
        kind = self._global_kinds.get(name)
        if kind == "array":
            self._emit(f"movi r0, @{name}")
            return
        if kind == "scalar":
            self._emit(f"movi r0, @{name}")
            self._emit("ld64 r0, [r0]")
            return
        raise CompileError(f"cannot index {name!r}", line)

    # ------------------------------------------------------------------
    # calls

    def _call(self, ctx: _FunctionContext, expr: CallExpr) -> None:
        if expr.callee in BUILTINS:
            self._builtin(ctx, expr)
            return
        if len(expr.args) > 6:
            raise CompileError("at most 6 arguments are supported", expr.line)
        for arg in expr.args:
            self._expression(ctx, arg)
            self._emit("push r0")
        is_direct = (
            expr.callee in self._function_names or expr.callee in self._extern_names
        )
        if not is_direct:
            # indirect call through a variable holding a function pointer
            self._load_name(ctx, expr.callee, expr.line)
            self._emit("mov r10, r0")
        for index in range(len(expr.args), 0, -1):
            self._emit(f"pop r{index}")
        if is_direct:
            self._emit(f"call {expr.callee}")
        else:
            self._emit("callr r10")

    def _builtin(self, ctx: _FunctionContext, expr: CallExpr) -> None:
        name = expr.callee

        def expect(count: int) -> None:
            if len(expr.args) != count:
                raise CompileError(
                    f"{name} expects {count} argument(s), got {len(expr.args)}",
                    expr.line,
                )

        if name == "load8":
            expect(1)
            self._expression(ctx, expr.args[0])
            self._emit("ld8 r0, [r0]")
        elif name == "load64":
            expect(1)
            self._expression(ctx, expr.args[0])
            self._emit("ld64 r0, [r0]")
        elif name == "store8":
            expect(2)
            self._expression(ctx, expr.args[0])
            self._emit("push r0")
            self._expression(ctx, expr.args[1])
            self._emit("pop r1")
            self._emit("st8 [r1], r0")
        elif name == "store64":
            expect(2)
            self._expression(ctx, expr.args[0])
            self._emit("push r0")
            self._expression(ctx, expr.args[1])
            self._emit("pop r1")
            self._emit("st64 [r1], r0")
        else:  # syscall(n, args...)
            if not 1 <= len(expr.args) <= 7:
                raise CompileError("syscall expects 1..7 arguments", expr.line)
            for arg in expr.args:
                self._expression(ctx, arg)
                self._emit("push r0")
            for index in range(len(expr.args) - 1, -1, -1):
                self._emit(f"pop r{index}")
            self._emit("syscall")


def compile_source(
    source: str, module_name: str, entry: bool = True
) -> ObjectModule:
    """Compile MiniC ``source`` into a relocatable object module.

    ``entry=True`` (default, for executables) emits the ``_start`` shim
    calling ``main``; shared libraries pass ``entry=False``.
    """
    program = parse(source)
    asm_text = CodeGenerator(program, module_name).generate(entry=entry)
    return assemble(asm_text, module_name)


def compile_to_assembly(source: str, module_name: str, entry: bool = True) -> str:
    """Compile MiniC to assembly text (for inspection and tests)."""
    program = parse(source)
    return CodeGenerator(program, module_name).generate(entry=entry)
