"""MiniC lexer.

MiniC is the small C-like language the guest applications are written
in.  Everything is a 64-bit integer; byte buffers are manipulated
through ``load8``/``store8`` builtins; strings are pointers into
rodata.  The lexer produces a flat token stream with line numbers for
error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class TokenKind(Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {"var", "const", "func", "extern", "if", "else", "while", "switch",
     "case", "default", "break", "continue", "return", "asm"}
)

#: Multi-character operators, longest first so maximal munch works.
_PUNCTS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ",", ";", ":",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str | int
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.value!r}, line {self.line})"


class LexError(ValueError):
    """Raised on characters or literals the lexer cannot understand."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


def tokenize(source: str) -> list[Token]:
    """Lex MiniC ``source`` into tokens, ending with one EOF token."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if ch.isalpha() or ch == "_":
            end = pos + 1
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            word = source[pos:end]
            kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, word, line))
            pos = end
            continue
        if ch.isdigit():
            end = pos + 1
            if source.startswith("0x", pos) or source.startswith("0X", pos):
                end = pos + 2
                while end < length and source[end] in "0123456789abcdefABCDEF":
                    end += 1
            else:
                while end < length and source[end].isdigit():
                    end += 1
            try:
                value = int(source[pos:end], 0)
            except ValueError:
                raise LexError(f"bad number {source[pos:end]!r}", line) from None
            tokens.append(Token(TokenKind.NUMBER, value, line))
            pos = end
            continue
        if ch == "'":
            end = pos + 1
            body = []
            while end < length and source[end] != "'":
                if source[end] == "\\" and end + 1 < length:
                    body.append(source[end:end + 2])
                    end += 2
                else:
                    body.append(source[end])
                    end += 1
            if end >= length:
                raise LexError("unterminated character literal", line)
            text = "".join(body).encode().decode("unicode_escape")
            if len(text) != 1:
                raise LexError(f"bad character literal {''.join(body)!r}", line)
            tokens.append(Token(TokenKind.NUMBER, ord(text), line))
            pos = end + 1
            continue
        if ch == '"':
            end = pos + 1
            body = []
            while end < length and source[end] != '"':
                if source[end] == "\\" and end + 1 < length:
                    body.append(source[end:end + 2])
                    end += 2
                else:
                    if source[end] == "\n":
                        raise LexError("newline in string literal", line)
                    body.append(source[end])
                    end += 1
            if end >= length:
                raise LexError("unterminated string literal", line)
            text = "".join(body).encode().decode("unicode_escape")
            tokens.append(Token(TokenKind.STRING, text, line))
            pos = end + 1
            continue
        for punct in _PUNCTS:
            if source.startswith(punct, pos):
                tokens.append(Token(TokenKind.PUNCT, punct, line))
                pos += len(punct)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token(TokenKind.EOF, "", line))
    return tokens
