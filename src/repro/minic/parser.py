"""Recursive-descent parser for MiniC.

Grammar (EBNF-ish)::

    program    := (func | global | const | extern)*
    extern     := "extern" "func" IDENT ";"
    const      := "const" IDENT "=" NUMBER ";"
    global     := "var" IDENT ("[" NUMBER "]")? ("=" (NUMBER|STRING))? ";"
    func       := "func" IDENT "(" params? ")" block
    block      := "{" stmt* "}"
    stmt       := vardecl | assign | exprstmt | if | while | switch
                | break | continue | return | asm | block
    vardecl    := "var" IDENT ("[" NUMBER "]")? ("=" expr)? ";"
    assign     := IDENT "=" expr ";"  |  IDENT "[" expr "]" "=" expr ";"
    if         := "if" "(" expr ")" block ("else" (if | block))?
    while      := "while" "(" expr ")" block
    switch     := "switch" "(" expr ")" "{" case* default? "}"
    case       := "case" NUMBER ":" stmt*
    asm        := "asm" "(" STRING ")" ";"
    expr       := logical-or with usual C precedence, plus
                  IDENT "(" args ")" calls and IDENT "[" expr "]" byte loads

Notes:

* ``a[i]`` reads/writes a single **byte** (the common case for buffer
  code); 64-bit access uses the ``load64``/``store64`` builtins;
* switch cases accept integer literals, character literals and
  ``const`` names, and do not fall through.
"""

from __future__ import annotations

from .ast import (
    AsmStmt,
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    ConstDecl,
    ContinueStmt,
    ExprStmt,
    FuncDecl,
    GlobalVar,
    IfStmt,
    IndexAssignStmt,
    IndexExpr,
    NameExpr,
    NumberExpr,
    Program,
    ReturnStmt,
    Stmt,
    StringExpr,
    SwitchCase,
    SwitchStmt,
    UnaryExpr,
    VarDeclStmt,
    WhileStmt,
    Expr,
)
from .lexer import Token, TokenKind, tokenize


class ParseError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


#: binary operator precedence (higher binds tighter)
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.program = Program()

    # ------------------------------------------------------------------
    # token helpers

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check(self, kind: TokenKind, value: str | None = None) -> bool:
        token = self._peek()
        return token.kind is kind and (value is None or token.value == value)

    def _accept(self, kind: TokenKind, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._next()
        return None

    def _expect(self, kind: TokenKind, value: str | None = None) -> Token:
        token = self._peek()
        if not self._check(kind, value):
            wanted = value if value is not None else kind.value
            raise ParseError(f"expected {wanted!r}, got {token.value!r}", token.line)
        return self._next()

    def _expect_punct(self, value: str) -> Token:
        return self._expect(TokenKind.PUNCT, value)

    def _expect_keyword(self, value: str) -> Token:
        return self._expect(TokenKind.KEYWORD, value)

    # ------------------------------------------------------------------
    # top level

    def parse(self) -> Program:
        while not self._check(TokenKind.EOF):
            token = self._peek()
            if self._check(TokenKind.KEYWORD, "func"):
                self.program.functions.append(self._function())
            elif self._check(TokenKind.KEYWORD, "var"):
                self.program.globals.append(self._global_var())
            elif self._check(TokenKind.KEYWORD, "const"):
                decl = self._const()
                self.program.constants[decl.name] = decl.value
            elif self._check(TokenKind.KEYWORD, "extern"):
                self.program.externs.append(self._extern())
            else:
                raise ParseError(
                    f"expected top-level declaration, got {token.value!r}",
                    token.line,
                )
        return self.program

    def _extern(self) -> str:
        self._expect_keyword("extern")
        self._expect_keyword("func")
        name = self._expect(TokenKind.IDENT)
        self._expect_punct(";")
        return str(name.value)

    def _const(self) -> ConstDecl:
        line = self._expect_keyword("const").line
        name = str(self._expect(TokenKind.IDENT).value)
        self._expect_punct("=")
        negative = self._accept(TokenKind.PUNCT, "-") is not None
        number = self._expect(TokenKind.NUMBER)
        self._expect_punct(";")
        value = -int(number.value) if negative else int(number.value)
        return ConstDecl(name, value, line)

    def _global_var(self) -> GlobalVar:
        line = self._expect_keyword("var").line
        name = str(self._expect(TokenKind.IDENT).value)
        size: int | None = None
        init: Expr | None = None
        if self._accept(TokenKind.PUNCT, "["):
            size_tok = self._expect(TokenKind.NUMBER)
            size = int(size_tok.value)
            self._expect_punct("]")
        if self._accept(TokenKind.PUNCT, "="):
            token = self._peek()
            if token.kind is TokenKind.NUMBER:
                self._next()
                init = NumberExpr(token.line, int(token.value))
            elif token.kind is TokenKind.STRING:
                self._next()
                init = StringExpr(token.line, str(token.value))
            elif token.kind is TokenKind.PUNCT and token.value == "-":
                self._next()
                number = self._expect(TokenKind.NUMBER)
                init = NumberExpr(number.line, -int(number.value))
            else:
                raise ParseError(
                    "global initializer must be a number or string literal",
                    token.line,
                )
        self._expect_punct(";")
        if size is not None and init is not None:
            raise ParseError("array globals cannot have initializers", line)
        return GlobalVar(name, size, init, line)

    def _function(self) -> FuncDecl:
        line = self._expect_keyword("func").line
        name = str(self._expect(TokenKind.IDENT).value)
        self._expect_punct("(")
        params: list[str] = []
        if not self._check(TokenKind.PUNCT, ")"):
            while True:
                params.append(str(self._expect(TokenKind.IDENT).value))
                if not self._accept(TokenKind.PUNCT, ","):
                    break
        self._expect_punct(")")
        if len(params) > 6:
            raise ParseError("at most 6 parameters are supported", line)
        body = self._block()
        return FuncDecl(name, tuple(params), body, line)

    # ------------------------------------------------------------------
    # statements

    def _block(self) -> tuple[Stmt, ...]:
        self._expect_punct("{")
        body: list[Stmt] = []
        while not self._check(TokenKind.PUNCT, "}"):
            if self._check(TokenKind.EOF):
                raise ParseError("unexpected end of file in block", self._peek().line)
            body.append(self._statement())
        self._expect_punct("}")
        return tuple(body)

    def _statement(self) -> Stmt:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD:
            keyword = str(token.value)
            if keyword == "var":
                return self._var_decl()
            if keyword == "if":
                return self._if()
            if keyword == "while":
                return self._while()
            if keyword == "switch":
                return self._switch()
            if keyword == "break":
                self._next()
                self._expect_punct(";")
                return BreakStmt(token.line)
            if keyword == "continue":
                self._next()
                self._expect_punct(";")
                return ContinueStmt(token.line)
            if keyword == "return":
                self._next()
                value = None
                if not self._check(TokenKind.PUNCT, ";"):
                    value = self._expression()
                self._expect_punct(";")
                return ReturnStmt(token.line, value)
            if keyword == "asm":
                self._next()
                self._expect_punct("(")
                text = self._expect(TokenKind.STRING)
                self._expect_punct(")")
                self._expect_punct(";")
                return AsmStmt(token.line, str(text.value))
            raise ParseError(f"unexpected keyword {keyword!r}", token.line)
        if token.kind is TokenKind.IDENT:
            # assignment, indexed assignment, or expression statement
            if self._peek(1).kind is TokenKind.PUNCT and self._peek(1).value == "=":
                name = str(self._next().value)
                self._next()  # "="
                value = self._expression()
                self._expect_punct(";")
                return AssignStmt(token.line, name, value)
            if self._peek(1).kind is TokenKind.PUNCT and self._peek(1).value == "[":
                saved = self.pos
                name = str(self._next().value)
                self._next()  # "["
                index = self._expression()
                self._expect_punct("]")
                if self._accept(TokenKind.PUNCT, "="):
                    value = self._expression()
                    self._expect_punct(";")
                    return IndexAssignStmt(token.line, name, index, value)
                self.pos = saved  # it was an expression like f(a[i]);... re-parse
        expr = self._expression()
        self._expect_punct(";")
        return ExprStmt(expr.line, expr)

    def _var_decl(self) -> VarDeclStmt:
        line = self._expect_keyword("var").line
        name = str(self._expect(TokenKind.IDENT).value)
        size: int | None = None
        init: Expr | None = None
        if self._accept(TokenKind.PUNCT, "["):
            size_tok = self._expect(TokenKind.NUMBER)
            size = int(size_tok.value)
            self._expect_punct("]")
        if self._accept(TokenKind.PUNCT, "="):
            init = self._expression()
        self._expect_punct(";")
        if size is not None and init is not None:
            raise ParseError("array locals cannot have initializers", line)
        return VarDeclStmt(line, name, size, init)

    def _if(self) -> IfStmt:
        line = self._expect_keyword("if").line
        self._expect_punct("(")
        condition = self._expression()
        self._expect_punct(")")
        then_body = self._block()
        else_body: tuple[Stmt, ...] = ()
        if self._accept(TokenKind.KEYWORD, "else"):
            if self._check(TokenKind.KEYWORD, "if"):
                else_body = (self._if(),)
            else:
                else_body = self._block()
        return IfStmt(line, condition, then_body, else_body)

    def _while(self) -> WhileStmt:
        line = self._expect_keyword("while").line
        self._expect_punct("(")
        condition = self._expression()
        self._expect_punct(")")
        body = self._block()
        return WhileStmt(line, condition, body)

    def _switch(self) -> SwitchStmt:
        line = self._expect_keyword("switch").line
        self._expect_punct("(")
        selector = self._expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: list[SwitchCase] = []
        default: tuple[Stmt, ...] | None = None
        while not self._check(TokenKind.PUNCT, "}"):
            if self._accept(TokenKind.KEYWORD, "case"):
                value_line = self._peek().line
                value = self._case_value()
                self._expect_punct(":")
                body = self._case_body()
                cases.append(SwitchCase(value, body, value_line))
            elif self._accept(TokenKind.KEYWORD, "default"):
                self._expect_punct(":")
                if default is not None:
                    raise ParseError("duplicate default case", line)
                default = self._case_body()
            else:
                raise ParseError(
                    f"expected 'case' or 'default', got {self._peek().value!r}",
                    self._peek().line,
                )
        self._expect_punct("}")
        return SwitchStmt(line, selector, tuple(cases), default)

    def _case_value(self) -> int:
        negative = self._accept(TokenKind.PUNCT, "-") is not None
        token = self._next()
        if token.kind is TokenKind.NUMBER:
            value = int(token.value)
        elif token.kind is TokenKind.IDENT and token.value in self.program.constants:
            value = self.program.constants[str(token.value)]
        else:
            raise ParseError(
                f"case value must be a constant, got {token.value!r}", token.line
            )
        return -value if negative else value

    def _case_body(self) -> tuple[Stmt, ...]:
        body: list[Stmt] = []
        while not (
            self._check(TokenKind.KEYWORD, "case")
            or self._check(TokenKind.KEYWORD, "default")
            or self._check(TokenKind.PUNCT, "}")
        ):
            if self._check(TokenKind.EOF):
                raise ParseError("unexpected end of file in switch", self._peek().line)
            body.append(self._statement())
        return tuple(body)

    # ------------------------------------------------------------------
    # expressions

    def _expression(self) -> Expr:
        return self._binary(0)

    def _binary(self, min_precedence: int) -> Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind is not TokenKind.PUNCT:
                break
            op = str(token.value)
            precedence = _PRECEDENCE.get(op)
            if precedence is None or precedence < min_precedence:
                break
            self._next()
            right = self._binary(precedence + 1)
            left = BinaryExpr(token.line, op, left, right)
        return left

    def _unary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.value in ("-", "!", "~"):
            self._next()
            operand = self._unary()
            return UnaryExpr(token.line, str(token.value), operand)
        return self._primary()

    def _primary(self) -> Expr:
        token = self._next()
        if token.kind is TokenKind.NUMBER:
            return NumberExpr(token.line, int(token.value))
        if token.kind is TokenKind.STRING:
            return StringExpr(token.line, str(token.value))
        if token.kind is TokenKind.PUNCT and token.value == "(":
            expr = self._expression()
            self._expect_punct(")")
            return expr
        if token.kind is TokenKind.IDENT:
            name = str(token.value)
            if self._accept(TokenKind.PUNCT, "("):
                args: list[Expr] = []
                if not self._check(TokenKind.PUNCT, ")"):
                    while True:
                        args.append(self._expression())
                        if not self._accept(TokenKind.PUNCT, ","):
                            break
                self._expect_punct(")")
                return CallExpr(token.line, name, tuple(args))
            if self._accept(TokenKind.PUNCT, "["):
                index = self._expression()
                self._expect_punct("]")
                return IndexExpr(token.line, name, index)
            return NameExpr(token.line, name)
        raise ParseError(f"unexpected token {token.value!r}", token.line)


def parse(source: str) -> Program:
    """Parse MiniC source into a :class:`Program`."""
    return Parser(source).parse()
