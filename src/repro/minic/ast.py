"""MiniC abstract syntax tree nodes.

Plain dataclasses; every node carries the source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ----------------------------------------------------------------------
# expressions


@dataclass(frozen=True)
class Expr:
    line: int


@dataclass(frozen=True)
class NumberExpr(Expr):
    value: int


@dataclass(frozen=True)
class StringExpr(Expr):
    value: str


@dataclass(frozen=True)
class NameExpr(Expr):
    name: str


@dataclass(frozen=True)
class UnaryExpr(Expr):
    op: str                  # "-", "!", "~"
    operand: Expr


@dataclass(frozen=True)
class BinaryExpr(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class CallExpr(Expr):
    callee: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class IndexExpr(Expr):
    """``name[expr]`` — byte load from ``name + expr``."""

    name: str
    index: Expr


# ----------------------------------------------------------------------
# statements


@dataclass(frozen=True)
class Stmt:
    line: int


@dataclass(frozen=True)
class VarDeclStmt(Stmt):
    name: str
    size: int | None         # array byte size, or None for a scalar
    init: Expr | None


@dataclass(frozen=True)
class AssignStmt(Stmt):
    name: str
    value: Expr


@dataclass(frozen=True)
class IndexAssignStmt(Stmt):
    """``name[expr] = value;`` — byte store."""

    name: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(frozen=True)
class IfStmt(Stmt):
    condition: Expr
    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...]


@dataclass(frozen=True)
class WhileStmt(Stmt):
    condition: Expr
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class SwitchCase:
    value: int
    body: tuple[Stmt, ...]
    line: int


@dataclass(frozen=True)
class SwitchStmt(Stmt):
    """Integer switch; cases do *not* fall through."""

    selector: Expr
    cases: tuple[SwitchCase, ...]
    default: tuple[Stmt, ...] | None


@dataclass(frozen=True)
class BreakStmt(Stmt):
    pass


@dataclass(frozen=True)
class ContinueStmt(Stmt):
    pass


@dataclass(frozen=True)
class ReturnStmt(Stmt):
    value: Expr | None


@dataclass(frozen=True)
class AsmStmt(Stmt):
    """Raw VM64 assembly, emitted verbatim into the function body."""

    text: str


# ----------------------------------------------------------------------
# top level


@dataclass(frozen=True)
class FuncDecl:
    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    line: int


@dataclass(frozen=True)
class GlobalVar:
    name: str
    size: int | None          # array byte size (bss) or None for a scalar
    init: Expr | None         # NumberExpr or StringExpr only
    line: int


@dataclass(frozen=True)
class ConstDecl:
    name: str
    value: int
    line: int


@dataclass
class Program:
    functions: list[FuncDecl] = field(default_factory=list)
    globals: list[GlobalVar] = field(default_factory=list)
    constants: dict[str, int] = field(default_factory=dict)
    externs: list[str] = field(default_factory=list)
