"""``tracediff`` CLI — the paper's Figure 4 tool.

Reads drcov-format trace files of wanted and undesired features and
prints the undesired feature's unique basic blocks::

    python -m repro.tools.tracediff_cli --module miniredis \\
        --wanted wanted1.cov wanted2.cov --undesired set.cov

Trace files are produced with ``CoverageTrace.to_text()`` (the same
format the in-process tracer and the tests use).
"""

from __future__ import annotations

import argparse
import sys

from ..core.tracediff import TraceDiff
from ..tracing.drcov import CoverageTrace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tracediff",
        description="diff drcov traces to find feature-related basic blocks",
    )
    parser.add_argument("--module", required=True,
                        help="target binary name (e.g. miniredis)")
    parser.add_argument("--wanted", nargs="+", required=True,
                        help="drcov files of wanted-feature executions")
    parser.add_argument("--undesired", nargs="+", required=True,
                        help="drcov files of the undesired feature")
    parser.add_argument("--name", default="feature",
                        help="label for the feature")
    return parser


def load_trace(path: str) -> CoverageTrace:
    with open(path) as handle:
        return CoverageTrace.from_text(handle.read())


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    wanted = [load_trace(path) for path in args.wanted]
    undesired = [load_trace(path) for path in args.undesired]
    feature = TraceDiff(args.module).feature_blocks(
        args.name, wanted, undesired
    )
    print(f"# feature {feature.name!r}: {feature.count} unique blocks, "
          f"{feature.total_size()} bytes in module {feature.module}")
    for block in feature.blocks:
        print(f"{block.offset:#x} {block.size}")
    return 0 if feature.count else 1


if __name__ == "__main__":
    sys.exit(main())
