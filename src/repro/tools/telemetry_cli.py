"""``telemetry`` CLI — record, replay, and verify a DynaScope run.

``run`` drives the reference observability scenario: an 8-instance
lighttpd fleet under a closed-loop balanced workload, customized by a
rolling rollout *while serving*, then hit by seeded chaos crashes with
the DynaGuard supervisor recovering from committed images, plus a
trickle of removed-feature traffic so the verifier trap path and the
drift detector light up.  The entire run records into one
:class:`~repro.telemetry.TelemetryHub`; afterwards the CLI

* reconstructs every reported aggregate **from the event stream
  alone** (:func:`~repro.telemetry.summarize_events`) and verifies it
  against the live controller/supervisor numbers — the acceptance
  contract of the observability layer;
* writes the committed summary to ``results/telemetry_rollout.json``,
  the full event stream to the uncommitted ``.jsonl`` sidecar, the
  Prometheus text snapshot to the uncommitted ``.prom`` sidecar, and
  SVG timelines (throughput, per-instance traps, rewrite costs) next
  to the summary;
* with ``--check-determinism``, runs the same seed twice and asserts
  the event stream and metric snapshot are byte-identical.

``report`` rebuilds the aggregates from a ``.jsonl`` stream alone;
``check`` strictly parses a ``.prom`` snapshot (the CI assertion).

Usage::

    python -m repro.tools.telemetry_cli run [--app lighttpd] [--size 8]
        [--seed 42] [--duration 24] [--check-determinism] [--output FILE]
    python -m repro.tools.telemetry_cli report EVENTS.jsonl
    python -m repro.tools.telemetry_cli check SNAPSHOT.prom
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from .. import telemetry
from ..faults import FaultPlan
from ..fleet import (
    DriftDetector,
    FleetController,
    FleetPolicy,
    FleetSupervisor,
    RolloutExecutor,
    get_app,
    inject_chaos,
)
from ..kernel import Kernel
from ..telemetry import (
    TelemetryHub,
    parse_prometheus,
    prometheus_snapshot,
    read_jsonl,
    summarize_events,
    to_jsonl,
)
from ..workloads import SECOND_NS, TimelineEvent, run_request_timeline
from .svgplot import BarChart, LineChart

#: bounded post-workload settling, as in the supervisor campaign CLI
SETTLE_TICKS = 12


# ----------------------------------------------------------------------
# the reference scenario


def _run_scenario(args) -> tuple[TelemetryHub, dict]:
    """One recorded rollout-under-chaos run; returns (hub, live numbers)."""
    app = get_app(args.app)
    policy = FleetPolicy(
        features=app.features,
        trap_policy="verify",
        strategy="rolling",
        max_unavailable=2,
        probe_requests=2,
        # probing 8 instances costs ~1 virtual second; a 1 s heartbeat
        # would starve the workload entirely
        heartbeat_interval_ns=3 * SECOND_NS,
        drift_action="ignore",    # observe drift, don't mutate the fleet
    )
    kernel = Kernel()
    hub = TelemetryHub(lambda: kernel.clock_ns)
    with telemetry.recording(hub):
        controller = FleetController(kernel, app, policy, size=args.size)
        controller.spawn_fleet()
        pool = controller.pool
        assert pool is not None
        executor = RolloutExecutor(controller)
        supervisor = FleetSupervisor(controller)
        detector = DriftDetector(controller)

        feature = policy.features[0]

        def feature_traffic() -> None:
            try:
                app.feature_request(kernel, controller.frontend_port, feature)
            except Exception:  # noqa: BLE001 — a refused request still traps
                pass

        events = [
            # rolling rollout, one batch per step, while traffic flows
            TimelineEvent(
                at_ns=(1 + 2 * i) * SECOND_NS, label=f"rollout-step-{i}",
                action=lambda: executor.step() if not executor.done else None,
            )
            for i in range(args.size // 2 + 1)
        ] + [
            # supervisor heartbeat every 3 virtual seconds
            TimelineEvent(
                at_ns=second * SECOND_NS, label=f"tick-{second}",
                action=supervisor.tick,
            )
            for second in range(3, args.duration, 3)
        ] + [
            # chaos right AFTER a heartbeat: the balancer serves from a
            # stale view for ~2.5 virtual seconds, so connection
            # failover is actually exercised before the next tick
            # detects the crash and recovers from the committed image
            TimelineEvent(
                at_ns=int((offset + 0.5) * SECOND_NS), label=f"chaos-{offset}",
                action=lambda: inject_chaos(controller),
            )
            for offset in (9, 15)
        ] + [
            # removed-feature traffic between a tick and a drift check,
            # so the drift detector (not the trap-storm scan) is the
            # first to attribute the fresh verifier traps
            TimelineEvent(
                at_ns=int((offset + 0.5) * SECOND_NS), label=f"drift-{offset}",
                action=feature_traffic,
            )
            for offset in (12, 18, 21)
        ] + [
            TimelineEvent(
                at_ns=second * SECOND_NS, label=f"drift-check-{second}",
                action=detector.check,
            )
            for second in (13, 19, 22)
        ]

        # deterministic crashes: the Nth visit to the injection site
        # (inject_chaos walks live instances in order, 8 per call)
        plan = FaultPlan(seed=args.seed)
        plan.arm("fleet.instance_crash", "transient", on_call=3, times=1)
        plan.arm("fleet.instance_crash", "transient", on_call=13, times=1)
        with plan:
            timeline = run_request_timeline(
                kernel,
                lambda: app.wanted_request(kernel, controller.frontend_port),
                duration_ns=args.duration * SECOND_NS,
                events=events,
                failover_meter=lambda: pool.total_failovers,
            )
            for __ in range(SETTLE_TICKS):
                if supervisor.settled:
                    break
                kernel.clock_ns += policy.heartbeat_interval_ns
                supervisor.tick()

    live = {
        "rollout_state": executor.report.state,
        "settled": supervisor.settled,
        "traps": {
            instance.name: instance.traps_seen
            for instance in controller.instances
        },
        "failover_total": pool.total_failovers,
        "dispatch_by_port": {
            str(port): count
            for port, count in sorted(pool.dispatched.items())
            if count
        },
        "rewrites": {
            instance.name: {
                "committed": len(instance.engine.history),
                "total_ns": sum(
                    report.total_ns for report in instance.engine.history
                ),
            }
            for instance in controller.instances
        },
        "workload": {
            "total_requests": timeline.total_requests,
            "failed_requests": timeline.failed_requests,
            "failed_over_requests": timeline.failed_over_requests,
        },
        "drift": {
            "triggered": detector.status.triggered,
            "checks": detector.status.checks,
            "attributed_traps": sum(
                event.hits for event in detector.status.events
            ),
        },
        "supervision": supervisor.supervision_status(),
    }
    return hub, live


def _verify_reconstruction(live: dict, recon: dict) -> dict:
    """Event-stream aggregates vs the live objects' numbers."""
    rewrites_match = all(
        recon["rewrites"].get(name, {}).get("committed") == expected["committed"]
        and recon["rewrites"].get(name, {}).get("rolled_back") == 0
        and recon["rewrites"].get(name, {}).get("total_ns") == expected["total_ns"]
        for name, expected in live["rewrites"].items()
    )
    return {
        "traps": recon["traps"] == live["traps"],
        "failover_total": recon["failovers"]["total"] == live["failover_total"],
        "dispatch_by_port": (
            recon["dispatch"]["by_port"] == live["dispatch_by_port"]
        ),
        "rewrites": rewrites_match,
        "drift_traps": (
            recon["drift"]["attributed_traps"]
            == live["drift"]["attributed_traps"]
        ),
    }


def _write_charts(hub: TelemetryHub, recon: dict, output: pathlib.Path) -> list[str]:
    """Throughput / traps / rewrite-cost figures next to ``output``."""
    written: list[str] = []

    throughput = LineChart(
        "Balanced fleet throughput under rollout + chaos",
        "virtual time (s)", "requests/s",
    )
    for series in hub.registry.series_matching("throughput_rps"):
        throughput.add_series("frontend", series.points(1 / SECOND_NS))
    path = output.with_name(output.stem + "_timeline.svg")
    throughput.save(path)
    written.append(str(path))

    traps = LineChart(
        "Per-instance verifier traps (high-water)",
        "virtual time (s)", "traps logged",
    )
    for series in hub.registry.series_matching("traps_seen"):
        label = dict(series.labels).get("instance", "?")
        traps.add_series(label, series.points(1 / SECOND_NS))
    path = output.with_name(output.stem + "_traps.svg")
    traps.save(path)
    written.append(str(path))

    costs = BarChart(
        "Rewrite cost per instance (committed transactions)",
        "instance", "total cost (ms)",
    )
    for name, summary in sorted(recon["rewrites"].items()):
        costs.add_bar(name or "?", summary["total_ns"] / 1_000_000)
    path = output.with_name(output.stem + "_costs.svg")
    costs.save(path)
    written.append(str(path))
    return written


def run_scenario(args) -> int:
    if args.duration < 24:
        raise SystemExit(
            "the reference scenario schedules chaos/drift events up to "
            "t=22s; --duration must be >= 24"
        )
    hub, live = _run_scenario(args)
    recon = summarize_events(hub.events)
    matches = _verify_reconstruction(live, recon)

    snapshot_text = prometheus_snapshot(hub.registry)
    try:
        parsed = parse_prometheus(snapshot_text)
        snapshot_ok = bool(parsed)
    except ValueError:
        snapshot_ok = False

    determinism = None
    if args.check_determinism:
        hub2, __ = _run_scenario(args)
        determinism = {
            "events_identical": to_jsonl(hub.events) == to_jsonl(hub2.events),
            "snapshot_identical": (
                snapshot_text == prometheus_snapshot(hub2.registry)
            ),
        }

    clean = (
        live["rollout_state"] == "completed"
        and live["settled"]
        and all(matches.values())
        and snapshot_ok
        and (determinism is None or all(determinism.values()))
    )

    output = args.output
    output.parent.mkdir(parents=True, exist_ok=True)
    sidecar = output.with_suffix(".jsonl")
    sidecar.write_text(to_jsonl(hub.events))
    prom = output.with_suffix(".prom")
    prom.write_text(snapshot_text)
    charts = _write_charts(hub, recon, output)

    registry_snapshot = hub.registry.snapshot()
    payload = {
        "mode": "telemetry-rollout",
        "app": args.app,
        "size": args.size,
        "seed": args.seed,
        "duration_s": args.duration,
        "clean": clean,
        "live": live,
        "reconstructed": {
            "events": recon["events"],
            "kinds": recon["kinds"],
            "traps": recon["traps"],
            "failovers": recon["failovers"],
            "dispatch": recon["dispatch"],
            "rewrites": recon["rewrites"],
            "drift": recon["drift"],
            "spans": recon["spans"],
        },
        "matches": matches,
        "snapshot_parses": snapshot_ok,
        "determinism": determinism,
        "registry": {
            "counters": registry_snapshot["counters"],
            "histograms": registry_snapshot["histograms"],
        },
        "artifacts": {
            "events_jsonl": str(sidecar),
            "prometheus": str(prom),
            "charts": charts,
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"{args.app} x{args.size} seed {args.seed}: "
        f"{recon['events']} events, "
        f"{recon['failovers']['total']} failovers, "
        f"traps={sum(recon['traps'].values())}, "
        f"matches={'all' if all(matches.values()) else matches}"
    )
    if determinism is not None:
        print(
            "determinism: events "
            f"{'identical' if determinism['events_identical'] else 'DIVERGED'},"
            " snapshot "
            f"{'identical' if determinism['snapshot_identical'] else 'DIVERGED'}"
        )
    print(f"{'CLEAN' if clean else 'VIOLATED'} -> {output}")
    return 0 if clean else 1


# ----------------------------------------------------------------------
# replay / verification modes


def run_report(args) -> int:
    events = read_jsonl(pathlib.Path(args.events).read_text())
    summary = summarize_events(events)
    text = json.dumps(summary, indent=2, sort_keys=True)
    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n")
        print(f"{summary['events']} events summarized -> {args.output}")
    else:
        print(text)
    return 0


def run_check(args) -> int:
    text = pathlib.Path(args.snapshot).read_text()
    try:
        values = parse_prometheus(text)
    except ValueError as exc:
        print(f"MALFORMED snapshot {args.snapshot}: {exc}")
        return 1
    if not values:
        print(f"EMPTY snapshot {args.snapshot}")
        return 1
    families = {key.split("{", 1)[0] for key in values}
    print(
        f"OK {args.snapshot}: {len(values)} samples across "
        f"{len(families)} families"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="telemetry")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="record the reference chaos-rollout run")
    run.add_argument("--app", default="lighttpd",
                     choices=("lighttpd", "nginx", "redis"))
    run.add_argument("--size", type=int, default=8)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--duration", type=int, default=24,
                     help="workload duration in virtual seconds")
    run.add_argument("--check-determinism", action="store_true",
                     help="run the seed twice; assert byte-identical output")
    run.add_argument("--output", type=pathlib.Path,
                     default=pathlib.Path("results/telemetry_rollout.json"))

    report = sub.add_parser("report", help="rebuild aggregates from a .jsonl")
    report.add_argument("events", help="JSONL event stream to summarize")
    report.add_argument("--output", type=pathlib.Path, default=None)

    check = sub.add_parser("check", help="strictly parse a .prom snapshot")
    check.add_argument("snapshot", help="Prometheus text snapshot to parse")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return run_scenario(args)
    if args.command == "report":
        return run_report(args)
    return run_check(args)


if __name__ == "__main__":
    sys.exit(main())
