"""Command-line tools: tracediff and CRIT, as shipped with the paper."""

from . import crit_cli, report, svgplot, tracediff_cli

__all__ = ["crit_cli", "report", "svgplot", "tracediff_cli"]
