"""``shelve`` CLI — drifting-workload chaos for the shelving policies.

Each seed runs the same three-phase workload against three fresh
fleets, one per drift action, and compares what is left of the debloat
at the end:

* phase A ``[0, 3s)`` — wanted traffic only; the verify-mode removal
  set stays cold;
* phase B ``[3s, 8s)`` — the workload drifts: a seeded fraction of
  requests exercises the removed ``dav-write`` feature (PUT), so the
  verifier heals and logs the blocks it reaches;
* phase C ``[8s, 12s)`` — the drift subsides; only the shelving policy
  can win this phase back.

Scenario verdicts (a campaign seed is **clean** only if all hold):

* ``reenable`` — today's blunt policy: the first windowed burst rolls
  the whole feature back fleet-wide and retention collapses to **0 %**
  forever (the control the tentpole is measured against);
* ``shelve`` — only the trapping blocks come back; the cold remainder
  stays removed (retention stays positive all through the drift), and
  once the drift subsides the decay sweep re-removes the shelf, so
  final retention must recover to at least ``--retention-floor``
  (default 60 %) with zero escalations;
* ``recustomize`` — at least one adaptive narrowing round completes
  with a non-empty narrowed set and **zero** ``dead_restores`` (a
  trapped block the static classifier proved dead would mean one of
  the two analyses is wrong), leaving retention positive.

Every scenario must also lose **zero** requests: wanted traffic and
the drifted PUT mix both serve throughout (``verify`` heals, shelving
restores, nothing refuses), and the driver's accounting identity
``total == served + failed`` holds with ``failed == 0``.

``--check`` runs one quick seed (CI); ``--check-determinism`` runs the
whole campaign twice and requires the committed report and the full
event sidecar to be byte-identical.

Usage::

    python -m repro.tools.shelve_cli [--seeds 3] [--seed-base 900]
        [--size 2] [--put-mix 0.35] [--output FILE]
        [--check] [--check-determinism]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from random import Random

from ..analysis.dataflow import analyze_image_flow
from ..fleet import (
    DriftDetector,
    FleetController,
    FleetPolicy,
    RolloutExecutor,
    get_app,
)
from ..fleet.apps import profile_feature
from ..kernel import Kernel
from ..telemetry import TelemetryHub, to_jsonl
from ..workloads import (
    HttpClient,
    SECOND_NS,
    TimelineEvent,
    run_request_timeline,
)
from .campaign import run_recorded, write_results

#: the removed feature the drifted mix exercises
DRIFT_FEATURE = "dav-write"
#: one isolated fleet per (seed, action); order fixes rng sub-seeds
SCENARIOS = ("reenable", "shelve", "recustomize")
#: phase boundaries (seconds of virtual time)
DRIFT_START_S, DRIFT_END_S, DURATION_S = 3, 8, 12
#: settle checks after the workload: lets the last shelf decay
SETTLE_CHECKS = 2


def removed_bytes(controller: FleetController) -> dict[str, int]:
    """Per-instance bytes still durably patched out of the image."""
    per_instance = {}
    for instance in controller.instances:
        total = 0
        for feature_name in controller.policy.features:
            blocks = instance.engine.disabled_blocks(
                instance.root_pid, feature_name
            )
            total += sum(block.size for block in blocks)
        per_instance[instance.name] = total
    return per_instance


def retention_pct(controller: FleetController, baseline: dict) -> float:
    base = sum(baseline.values())
    if not base:
        return 0.0
    return round(100.0 * sum(removed_bytes(controller).values()) / base, 4)


def scenario_policy(action: str) -> FleetPolicy:
    return FleetPolicy(
        features=(DRIFT_FEATURE,),
        trap_policy="verify",
        block_mode="all",
        strategy="rolling",
        max_unavailable=1,
        probe_requests=2,
        drift_window_ns=4 * SECOND_NS,
        drift_trap_threshold=4,
        drift_action=action,
        shelve_decay_ns=2 * SECOND_NS,
        # the full PUT path is 24 blocks: the shelf must hold it without
        # escalating (escalation is exercised by the unit tests instead)
        shelve_max_live_blocks=32,
    )


def run_scenario(args, seed: int, action: str, hub: TelemetryHub) -> dict:
    rng = Random(f"shelve:{seed}:{action}")
    kernel = Kernel()
    hub.bind_clock(lambda: kernel.clock_ns)
    controller = FleetController(
        kernel, "lighttpd", scenario_policy(action), size=args.size
    )
    controller.spawn_fleet()
    rollout = RolloutExecutor(controller).run()
    baseline = removed_bytes(controller)
    detector = DriftDetector(controller)
    app = controller.app

    puts = {"issued": 0, "ok": 0}
    start = kernel.clock_ns

    def drifted_put() -> bool:
        # PUT only — the adapter's feature_request would also DELETE,
        # heating the *entire* removal set; the point of the drifted
        # mix is that the DELETE half stays cold and stays removed
        puts["issued"] += 1
        client = HttpClient(kernel, controller.frontend_port)
        path = f"/drift-{puts['issued']:05d}.txt"
        return client.put(path, "x").status == 201

    def request_once() -> bool:
        ok = app.wanted_request(kernel, controller.frontend_port)
        offset = kernel.clock_ns - start
        in_drift = DRIFT_START_S * SECOND_NS <= offset < DRIFT_END_S * SECOND_NS
        if in_drift and rng.random() < args.put_mix:
            if drifted_put():
                puts["ok"] += 1
        return ok

    snapshots: dict[str, float] = {}
    events = [
        TimelineEvent(
            at_ns=second * SECOND_NS,
            label=f"drift-check-{second}",
            action=detector.check,
        )
        for second in range(1, DURATION_S)
    ] + [
        # strictly after the same-second drift check: the end-of-drift
        # figure is measured on durable state, not pending heals
        TimelineEvent(
            at_ns=DRIFT_END_S * SECOND_NS + 1_000_000,
            label="retention-at-drift-end",
            action=lambda: snapshots.__setitem__(
                "drift_end_pct", retention_pct(controller, baseline)
            ),
        )
    ]
    timeline = run_request_timeline(
        kernel, request_once,
        duration_ns=DURATION_S * SECOND_NS,
        events=events,
    )
    # cooldown settle: with the workload stopped, every surviving shelf
    # entry goes cold and the decay sweep must take it back
    for __ in range(SETTLE_CHECKS):
        kernel.clock_ns += controller.policy.shelve_decay_ns
        detector.check()
    final_pct = retention_pct(controller, baseline)
    status = detector.status

    served = sum(point.completed for point in timeline.points)
    accounted = (
        timeline.total_requests == served + timeline.failed_requests
    )
    no_loss = (
        accounted
        and timeline.failed_requests == 0
        and not timeline.errors
        and puts["issued"] > 0
        and puts["ok"] == puts["issued"]
    )
    rounds = status.recustomize_rounds
    if action == "reenable":
        verdict = status.triggered and final_pct == 0.0
    elif action == "shelve":
        verdict = (
            status.shelved_blocks > 0
            and status.decayed_blocks > 0
            and not status.escalated
            and snapshots.get("drift_end_pct", 0.0) > 0.0
            and final_pct >= args.retention_floor
        )
    else:  # recustomize
        verdict = (
            len(rounds) >= 1
            and any(r["narrowed_blocks"] > 0 for r in rounds)
            and all(r["dead_restores"] == 0 for r in rounds)
            and final_pct > 0.0
        )
    return {
        "seed": seed,
        "action": action,
        "ok": bool(rollout.completed and no_loss and verdict),
        "rollout_completed": rollout.completed,
        "accounted": accounted,
        "baseline_removed_bytes": sum(baseline.values()),
        "retained_drift_pct": snapshots.get("drift_end_pct"),
        "retained_final_pct": final_pct,
        "drift": status.to_dict(),
        "workload": {
            "total_requests": timeline.total_requests,
            "served": served,
            "failed_requests": timeline.failed_requests,
            "errors": len(timeline.errors),
            "puts_issued": puts["issued"],
            "puts_ok": puts["ok"],
        },
        "clock_ns": kernel.clock_ns,
    }


def run_all(args) -> tuple[dict, list[TelemetryHub]]:
    campaigns = []
    hubs = []
    for index in range(args.seeds):
        seed = args.seed_base + index
        for action in SCENARIOS:
            campaign, hub = run_recorded(
                f"shelve-{seed}-{action}",
                lambda hub: run_scenario(args, seed, action, hub),
            )
            campaigns.append(campaign)
            hubs.append(hub)
            drift = campaign["drift"]
            print(
                f"seed {seed} [{action:>11}] "
                f"{'ok' if campaign['ok'] else 'VIOLATED'}: "
                f"retained {campaign['retained_drift_pct']}% during drift, "
                f"{campaign['retained_final_pct']}% final; "
                f"shelved {drift['shelved_blocks']} / "
                f"decayed {drift['decayed_blocks']} blocks, "
                f"{len(drift['recustomize_rounds'])} narrowing rounds, "
                f"{campaign['workload']['puts_issued']} drifted PUTs, "
                f"{campaign['workload']['failed_requests']} failed"
            )
    clean = all(campaign["ok"] for campaign in campaigns)
    payload = {
        "size": args.size,
        "put_mix": args.put_mix,
        "retention_floor_pct": args.retention_floor,
        "drift_feature": DRIFT_FEATURE,
        "scenarios": list(SCENARIOS),
        "clean": clean,
        "campaigns_total": len(campaigns),
        "campaigns_ok": sum(1 for campaign in campaigns if campaign["ok"]),
        "campaigns": campaigns,
    }
    return payload, hubs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="shelve")
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--seed-base", type=int, default=900)
    parser.add_argument("--size", type=int, default=2,
                        help="instances in each scenario fleet")
    parser.add_argument("--put-mix", type=float, default=0.35,
                        help="P(drifted PUT rides along) during phase B")
    parser.add_argument("--retention-floor", type=float, default=60.0,
                        help="min %% of removed bytes the shelve scenario "
                             "must retain after cooldown")
    parser.add_argument("--output", type=pathlib.Path,
                        default=pathlib.Path("results/shelve_campaign.json"))
    parser.add_argument("--check", action="store_true",
                        help="one quick seed (CI)")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run twice; require byte-identical exports")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.check:
        args.seeds = 1
    if args.size < 2:
        print("shelve: --size must be >= 2 (shelving is per-instance; "
              "a one-instance fleet can't show the blast radius)")
        return 2
    if not 0.0 < args.put_mix <= 1.0:
        print("shelve: --put-mix must be in (0, 1]")
        return 2
    # profiling, the dataflow flow-cache and the CFG cache are memoized
    # process-wide; warm all three *outside* the recorded campaigns so
    # the first and second runs emit identical telemetry (the
    # recustomize scenario's classifier would otherwise give run one
    # extra analysis spans)
    app = get_app("lighttpd")
    for feature in app.features:
        profile_feature(app, feature)
    scratch = Kernel()
    app.stage(scratch, app.default_port)
    for binary in scratch.binaries.values():
        analyze_image_flow(binary)
    warm = FleetController(
        Kernel(), "lighttpd", scenario_policy("recustomize"), size=1
    )
    warm.spawn_fleet()
    warm.instances[0].engine.refine_feature(warm.features[DRIFT_FEATURE])

    payload, hubs = run_all(args)
    if args.check_determinism:
        replay_payload, replay_hubs = run_all(args)
        summary = json.dumps(payload, sort_keys=True)
        replay = json.dumps(replay_payload, sort_keys=True)
        events = "".join(to_jsonl(hub) for hub in hubs)
        replay_events = "".join(to_jsonl(hub) for hub in replay_hubs)
        if summary != replay or events != replay_events:
            print("DETERMINISM VIOLATED: re-run diverged "
                  f"(report match={summary == replay}, "
                  f"events match={events == replay_events})")
            return 1
        print(f"determinism: byte-identical re-export "
              f"({len(events.splitlines())} events)")
    return write_results(
        args.output, payload, hubs, payload["clean"],
        banner=f"({payload['campaigns_ok']}/{payload['campaigns_total']})",
    )


if __name__ == "__main__":
    sys.exit(main())
