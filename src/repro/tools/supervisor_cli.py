"""``supervisor`` CLI — seeded chaos campaigns against DynaGuard.

Each seed builds a fresh customized fleet, puts it under a closed-loop
balanced workload, and arms one of four seeded failure scenarios:

* ``crash``   — probabilistic SIGKILLs of instance trees mid-window;
* ``wedge``   — probe hangs that walk instances HEALTHY → SUSPECT →
  DOWN without the process dying;
* ``corrupt`` — a crash whose committed image is then unreadable at
  recovery, forcing the pristine-respawn fallback;
* ``quarantine`` — a crash whose restores fail permanently until the
  instance is quarantined.

Crashes are injected *between* heartbeats (x.5 s against ticks on whole
seconds), so the balancer serves from a stale view for half a virtual
second and connection failover is actually exercised.  A campaign seed
is **clean** when the fleet settles with every instance HEALTHY or
cleanly QUARANTINED, every request is accounted (served, failed over,
or logged as failed), and the injection log matches the armed plan.

Each seed runs under its own telemetry hub: the committed report
(``results/supervisor_chaos.json`` or ``--output``) carries summaries
and per-scenario digests only, while the full per-seed event streams
land in the uncommitted ``<output>.jsonl`` sidecar.

Usage::

    python -m repro.tools.supervisor_cli [--seeds 20] [--seed-base 100]
        [--size 4] [--app lighttpd] [--duration 12] [--output FILE]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from random import Random

from ..faults import FaultPlan
from ..fleet import (
    FleetController,
    FleetPolicy,
    FleetSupervisor,
    HealthState,
    RolloutExecutor,
    get_app,
    inject_chaos,
)
from ..kernel import Kernel
from ..telemetry import TelemetryHub
from ..workloads import SECOND_NS, TimelineEvent, run_request_timeline
from .campaign import run_recorded, write_results

SCENARIOS = ("crash", "wedge", "corrupt", "quarantine")
#: bounded post-workload settling: heartbeats until the fleet is quiet
SETTLE_TICKS = 12


def _arm_scenario(plan: FaultPlan, scenario: str, rng: Random) -> None:
    if scenario == "crash":
        plan.arm(
            "fleet.instance_crash", "transient",
            probability=0.25, times=rng.randint(1, 2),
        )
    elif scenario == "corrupt":
        plan.arm(
            "fleet.instance_crash", "transient",
            on_call=rng.randint(1, 4), times=1,
        )
        plan.arm("fleet.restore_image_corrupt", "permanent", on_call=1)
    elif scenario == "quarantine":
        plan.arm(
            "fleet.instance_crash", "transient",
            on_call=rng.randint(1, 4), times=1,
        )
        plan.arm("restore.memory", "permanent", probability=1.0, times=0)


def run_campaign(args, seed: int, hub: TelemetryHub) -> dict:
    rng = Random(seed)
    scenario = rng.choice(SCENARIOS)
    app = get_app(args.app)
    policy = FleetPolicy(
        features=app.features,
        strategy="rolling",
        max_unavailable=args.size,
        probe_requests=2,
    )
    controller = FleetController(Kernel(), app, policy, size=args.size)
    hub.bind_clock(lambda: controller.kernel.clock_ns)
    controller.spawn_fleet()
    RolloutExecutor(controller).run()      # customize offline, then guard
    supervisor = FleetSupervisor(controller)
    kernel, pool = controller.kernel, controller.pool

    plan = FaultPlan(seed=seed)
    if scenario == "wedge":
        # every probe hangs for `suspect_threshold` consecutive ticks:
        # the whole fleet walks to DOWN and must recover, processes alive
        plan.arm(
            "fleet.probe_hang", "transient", probability=1.0,
            times=args.size * policy.suspect_threshold,
        )
    else:
        _arm_scenario(plan, scenario, rng)

    events = [
        TimelineEvent(
            at_ns=second * SECOND_NS, label=f"tick-{second}",
            action=supervisor.tick,
        )
        for second in range(1, args.duration)
    ] + [
        TimelineEvent(
            at_ns=int((offset + 0.5) * SECOND_NS), label=f"chaos-{offset}",
            action=lambda: inject_chaos(controller),
        )
        for offset in range(2, args.duration - 3, 3)
    ]
    with plan:
        timeline = run_request_timeline(
            kernel,
            lambda: app.wanted_request(kernel, controller.frontend_port),
            duration_ns=args.duration * SECOND_NS,
            events=events,
            failover_meter=lambda: pool.total_failovers,
        )
        # bounded settling: give in-flight recoveries their heartbeats
        for __ in range(SETTLE_TICKS):
            if supervisor.settled:
                break
            kernel.clock_ns += policy.heartbeat_interval_ns
            supervisor.tick()

    states = {
        name: record.state.value
        for name, record in supervisor.records.items()
    }
    served = sum(point.completed for point in timeline.points)
    accounted = timeline.total_requests == served + timeline.failed_requests
    quarantined = [
        name for name, record in supervisor.records.items()
        if record.state is HealthState.QUARANTINED
    ]
    ok = supervisor.settled and accounted and plan.consistent_with_plan()
    # digest, not the full stream: per-kind counts (the complete event
    # sequence lives in the telemetry JSONL sidecar)
    event_digest: dict[str, int] = {}
    for event in supervisor.events:
        event_digest[event.kind] = event_digest.get(event.kind, 0) + 1
    registry = hub.registry
    return {
        "seed": seed,
        "scenario": scenario,
        "ok": ok,
        "settled": supervisor.settled,
        "accounted": accounted,
        "states": states,
        "quarantined": quarantined,
        "recoveries": [
            {"instance": o.instance, "succeeded": o.succeeded, "source": o.source}
            for o in supervisor.recoveries
        ],
        "faults_fired": len(plan.log),
        "events": dict(sorted(event_digest.items())),
        "breakers": supervisor.breaker_status(),
        "workload": {
            "total_requests": registry.counter_value("workload_requests_total"),
            "served": served,
            "failed_requests": registry.counter_value("workload_failed_total"),
            "failed_over_requests": registry.counter_value(
                "workload_failed_over_total"
            ),
            "errors": len(timeline.errors),
        },
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="supervisor")
    parser.add_argument("--seeds", type=int, default=20)
    parser.add_argument("--seed-base", type=int, default=100)
    parser.add_argument("--app", default="lighttpd",
                        choices=("lighttpd", "nginx", "redis"))
    parser.add_argument("--size", type=int, default=4)
    parser.add_argument("--duration", type=int, default=12,
                        help="workload duration in virtual seconds")
    parser.add_argument("--output", type=pathlib.Path,
                        default=pathlib.Path("results/supervisor_chaos.json"))
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    campaigns = []
    hubs = []
    for index in range(args.seeds):
        seed = args.seed_base + index
        campaign, hub = run_recorded(
            f"supervisor-{seed}", lambda hub: run_campaign(args, seed, hub)
        )
        campaigns.append(campaign)
        hubs.append(hub)
        workload = campaign["workload"]
        print(
            f"seed {seed} [{campaign['scenario']:<10}] "
            f"{'ok' if campaign['ok'] else 'VIOLATED'}: "
            f"{len(campaign['recoveries'])} recoveries, "
            f"{len(campaign['quarantined'])} quarantined, "
            f"{workload['total_requests']} reqs "
            f"({workload['failed_over_requests']} failed over, "
            f"{workload['failed_requests']} failed)"
        )
    clean = all(c["ok"] for c in campaigns)
    payload = {
        "app": args.app,
        "size": args.size,
        "duration_s": args.duration,
        "clean": clean,
        "campaigns_total": len(campaigns),
        "campaigns_ok": sum(1 for c in campaigns if c["ok"]),
        "campaigns": campaigns,
    }
    return write_results(
        args.output, payload, hubs, clean,
        banner=f"({payload['campaigns_ok']}/{payload['campaigns_total']})",
    )


if __name__ == "__main__":
    sys.exit(main())
