"""``fleet`` CLI — drive a DynaFleet rollout and emit the evidence.

``rollout`` spawns N instances of a guest server behind the balancer,
then runs the policy's rollout (canary-gated or rolling) **while a
closed-loop workload keeps hammering the frontend port**: one rollout
batch executes between timeline buckets, so the emitted throughput
series shows the drains as dips, never as failures.  With ``--fault``
a seeded fault is armed during the canary's customization, and the
expected outcome flips: the rollout must abort and every instance must
end pristine.

``drift`` customizes the fleet, then shifts the workload onto the
removed feature; the drift detector attributes the resulting traps to
the active removal set and re-enables the feature fleet-wide.  The
run reports how much virtual time passed between first drifted trap
and fleet-wide re-enable.

Results go to ``results/fleet_rollout.json`` (or ``--output``).

Usage::

    python -m repro.tools.fleet_cli rollout [--app lighttpd] [--size 8]
        [--strategy canary|rolling] [--max-unavailable N]
        [--fault SITE:KIND] [--seed S] [--output FILE]
    python -m repro.tools.fleet_cli drift [--app lighttpd] [--size 4]
        [--output FILE]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from ..faults import KNOWN_SITES, FaultPlan
from ..fleet import (
    DriftDetector,
    FleetController,
    FleetPolicy,
    RolloutExecutor,
    get_app,
)
from ..kernel import Kernel
from ..telemetry import TelemetryHub
from ..workloads import SECOND_NS, TimelineEvent, run_request_timeline
from .campaign import run_recorded, write_results


def _build_fleet(args, strategy: str) -> FleetController:
    app = get_app(args.app)
    policy = FleetPolicy(
        features=tuple(args.feature or app.features),
        strategy=strategy,
        max_unavailable=args.max_unavailable,
        probe_requests=args.probe_requests,
    )
    controller = FleetController(Kernel(), app, policy, size=args.size)
    controller.spawn_fleet()
    return controller


def _frontend_request(controller: FleetController):
    app, kernel, port = controller.app, controller.kernel, controller.frontend_port
    return lambda: app.wanted_request(kernel, port)


def _pristine(controller: FleetController) -> bool:
    return not any(instance.customized for instance in controller.instances)


def run_rollout(args, hub: TelemetryHub) -> tuple[dict, bool]:
    controller = _build_fleet(args, args.strategy)
    hub.bind_clock(lambda: controller.kernel.clock_ns)
    executor = RolloutExecutor(controller)

    plan = None
    if args.fault:
        site, __, kind = args.fault.partition(":")
        if site not in KNOWN_SITES:
            raise SystemExit(
                f"unknown fault site {site!r}; known: {', '.join(sorted(KNOWN_SITES))}"
            )
        plan = FaultPlan(seed=args.seed).arm(
            site, kind or "permanent", on_call=1, times=args.fault_times
        )

    def step_rollout() -> None:
        if not executor.done:
            if plan is not None and executor.report.state == "pending":
                with plan:
                    executor.step()
            else:
                executor.step()

    events = [
        TimelineEvent(at_ns=(2 + 3 * i) * SECOND_NS, label=f"rollout-step-{i}",
                      action=step_rollout)
        for i in range(len(controller.instances) + 2)
    ]
    timeline = run_request_timeline(
        controller.kernel,
        _frontend_request(controller),
        duration_ns=args.duration * SECOND_NS,
        events=events,
    )
    while not executor.done and executor.step():
        pass

    report = executor.report
    if args.fault:
        clean = report.aborted and _pristine(controller)
    else:
        clean = (
            report.completed
            and timeline.failed_requests == 0
            and not timeline.errors
            and all(i.customized for i in controller.instances)
        )
    payload = {
        "mode": "rollout",
        "clean": clean,
        "fault": args.fault or None,
        "rollout": report.to_dict(),
        "workload": {
            "total_requests": timeline.total_requests,
            "failed_requests": timeline.failed_requests,
            "errors": len(timeline.errors),
            "throughput": timeline.throughput_series(SECOND_NS),
        },
        "fleet": controller.status(),
    }
    return payload, clean


def run_drift(args, hub: TelemetryHub) -> tuple[dict, bool]:
    controller = _build_fleet(args, "rolling")
    hub.bind_clock(lambda: controller.kernel.clock_ns)
    RolloutExecutor(controller).run()
    detector = DriftDetector(controller)
    app, kernel = controller.app, controller.kernel
    feature = controller.policy.features[0]

    def drifted_request() -> bool:
        # wanted traffic plus the formerly-cold feature: the drift
        app.wanted_request(kernel, controller.frontend_port)
        return app.feature_request(kernel, controller.frontend_port, feature)

    events = [
        TimelineEvent(at_ns=i * SECOND_NS, label=f"drift-check-{i}",
                      action=detector.check)
        for i in range(1, args.duration)
    ]
    timeline = run_request_timeline(
        kernel, drifted_request,
        duration_ns=args.duration * SECOND_NS, events=events,
    )
    detector.check()
    status = detector.status
    served_again = app.feature_request(kernel, controller.frontend_port, feature)
    clean = status.triggered and _pristine(controller) and served_again
    latency = (
        status.triggered_ns - status.first_drift_ns
        if status.triggered and status.first_drift_ns is not None else None
    )
    payload = {
        "mode": "drift",
        "clean": clean,
        "feature": feature,
        "drift": status.to_dict(),
        "reenable_latency_ns": latency,
        "feature_served_after_reenable": served_again,
        "workload": {
            "total_requests": timeline.total_requests,
            "failed_requests": timeline.failed_requests,
        },
        "fleet": controller.status(),
    }
    return payload, clean


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="fleet")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, size: int, duration: int) -> None:
        p.add_argument("--app", default="lighttpd",
                       choices=("lighttpd", "nginx", "redis"))
        p.add_argument("--size", type=int, default=size)
        p.add_argument("--feature", action="append",
                       help="feature(s) to remove; default: all the app has")
        p.add_argument("--max-unavailable", type=int, default=2)
        p.add_argument("--probe-requests", type=int, default=4)
        p.add_argument("--duration", type=int, default=duration,
                       help="workload duration in virtual seconds")
        p.add_argument("--output", type=pathlib.Path,
                       default=pathlib.Path("results/fleet_rollout.json"))

    rollout = sub.add_parser("rollout", help="canary/rolling fleet rollout")
    common(rollout, size=8, duration=40)
    rollout.add_argument("--strategy", default="canary",
                         choices=("canary", "rolling"))
    rollout.add_argument("--fault", metavar="SITE[:KIND]",
                         help="arm a seeded fault during the canary; the "
                              "rollout is then expected to abort pristine")
    rollout.add_argument("--fault-times", type=int, default=10)
    rollout.add_argument("--seed", type=int, default=1234)

    drift = sub.add_parser("drift", help="workload-drift re-enable loop")
    common(drift, size=4, duration=12)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    runner = run_rollout if args.command == "rollout" else run_drift
    verdict: dict[str, bool] = {}

    def body(hub: TelemetryHub) -> dict:
        record, clean = runner(args, hub)
        record["clean"] = clean
        verdict["clean"] = clean
        return record

    payload, hub = run_recorded(f"fleet-{args.command}", body)
    clean = verdict["clean"]

    if args.command == "rollout":
        rollout = payload["rollout"]
        workload = payload["workload"]
        print(
            f"{args.app} x{args.size} {rollout['strategy']}: {rollout['state']}"
            f" ({len(rollout['customized'])} customized,"
            f" {len(rollout['rolled_back'])} rolled back,"
            f" max drained {rollout['max_drained_seen']});"
            f" workload {workload['total_requests']} reqs,"
            f" {workload['failed_requests']} failed"
        )
    else:
        drift = payload["drift"]
        print(
            f"{args.app} x{args.size} drift: triggered={drift['triggered']}"
            f" after {drift['checks']} checks,"
            f" reenabled={len(drift['reenabled'])} instances,"
            f" latency={payload['reenable_latency_ns']}ns"
        )
    return write_results(args.output, payload, [hub], clean)


if __name__ == "__main__":
    sys.exit(main())
