"""``mesh`` CLI — whole-host chaos against a sharded rollout.

Each seed builds a fresh mesh (``--shards`` kernels, each running its
own kvstore shard behind the consistent-hash frontend), seeds a
keyspace while SET still exists, then rolls the SET-removal policy
shard-by-shard under a closed-loop keyed GET workload — and kills one
whole host mid-its-own-rollout through the seeded ``mesh.host_crash``
site.  A campaign seed is **clean** when:

* the frontend accounting identity holds with nothing shed:
  ``issued == served + failed_over`` and zero driver errors — losing a
  whole machine cost retries, never requests;
* the rollout **aborted on the crashed shard only** and completed on
  every other shard (blast radius = one shard);
* the mesh settled: the crashed host's supervisor recovered its
  instances from their committed images and the host rejoined the
  frontend tier;
* the injection log matches the armed plan exactly.

Timing is what makes the scenario honest: rollout steps run at
``x.25`` offsets, supervision heartbeats fire as forced timeline
events on the 3 s marks, and the crash lands at ``2k+0.5`` — right
after shard *k*'s canary batch commits, and strictly before any
heartbeat can recover the host.  The frontend therefore serves from a stale view
(cross-host failover territory) until the shard's own abort gate sees
the dead host.

``--check`` runs one quick 2-shard seed (CI);
``--check-determinism`` runs the whole campaign twice and requires the
committed report and the full event sidecar to be byte-identical.

Usage::

    python -m repro.tools.mesh_cli [--seeds 3] [--seed-base 700]
        [--shards 4] [--size 2] [--output FILE]
        [--check] [--check-determinism]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from random import Random

from ..analysis.dataflow import analyze_image_flow
from ..faults import FaultPlan
from ..fleet import FleetPolicy, get_app
from ..fleet.apps import profile_feature
from ..kernel import Kernel
from ..mesh import MeshController, MeshRollout, inject_host_chaos
from ..telemetry import TelemetryHub, to_jsonl
from ..workloads import SECOND_NS, TimelineEvent, run_request_timeline
from .campaign import run_recorded, write_results

#: bounded post-workload settling: mesh ticks until every shard is quiet
SETTLE_TICKS = 8
#: keys seeded before the rollout removes the write path
KEYSPACE = 32


def safe_targets(shards: int) -> list[int]:
    """Shards whose crash window fits between two heartbeats.

    Heartbeats are forced timeline events on offsets ``3m`` (the gated
    interval check would drift with per-request timing).  Shard *k*
    rolls at ``2k+0.25`` / ``2k+1.25`` and the crash lands at
    ``2k+0.5``; the only whole second inside the crash-to-gate window
    is ``2k+1``, which hosts a heartbeat iff ``2k+1 ≡ 0 (mod 3)`` —
    i.e. ``k % 3 == 1`` — and would recover the host before the abort
    gate sees it down.  Every other shard is a valid target.
    """
    return [k for k in range(shards) if k % 3 != 1]


def run_campaign(args, seed: int, hub: TelemetryHub) -> dict:
    rng = Random(seed)
    target = rng.choice(safe_targets(args.shards))
    policy = FleetPolicy(
        features=("SET",),
        strategy="canary",
        probe_requests=2,
        heartbeat_interval_ns=3 * SECOND_NS,
        shards=args.shards,
        ring_replicas=32,
        host_failover_budget=2,
    )
    mesh = MeshController("redis", policy, size_per_shard=args.size)
    hub.bind_clock(lambda: mesh.clock.clock_ns)
    mesh.spawn_mesh()
    frontend = mesh.frontend
    assert frontend is not None

    keys = [f"key-{index}" for index in range(KEYSPACE)]
    for key in keys:
        mesh.store(key, f"value-of-{key}")
    seeded = frontend.issued

    rollout = MeshRollout(mesh)
    duration = 2 * args.shards + 4
    plan = FaultPlan(seed=seed).arm(
        "mesh.host_crash", "permanent", on_call=target + 1, times=1
    )
    events = [
        TimelineEvent(
            at_ns=int((2 * step + 0.25) * SECOND_NS),
            label=f"rollout-step-{step}",
            action=rollout.step,
        )
        for step in range(args.shards)
    ] + [
        TimelineEvent(
            at_ns=int((2 * step + 1.25) * SECOND_NS),
            label=f"rollout-step-{step}b",
            action=rollout.step,
        )
        for step in range(args.shards)
    ] + [
        # heartbeats are driven *forced* on the 3 s marks: the gated
        # interval check drifts (every effective heartbeat overshoots
        # its nominal second by its own probe cost), which would make
        # "which tick recovers the crashed host" depend on millisecond
        # request timing instead of the safe_targets arithmetic
        TimelineEvent(
            at_ns=second * SECOND_NS, label=f"tick-{second}",
            action=lambda: mesh.tick(force=True),
        )
        for second in range(3, duration, 3)
    ] + [
        TimelineEvent(
            at_ns=int((2 * target + 0.5) * SECOND_NS), label="host-chaos",
            action=lambda: inject_host_chaos(mesh),
        )
    ]

    request_index = 0

    def request_once() -> bool:
        nonlocal request_index
        request_index += 1
        return mesh.wanted_request(key=keys[request_index % len(keys)])

    # baseline heartbeat at workload start: every instance probed once
    # before traffic, and the serving epoch starts clock-aligned
    mesh.tick(force=True)

    with plan:
        timeline = run_request_timeline(
            mesh.clock,
            request_once,
            duration_ns=duration * SECOND_NS,
            events=events,
            failover_meter=lambda: frontend.pool.total_failovers,
        )
        while not rollout.done:
            rollout.step()
        for __ in range(SETTLE_TICKS):
            if mesh.settled:
                break
            mesh.clock.clock_ns = mesh.clock.clock_ns + policy.heartbeat_interval_ns
            mesh.tick()

    stats = frontend.stats()
    report = rollout.report()
    crashed = f"host-{target}"
    expected_completed = sorted(
        host.name for host in mesh.hosts if host.name != crashed
    )
    blast_radius_ok = (
        report["state"] == "partial"
        and sorted(report["completed_shards"]) == expected_completed
        and list(report["aborted_shards"]) == [crashed]
    )
    ok = (
        stats["accounted"]
        and stats["shed"] == 0
        and not timeline.errors
        and stats["issued"] == seeded + timeline.total_requests
        and blast_radius_ok
        and mesh.settled
        and plan.fired == 1
        and plan.consistent_with_plan()
    )
    return {
        "seed": seed,
        "crashed_shard": crashed,
        "ok": ok,
        "accounted": stats["accounted"],
        "blast_radius_ok": blast_radius_ok,
        "settled": mesh.settled,
        "faults_fired": plan.fired,
        "frontend": stats,
        "rollout": {
            "state": report["state"],
            "completed_shards": report["completed_shards"],
            "aborted_shards": report["aborted_shards"],
        },
        "workload": {
            "total_requests": timeline.total_requests,
            "served": sum(point.completed for point in timeline.points),
            "failed_requests": timeline.failed_requests,
            "failed_over_requests": timeline.failed_over_requests,
            "errors": len(timeline.errors),
        },
        "clocks": {
            "mesh_ns": mesh.clock.clock_ns,
            "hosts_ns": {
                host.name: host.kernel.clock_ns for host in mesh.hosts
            },
        },
    }


def run_all(args) -> tuple[dict, list[TelemetryHub]]:
    campaigns = []
    hubs = []
    for index in range(args.seeds):
        seed = args.seed_base + index
        campaign, hub = run_recorded(
            f"mesh-{seed}", lambda hub: run_campaign(args, seed, hub)
        )
        campaigns.append(campaign)
        hubs.append(hub)
        workload = campaign["workload"]
        print(
            f"seed {seed} [crash {campaign['crashed_shard']}] "
            f"{'ok' if campaign['ok'] else 'VIOLATED'}: "
            f"rollout {campaign['rollout']['state']}, "
            f"{workload['total_requests']} reqs "
            f"({workload['failed_over_requests']} failed over, "
            f"{workload['errors']} errors), "
            f"frontend shed {campaign['frontend']['shed']}"
        )
    clean = all(campaign["ok"] for campaign in campaigns)
    payload = {
        "shards": args.shards,
        "size_per_shard": args.size,
        "routing": "hash",
        "clean": clean,
        "campaigns_total": len(campaigns),
        "campaigns_ok": sum(1 for campaign in campaigns if campaign["ok"]),
        "campaigns": campaigns,
    }
    return payload, hubs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="mesh")
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--seed-base", type=int, default=700)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--size", type=int, default=2,
                        help="instances per shard")
    parser.add_argument("--output", type=pathlib.Path,
                        default=pathlib.Path("results/mesh_rollout.json"))
    parser.add_argument("--check", action="store_true",
                        help="one quick 2-shard seed (CI)")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run twice; require byte-identical exports")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.check:
        args.shards, args.size, args.seeds = 2, 2, 1
    if args.shards < 2:
        print("mesh: --shards must be >= 2 (a crash needs a survivor)")
        return 2
    if args.size < 2:
        # one instance = one canary batch: the shard's rollout finishes
        # in a single step and the crash can never land mid-rollout
        print("mesh: --size must be >= 2 (the crash lands between the "
              "canary batch and the rolling batch)")
        return 2
    # profiling and the dataflow flow-cache are memoized process-wide;
    # warm both *outside* the recorded campaigns so the first and second
    # runs emit identical telemetry (a cold VSA cache would give run one
    # extra ``dynaflow.vsa`` spans)
    app = get_app("redis")
    for feature in app.features:
        profile_feature(app, feature)
    scratch = Kernel()
    app.stage(scratch, app.default_port)
    for binary in scratch.binaries.values():
        analyze_image_flow(binary)

    payload, hubs = run_all(args)
    if args.check_determinism:
        replay_payload, replay_hubs = run_all(args)
        summary = json.dumps(payload, sort_keys=True)
        replay = json.dumps(replay_payload, sort_keys=True)
        events = "".join(to_jsonl(hub) for hub in hubs)
        replay_events = "".join(to_jsonl(hub) for hub in replay_hubs)
        if summary != replay or events != replay_events:
            print("DETERMINISM VIOLATED: re-run diverged "
                  f"(report match={summary == replay}, "
                  f"events match={events == replay_events})")
            return 1
        print(f"determinism: byte-identical re-export "
              f"({len(events.splitlines())} events)")
    return write_results(
        args.output, payload, hubs, payload["clean"],
        banner=f"({payload['campaigns_ok']}/{payload['campaigns_total']})",
    )


if __name__ == "__main__":
    sys.exit(main())
