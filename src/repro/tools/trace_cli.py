"""``trace`` CLI — tail-latency attribution for a rollout under chaos.

Runs the mesh chaos scenario (shard-by-shard SET-removal rollout, one
whole-host crash mid-its-own-rollout) with **per-request tracing** on
and the ``verify`` trap policy, so post-rollout SET traffic traps into
the verifier and the traps land inside specific requests' span trees.
The committed report decomposes every request's wall time into the
phase vocabulary of :mod:`repro.telemetry.trace` and pins the
identities the observability layer promises:

* **per-request accounting** — for every trace, the structurally
  recomputed phase decomposition equals the live accounting and sums
  exactly to ``wall_ns`` (:func:`~repro.telemetry.attribute_traces`);
* **count identity** — traced requests == the frontend's ``issued``
  delta over the workload, and the traced outcome tags reproduce the
  ``served / failed_over / shed`` split exactly;
* **causality windows** — ``rewrite-stall`` time appears only in
  traces that actually carried a rollout step, ``trap`` time appears
  only between the first rollout step and the end-of-run heal sweep
  (which SETs through every replica so every shelved block heals at a
  known offset), and both are non-zero somewhere inside their windows;
* **tail latency** — p50/p95/p99 are exact nearest-rank percentiles
  over per-request ``wall_ns`` values, not bucket interpolations.

``--check`` runs one quick 2-shard seed (CI);
``--check-determinism`` runs the whole campaign twice and requires the
committed report *and the full span stream* to be byte-identical.

Usage::

    python -m repro.tools.trace_cli [--seeds 2] [--seed-base 900]
        [--shards 4] [--size 2] [--output FILE]
        [--check] [--check-determinism]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from random import Random

from ..analysis.dataflow import analyze_image_flow
from ..faults import FaultPlan
from ..fleet import FleetPolicy, get_app
from ..fleet.apps import profile_feature
from ..kernel import Kernel
from ..mesh import MeshController, MeshRollout, inject_host_chaos
from ..telemetry import (
    PHASES,
    RequestTracer,
    TelemetryHub,
    attribute_traces,
    percentile,
    to_trace_jsonl,
)
from ..workloads import SECOND_NS, TimelineEvent, run_request_timeline
from .campaign import run_recorded, write_results
from .mesh_cli import safe_targets
from .svgplot import LineChart, StackedBarChart

#: keys seeded before the rollout removes the write path
KEYSPACE = 32
#: every Nth workload request is a SET (the post-rollout trap driver)
SET_EVERY = 8
#: bounded post-workload settling: mesh ticks until every shard is quiet
SETTLE_TICKS = 8


def campaign_schedule(shards: int, target: int) -> dict[str, float]:
    """The virtual-time plan (seconds) for one traced campaign.

    Mirrors the mesh chaos scenario — rollout steps at ``2k+0.25`` /
    ``2k+1.25``, supervision ticks forced on the 3 s marks, the crash
    at ``2·target+0.5`` — and appends a **heal sweep** strictly after
    both the last rollout step and the first tick that can recover the
    crashed host, so every trap (including re-heal traps against the
    recovered host's committed images) lands before the sweep.
    """
    last_step = 2 * (shards - 1) + 1.25
    crash = 2 * target + 0.5
    recovery_tick = (int(crash) // 3 + 1) * 3
    heal = max(last_step, float(recovery_tick)) + 1
    return {
        "last_step_s": last_step,
        "crash_s": crash,
        "recovery_tick_s": float(recovery_tick),
        "heal_s": heal,
        "duration_s": heal + 3,
    }


def window_checks(records: list[dict], spans_by_trace: dict[int, list]) -> dict:
    """Causality windows over the trace list, by trace index.

    Requests are traced in issue order, so "before the first rollout
    step" and "after the heal sweep" are index ranges: the stall spans
    carrying the rollout-step / heal-sweep labels pin the boundaries.
    """
    def stall_labels(trace_id: int) -> list[str]:
        return [
            str(span.attrs.get("label", ""))
            for span in spans_by_trace.get(trace_id, [])
            if span.name == "stall"
        ]

    step_indices = [
        index for index, record in enumerate(records)
        if any(
            label.startswith("rollout-step")
            for label in stall_labels(record["trace_id"])
        )
    ]
    heal_indices = [
        index for index, record in enumerate(records)
        if "heal-sweep" in stall_labels(record["trace_id"])
    ]
    if not step_indices or len(heal_indices) != 1:
        return {
            "ok": False,
            "reason": "rollout-step or heal-sweep stalls missing from traces",
        }
    first_step, last_step = step_indices[0], step_indices[-1]
    heal = heal_indices[0]

    def phase(record: dict, name: str) -> int:
        return int(record["phases"].get(name, 0))

    trap_before = sum(phase(r, "trap") for r in records[:first_step])
    trap_after = sum(phase(r, "trap") for r in records[heal + 1:])
    trap_inside = sum(phase(r, "trap") for r in records[first_step:heal + 1])
    stall_outside = sum(
        phase(r, "rewrite-stall")
        for i, r in enumerate(records)
        if not first_step <= i <= last_step
    )
    stall_inside = sum(
        phase(r, "rewrite-stall") for r in records[first_step:last_step + 1]
    )
    return {
        "ok": (
            trap_before == 0 and trap_after == 0 and trap_inside > 0
            and stall_outside == 0 and stall_inside > 0
        ),
        "first_step_index": first_step,
        "last_step_index": last_step,
        "heal_index": heal,
        "trap_ns": {
            "before_window": trap_before,
            "inside_window": trap_inside,
            "after_heal": trap_after,
        },
        "rewrite_stall_ns": {
            "inside_window": stall_inside,
            "outside_window": stall_outside,
        },
    }


def run_campaign(args, seed: int, hub: TelemetryHub) -> dict:
    rng = Random(seed)
    target = rng.choice(safe_targets(args.shards))
    schedule = campaign_schedule(args.shards, target)
    policy = FleetPolicy(
        features=("SET",),
        trap_policy="verify",
        strategy="canary",
        probe_requests=2,
        heartbeat_interval_ns=3 * SECOND_NS,
        shards=args.shards,
        ring_replicas=32,
        host_failover_budget=2,
    )
    mesh = MeshController("redis", policy, size_per_shard=args.size)
    hub.bind_clock(lambda: mesh.clock.clock_ns)
    mesh.spawn_mesh()
    frontend = mesh.frontend
    assert frontend is not None

    keys = [f"key-{index}" for index in range(KEYSPACE)]
    for key in keys:
        mesh.store(key, f"value-of-{key}")

    rollout = MeshRollout(mesh)
    duration = schedule["duration_s"]
    plan = FaultPlan(seed=seed).arm(
        "mesh.host_crash", "permanent", on_call=target + 1, times=1
    )
    events = [
        TimelineEvent(
            at_ns=int((2 * step + 0.25) * SECOND_NS),
            label=f"rollout-step-{step}",
            action=rollout.step,
        )
        for step in range(args.shards)
    ] + [
        TimelineEvent(
            at_ns=int((2 * step + 1.25) * SECOND_NS),
            label=f"rollout-step-{step}b",
            action=rollout.step,
        )
        for step in range(args.shards)
    ] + [
        # forced ticks on the 3 s marks, as in the mesh chaos campaign
        TimelineEvent(
            at_ns=second * SECOND_NS, label=f"tick-{second}",
            action=lambda: mesh.tick(force=True),
        )
        for second in range(3, int(duration), 3)
    ] + [
        TimelineEvent(
            at_ns=int(schedule["crash_s"] * SECOND_NS), label="host-chaos",
            action=lambda: inject_host_chaos(mesh),
        ),
        # one SET into every live replica, bypassing the frontend: every
        # still-shelved block heals here, so traps cannot outlive this
        # event (and issued-count accounting is untouched)
        TimelineEvent(
            at_ns=int(schedule["heal_s"] * SECOND_NS), label="heal-sweep",
            action=lambda: mesh.probe_replicas("SET __heal__ 1"),
        ),
    ]

    request_index = 0

    def request_once() -> bool:
        nonlocal request_index
        request_index += 1
        key = keys[request_index % len(keys)]
        if request_index % SET_EVERY == 0:
            # a write against the (eventually removed) SET path: after
            # the owning shard's rollout this traps into the verifier
            return mesh.store(key, f"update-{request_index}")
        return mesh.wanted_request(key=key)

    # baseline heartbeat before traffic, then snapshot the accounting
    # counters: the workload's traced requests are exactly the issued
    # delta from here
    mesh.tick(force=True)
    issued_before = frontend.issued
    counters_before = {
        "served": frontend.served,
        "failed_over": frontend.failed_over,
        "shed": frontend.shed,
    }

    tracer = RequestTracer()
    with plan:
        timeline = run_request_timeline(
            mesh.clock,
            request_once,
            duration_ns=int(duration * SECOND_NS),
            events=events,
            failover_meter=lambda: frontend.pool.total_failovers,
            tracer=tracer,
        )
        while not rollout.done:
            rollout.step()
        for __ in range(SETTLE_TICKS):
            if mesh.settled:
                break
            mesh.clock.clock_ns = (
                mesh.clock.clock_ns + policy.heartbeat_interval_ns
            )
            mesh.tick()

    stats = frontend.stats()
    attribution = attribute_traces(tracer)
    records = attribution["requests"]
    summary = attribution["summary"]

    # count identity: every issued request was traced, with the same
    # outcome split the frontend accounted
    issued_delta = stats["issued"] - issued_before
    outcome_deltas = {
        outcome: stats[outcome] - counters_before[outcome]
        for outcome in ("served", "failed_over", "shed")
    }
    traced_outcomes = {
        outcome: summary["outcomes"].get(outcome, 0)
        for outcome in ("served", "failed_over", "shed")
    }
    count_identity_ok = (
        len(records) == issued_delta == timeline.total_requests
        and traced_outcomes == outcome_deltas
    )

    spans_by_trace: dict[int, list] = {}
    for span in tracer.spans():
        spans_by_trace.setdefault(span.trace_id, []).append(span)
    windows = window_checks(records, spans_by_trace)

    walls = tracer.request_walls()
    ok = (
        stats["accounted"]
        and not timeline.errors
        and summary["identity_violations"] == 0
        and count_identity_ok
        and windows["ok"]
        and summary["latency_ns"] is not None
        and summary["latency_ns"]["p99"] > 0
        and all(not ctx.unmatched_traps for ctx in tracer.traces)
        and mesh.settled
        and plan.fired == 1
        and plan.consistent_with_plan()
    )
    return {
        "seed": seed,
        "crashed_shard": f"host-{target}",
        "schedule_s": schedule,
        "ok": ok,
        "accounted": stats["accounted"],
        "count_identity_ok": count_identity_ok,
        "identity_violations": summary["identity_violations"],
        "windows": windows,
        "settled": mesh.settled,
        "faults_fired": plan.fired,
        "traced": {
            "requests": len(records),
            "issued_delta": issued_delta,
            "outcomes": traced_outcomes,
            "frontend_outcome_deltas": outcome_deltas,
            "traps": sum(record["traps"] for record in records),
            "hops": sum(record["hops"] for record in records),
        },
        "latency_ns": summary["latency_ns"],
        "p99_timeline": p99_timeline(records, walls),
        "phase_totals_ns": summary["phase_totals_ns"],
        "frontend": stats,
        "workload": {
            "total_requests": timeline.total_requests,
            "served": sum(point.completed for point in timeline.points),
            "failed_requests": timeline.failed_requests,
            "failed_over_requests": timeline.failed_over_requests,
            "errors": len(timeline.errors),
        },
        "_tracer": tracer,
    }


def p99_timeline(records: list[dict], walls: list[int]) -> list[dict]:
    """Rolling per-second p99 over per-request walls (plot substrate)."""
    by_second: dict[int, list[int]] = {}
    for record, wall in zip(records, walls):
        by_second.setdefault(record["start_ns"] // SECOND_NS, []).append(wall)
    return [
        {
            "second": second,
            "requests": len(values),
            "p99_ns": percentile(values, 0.99),
        }
        for second, values in sorted(by_second.items())
    ]


def render_figures(output: pathlib.Path, campaign: dict) -> list[pathlib.Path]:
    """The latency waterfall + p99 timeline SVGs for one campaign."""
    waterfall = StackedBarChart(
        title=(
            f"Slowest requests by phase (seed {campaign['seed']}, "
            f"crash {campaign['crashed_shard']})"
        ),
        x_label="trace id",
        y_label="wall time (ms)",
        categories=list(PHASES),
    )
    slowest = sorted(
        campaign["_records"], key=lambda r: r["wall_ns"], reverse=True
    )[:12]
    for record in sorted(slowest, key=lambda r: r["trace_id"]):
        waterfall.add_bar(
            str(record["trace_id"]),
            {
                phase: ns / 1e6
                for phase, ns in record["phases"].items()
            },
        )
    waterfall_path = output.with_name("trace_latency_waterfall.svg")
    waterfall.save(waterfall_path)

    timeline = LineChart(
        title=f"Per-second p99 request wall time (seed {campaign['seed']})",
        x_label="virtual time (s)",
        y_label="p99 wall (ms)",
    )
    timeline.add_series(
        "p99",
        [
            (point["second"], point["p99_ns"] / 1e6)
            for point in campaign["p99_timeline"]
        ],
    )
    timeline_path = output.with_name("trace_p99_timeline.svg")
    timeline.save(timeline_path)
    return [waterfall_path, timeline_path]


def run_all(args) -> tuple[dict, list[TelemetryHub], str]:
    campaigns = []
    hubs = []
    trace_streams: list[str] = []
    for index in range(args.seeds):
        seed = args.seed_base + index
        campaign, hub = run_recorded(
            f"trace-{seed}", lambda hub: run_campaign(args, seed, hub)
        )
        tracer = campaign.pop("_tracer")
        campaign["_records"] = attribute_traces(tracer)["requests"]
        trace_streams.append(to_trace_jsonl(tracer))
        campaigns.append(campaign)
        hubs.append(hub)
        latency = campaign["latency_ns"]
        print(
            f"seed {seed} [crash {campaign['crashed_shard']}] "
            f"{'ok' if campaign['ok'] else 'VIOLATED'}: "
            f"{campaign['traced']['requests']} traced "
            f"({campaign['traced']['traps']} traps, "
            f"{campaign['traced']['hops']} hops), "
            f"{campaign['identity_violations']} identity violations, "
            f"p99 {latency['p99'] / 1e6:.2f} ms"
        )
    clean = all(campaign["ok"] for campaign in campaigns)
    payload = {
        "shards": args.shards,
        "size_per_shard": args.size,
        "routing": "hash",
        "trap_policy": "verify",
        "clean": clean,
        "campaigns_total": len(campaigns),
        "campaigns_ok": sum(1 for campaign in campaigns if campaign["ok"]),
        "campaigns": campaigns,
    }
    return payload, hubs, "".join(trace_streams)


def strip_private(payload: dict) -> dict:
    """Drop the in-memory record lists before committing the report."""
    committed = dict(payload)
    committed["campaigns"] = [
        {k: v for k, v in campaign.items() if not k.startswith("_")}
        for campaign in payload["campaigns"]
    ]
    return committed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="trace")
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument("--seed-base", type=int, default=900)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--size", type=int, default=2,
                        help="instances per shard")
    parser.add_argument("--output", type=pathlib.Path,
                        default=pathlib.Path("results/trace_attribution.json"))
    parser.add_argument("--check", action="store_true",
                        help="one quick 2-shard seed (CI)")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run twice; require byte-identical exports")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.check:
        args.shards, args.size, args.seeds = 2, 2, 1
    if args.shards < 2:
        print("trace: --shards must be >= 2 (a crash needs a survivor)")
        return 2
    if args.size < 2:
        print("trace: --size must be >= 2 (the crash lands between the "
              "canary batch and the rolling batch)")
        return 2
    # warm the process-wide profiling and flow caches outside the
    # recorded campaigns (see mesh_cli: a cold cache would make run one
    # emit extra spans and break the determinism comparison)
    app = get_app("redis")
    for feature in app.features:
        profile_feature(app, feature)
    scratch = Kernel()
    app.stage(scratch, app.default_port)
    for binary in scratch.binaries.values():
        analyze_image_flow(binary)

    payload, hubs, trace_stream = run_all(args)
    if args.check_determinism:
        replay_payload, __, replay_stream = run_all(args)
        summary = json.dumps(strip_private(payload), sort_keys=True)
        replay = json.dumps(strip_private(replay_payload), sort_keys=True)
        if summary != replay or trace_stream != replay_stream:
            print("DETERMINISM VIOLATED: re-run diverged "
                  f"(report match={summary == replay}, "
                  f"spans match={trace_stream == replay_stream})")
            return 1
        print(f"determinism: byte-identical re-export "
              f"({len(trace_stream.splitlines())} spans)")

    args.output.parent.mkdir(parents=True, exist_ok=True)
    figures = render_figures(args.output, payload["campaigns"][0])
    committed = strip_private(payload)
    spans_path = args.output.with_suffix(".spans.jsonl")
    spans_path.write_text(trace_stream)
    print(f"figures -> {', '.join(str(path) for path in figures)} "
          f"(spans -> {spans_path})")
    return write_results(
        args.output, committed, hubs, committed["clean"],
        banner=f"({committed['campaigns_ok']}/{committed['campaigns_total']})",
    )


if __name__ == "__main__":
    sys.exit(main())
