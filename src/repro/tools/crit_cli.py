"""``crit`` CLI — decode/encode/inspect CRIU-style image files on disk.

Mirrors the CRIT workflows the paper extends::

    python -m repro.tools.crit_cli decode core-100.img        # -> JSON
    python -m repro.tools.crit_cli encode core-100.json       # -> .img
    python -m repro.tools.crit_cli show core-100.img          # summary

``decode``/``encode`` operate on host filesystem paths (image files
exported from a kernel fs with ``InMemoryFS.read_file``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from ..criu import crit
from ..criu.images import CoreImage, MmImage


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="crit")
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("decode", "encode", "show"):
        cmd = sub.add_parser(name)
        cmd.add_argument("path", type=pathlib.Path)
        cmd.add_argument("-o", "--output", type=pathlib.Path, default=None)
    return parser


def _summarize(data: bytes) -> str:
    kind = crit.image_kind(data)
    if kind == "core":
        core = CoreImage.from_bytes(data)
        lines = [f"core image: pid={core.pid} ppid={core.ppid} "
                 f"binary={core.binary}",
                 f"  rip={core.regs.rip:#x}"]
        for action in core.sigactions:
            lines.append(f"  sigaction {action.signal}: "
                         f"handler={action.handler:#x}")
        return "\n".join(lines)
    if kind == "mm":
        mm = MmImage.from_bytes(data)
        lines = [f"mm image: {len(mm.vmas)} VMAs"]
        for vma in mm.vmas:
            backing = vma.file_path or "anon"
            lines.append(
                f"  {vma.start:#014x}-{vma.end:#014x} {vma.perms} {backing}"
            )
        return "\n".join(lines)
    decoded = crit.decode(data)
    return f"{kind} image: {len(json.dumps(decoded))} bytes decoded"


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "decode":
        decoded = crit.decode_to_json(args.path.read_bytes())
        if args.output:
            args.output.write_text(decoded)
        else:
            print(decoded)
    elif args.command == "encode":
        encoded = crit.encode_from_json(args.path.read_text())
        output = args.output or args.path.with_suffix(".img")
        output.write_bytes(encoded)
        print(f"wrote {output} ({len(encoded)} bytes)")
    else:  # show
        print(_summarize(args.path.read_bytes()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
