"""``chaos`` CLI — seeded fault-injection campaigns over customize().

Runs N seeded chaos campaigns per application (miniredis and
minilight): each run stages a fresh kernel, profiles a feature, arms
one seeded fault spec at a pipeline injection site, and drives a full
``disable_feature`` transaction through it.  Afterwards the run is
scored against the availability invariant:

* **survived** — the process tree is alive and serves the wanted
  workload, whether the transaction committed or rolled back;
* **half-patched** — some but not all of the feature's blocks carry
  the rewrite (must never happen; the transactional engine's contract).

The aggregate goes to ``results/chaos_campaign.json``; the full
per-campaign telemetry event streams (journal phases, rewrite reports,
spans) go to the uncommitted ``.jsonl`` sidecar next to it.  Exit
status is 0 when every run survived with zero half-patched outcomes,
1 otherwise.

Usage::

    python -m repro.tools.chaos_cli [--runs N] [--seed-base S]
                                    [--output FILE] [--app redis|lighttpd]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from random import Random

from ..apps import LIGHTTPD_PORT, REDIS_PORT, stage_lighttpd, stage_redis
from ..apps.httpd_lighttpd import LIGHTTPD_BINARY
from ..apps.kvstore import REDIS_BINARY
from ..core import (
    BlockMode,
    CustomizationAborted,
    DynaCut,
    TraceDiff,
    TrapPolicy,
)
from ..faults import KNOWN_SITES, FaultPlan
from ..kernel import Kernel
from ..telemetry import TelemetryHub
from ..tracing import BlockTracer
from ..workloads import HttpClient, RedisClient
from .campaign import run_recorded, write_results

#: sites a campaign run may arm (all of them — the recipe visits each)
CAMPAIGN_SITES = sorted(KNOWN_SITES)
KINDS = ("transient", "permanent")


def _stage_redis_world():
    kernel = Kernel()
    proc = stage_redis(kernel)
    tracer = BlockTracer(kernel, proc).attach()
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "GET a", "DEL a", "EXISTS a"):
        client.command(cmd)
    wanted = tracer.nudge_dump()
    client.command("SET a 1")
    undesired = tracer.finish()
    feature = TraceDiff(REDIS_BINARY).feature_blocks(
        "SET", [wanted], [undesired]
    )

    def serves() -> bool:
        return client.ping() and client.get("chaos-missing") is None

    return kernel, proc, feature, REDIS_BINARY, serves


def _stage_lighttpd_world():
    kernel = Kernel()
    proc = stage_lighttpd(kernel)
    tracer = BlockTracer(kernel, proc).attach()
    client = HttpClient(kernel, LIGHTTPD_PORT)
    client.get("/")
    client.head("/")
    client.options("/")
    wanted = tracer.nudge_dump()
    client.put("/chaos.txt", "x")
    client.delete("/chaos.txt")
    undesired = tracer.finish()
    feature = TraceDiff(LIGHTTPD_BINARY).feature_blocks(
        "dav-write", [wanted], [undesired]
    )

    def serves() -> bool:
        return client.get("/").status == 200

    return kernel, proc, feature, LIGHTTPD_BINARY, serves


_STAGERS = {
    "redis": _stage_redis_world,
    "lighttpd": _stage_lighttpd_world,
}


def _module_base(proc, module: str) -> int:
    for loaded in proc.modules:
        if loaded.name == module:
            return loaded.load_base
    raise SystemExit(f"module {module!r} not mapped in pid {proc.pid}")


def run_campaign(
    app: str, runs: int, seed_base: int, hub: TelemetryHub | None = None
) -> dict:
    """``runs`` seeded chaos runs against ``app``; returns the record."""
    records = []
    for index in range(runs):
        seed = seed_base + index
        rng = Random(seed)
        site = rng.choice(CAMPAIGN_SITES)
        kind = rng.choice(KINDS)

        kernel, proc, feature, module, serves = _STAGERS[app]()
        if hub is not None:
            # each run stages a fresh kernel; follow its virtual clock
            hub.bind_clock(lambda kernel=kernel: kernel.clock_ns)
        pid = proc.pid
        base = _module_base(proc, module)
        offsets = [base + block.offset for block in feature.blocks]
        before = {off: proc.memory.read_raw(off, 1) for off in offsets}

        dynacut = DynaCut(kernel, lint_mode="always")
        plan = FaultPlan(seed=seed).arm(
            site, kind, probability=0.9, times=1,
            torn=(site == "fs.write_file"),
        )
        outcome = "committed"
        try:
            with plan:
                report = dynacut.disable_feature(
                    pid, feature,
                    policy=TrapPolicy.VERIFY, mode=BlockMode.ALL,
                )
        except CustomizationAborted as exc:
            outcome = "rolled-back"
            report = exc.report

        survivor = kernel.processes.get(pid)
        alive = survivor is not None and survivor.alive
        serving = bool(alive and serves())
        after = (
            {off: survivor.memory.read_raw(off, 1) for off in offsets}
            if alive else {}
        )
        if outcome == "committed":
            intact = all(byte == b"\xcc" for byte in after.values())
        else:
            intact = after == before
        half_patched = alive and not intact

        records.append({
            "seed": seed,
            "site": site,
            "kind": kind,
            "outcome": outcome,
            "attempts": report.attempts,
            "retries": report.attempts - 1,
            "faults_fired": plan.fired,
            "log_consistent": plan.consistent_with_plan(),
            "survived": serving,
            "half_patched": half_patched,
        })

    summary = {
        "runs": runs,
        "survived": sum(r["survived"] for r in records),
        "committed": sum(r["outcome"] == "committed" for r in records),
        "rolled_back": sum(r["outcome"] == "rolled-back" for r in records),
        "runs_retried": sum(r["retries"] > 0 for r in records),
        "total_retries": sum(r["retries"] for r in records),
        "faults_fired": sum(r["faults_fired"] for r in records),
        "half_patched": sum(r["half_patched"] for r in records),
        "survival_rate": (
            sum(r["survived"] for r in records) / runs if runs else 1.0
        ),
    }
    return {"app": app, "summary": summary, "records": records}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="chaos")
    parser.add_argument("--runs", type=int, default=10,
                        help="seeded runs per application (default 10)")
    parser.add_argument("--seed-base", type=int, default=1000,
                        help="first seed; run i uses seed-base + i")
    parser.add_argument("--app", choices=sorted(_STAGERS), action="append",
                        help="restrict to one application (repeatable); "
                             "default: all")
    parser.add_argument("--output", type=pathlib.Path,
                        default=pathlib.Path("results/chaos_campaign.json"))
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    apps = args.app or sorted(_STAGERS)

    campaigns = []
    hubs = []
    for app in apps:
        campaign, hub = run_recorded(
            f"chaos-{app}",
            lambda hub, app=app: run_campaign(
                app, args.runs, args.seed_base, hub
            ),
        )
        campaigns.append(campaign)
        hubs.append(hub)
    total_runs = sum(c["summary"]["runs"] for c in campaigns)
    total_survived = sum(c["summary"]["survived"] for c in campaigns)
    total_half = sum(c["summary"]["half_patched"] for c in campaigns)
    clean = total_survived == total_runs and total_half == 0

    payload = {
        "campaigns": campaigns,
        "total_runs": total_runs,
        "total_survived": total_survived,
        "total_half_patched": total_half,
        "clean": clean,
    }
    for campaign in campaigns:
        summary = campaign["summary"]
        print(
            f"{campaign['app']}: {summary['survived']}/{summary['runs']} "
            f"survived ({summary['committed']} committed, "
            f"{summary['rolled_back']} rolled back, "
            f"{summary['total_retries']} retries, "
            f"{summary['half_patched']} half-patched)"
        )
    return write_results(args.output, payload, hubs, clean, banner="campaign")


if __name__ == "__main__":
    sys.exit(main())
