"""Shared campaign-runner plumbing for the chaos/supervisor CLIs.

Both campaign CLIs had grown the same scaffolding: loop over seeds,
run one isolated scenario per seed, aggregate a ``clean`` verdict,
write a JSON report, print the verdict banner.  This module factors
that loop out and routes every campaign through the telemetry layer:

* each campaign body runs under its **own fresh**
  :class:`~repro.telemetry.TelemetryHub` (so seeds cannot bleed
  metrics into each other) — the body receives the hub and binds it to
  its kernel's virtual clock;
* the committed JSON keeps summaries and per-campaign digests only;
  the **full event streams** go to an uncommitted ``<output>.jsonl``
  sidecar, one JSON event per line, from which
  :func:`~repro.telemetry.summarize_events` can rebuild every reported
  number.
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable

from .. import telemetry
from ..telemetry import TelemetryHub, to_jsonl


def run_recorded(
    label: str, body: Callable[[TelemetryHub], dict]
) -> tuple[dict, TelemetryHub]:
    """Run one campaign body under a fresh ambient telemetry hub.

    ``body`` receives the hub (bind its clock once the kernel exists)
    and returns the campaign record; a ``campaign`` digest event and a
    per-record telemetry digest are attached before returning.
    """
    hub = TelemetryHub()
    with telemetry.recording(hub):
        record = body(hub)
    hub.emit(
        "campaign", label,
        events=len(hub.events),
        ok=bool(record.get("ok", record.get("clean", True))),
    )
    record["telemetry"] = {
        "events": len(hub.events),
        "counters": {
            "dispatch": hub.registry.sum_counters("dispatch_total"),
            "failover": hub.registry.sum_counters("failover_total"),
            "journal_phases": hub.registry.sum_counters("journal_phase_total"),
            "supervisor_events": hub.registry.sum_counters(
                "supervisor_events_total"
            ),
        },
    }
    return record, hub


def events_sidecar(output: pathlib.Path) -> pathlib.Path:
    """The uncommitted full-event-stream path next to ``output``."""
    return output.with_suffix(".jsonl")


def write_results(
    output: pathlib.Path,
    payload: dict,
    hubs: list[TelemetryHub],
    clean: bool,
    banner: str = "",
) -> int:
    """Write the summary JSON + the JSONL event sidecar; print verdict.

    Returns the CLI exit code (0 clean, 1 violated).
    """
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    sidecar = events_sidecar(output)
    with open(sidecar, "w") as handle:
        for hub in hubs:
            handle.write(to_jsonl(hub))
    detail = f" {banner}" if banner else ""
    print(
        f"{'CLEAN' if clean else 'VIOLATED'}{detail} -> {output} "
        f"(events -> {sidecar})"
    )
    return 0 if clean else 1
