"""``dynalint`` CLI — static checks over rewritten checkpoint images.

Two workflows::

    # run the quickstart rewrite and lint its image, optionally
    # exporting the rewritten image files to a host directory
    python -m repro.tools.dynalint_cli demo [--export DIR]

    # lint previously exported image files from a host directory
    python -m repro.tools.dynalint_cli lint DIR [--app redis]

The linter needs the pristine binaries the image was built from, so
``lint`` boots the named application's kernel (staging registers the
binaries without running the workload) before decoding the images.

Exit status is 0 when the image is clean, 1 when any diagnostic fired.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from ..analysis.lint import lint_checkpoint
from ..criu.images import CheckpointImage
from ..kernel import Kernel


class _HostFS:
    """Adapter giving CheckpointImage.load/save a host directory."""

    def __init__(self, root: pathlib.Path):
        self.root = root

    def read_file(self, path: str) -> bytes:
        return (self.root / pathlib.Path(path).name).read_bytes()

    def write_file(self, path: str, data: bytes) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / pathlib.Path(path).name).write_bytes(data)


def _stage_app(kernel: Kernel, app: str) -> None:
    """Register ``app``'s binaries (and libc) without running it."""
    from ..apps import stage_lighttpd, stage_nginx, stage_redis

    stager = {
        "redis": stage_redis,
        "lighttpd": stage_lighttpd,
        "nginx": stage_nginx,
    }.get(app)
    if stager is None:
        raise SystemExit(f"unknown app {app!r} (redis/lighttpd/nginx)")
    stager(kernel, run_to_ready=False)


def run_demo(export: pathlib.Path | None) -> int:
    """The quickstart rewrite with the lint wired in."""
    from ..apps import REDIS_PORT, stage_redis
    from ..apps.kvstore import REDIS_BINARY
    from ..core import DynaCut, TraceDiff, TrapPolicy
    from ..tracing import BlockTracer
    from ..workloads import RedisClient

    kernel = Kernel()
    server = stage_redis(kernel)
    client = RedisClient(kernel, REDIS_PORT)

    tracer = BlockTracer(kernel, server).attach()
    for command in ("PING", "GET greeting", "DEL greeting", "DBSIZE"):
        client.command(command)
    wanted = tracer.nudge_dump()
    client.command("SET greeting hello")
    undesired = tracer.finish()
    feature = TraceDiff(REDIS_BINARY).feature_blocks(
        "SET", wanted=[wanted], undesired=[undesired]
    )

    dynacut = DynaCut(kernel, lint_mode="always")
    report = dynacut.disable_feature(
        server.pid, feature,
        policy=TrapPolicy.REDIRECT,
        redirect_symbol="redis_unknown_cmd",
    )
    blocked = client.command("SET k v")
    print(f"feature SET: {feature.count} unique blocks; "
          f"blocked response: {blocked!r}")

    if export is not None:
        source_dir = dynacut.image_dir
        host = _HostFS(export)
        checkpoint = CheckpointImage.load(kernel.fs, source_dir)
        checkpoint.save(host, source_dir)
        print(f"exported {len(checkpoint.processes)} process image(s) "
              f"to {export}")

    assert report.lint is not None
    print(report.lint.summary())
    return 0 if report.lint.ok else 1


def run_lint(directory: pathlib.Path, app: str) -> int:
    kernel = Kernel()
    _stage_app(kernel, app)
    checkpoint = CheckpointImage.load(_HostFS(directory), ".")
    report = lint_checkpoint(kernel, checkpoint)
    print(report.summary())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="dynalint")
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser("demo", help="quickstart rewrite + lint")
    demo.add_argument("--export", type=pathlib.Path, default=None,
                      help="write the rewritten image files here")
    lint = sub.add_parser("lint", help="lint exported image files")
    lint.add_argument("directory", type=pathlib.Path)
    lint.add_argument("--app", default="redis",
                      help="application whose binaries the image uses")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return run_demo(args.export)
    return run_lint(args.directory, args.app)


if __name__ == "__main__":
    sys.exit(main())
