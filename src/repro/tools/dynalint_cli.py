"""``dynalint`` CLI — static checks over rewritten checkpoint images.

Three workflows::

    # run the quickstart rewrite and lint its image, optionally
    # exporting the rewritten image files to a host directory
    python -m repro.tools.dynalint_cli demo [--export DIR] [--json]

    # lint previously exported image files from a host directory
    python -m repro.tools.dynalint_cli lint DIR [--app redis] [--json]

    # run the DynaFlow refinement study over the server/SPEC guests
    # and emit the dynaflow_refinement.json results payload
    python -m repro.tools.dynalint_cli analyze [--out FILE] [--json]
                                               [--guest NAME ...]

The linter needs the pristine binaries the image was built from, so
``lint`` boots the named application's kernel (staging registers the
binaries without running the workload) before decoding the images.

Exit status: ``demo``/``lint`` exit 0 when no *error*-severity
diagnostic fired (warnings alone keep exit 0), 1 otherwise.
``analyze`` exits 0 when every guest got a full dataflow proof (no
fallback) and no verifier restore touched a provably-dead block.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass
from typing import Callable

from ..analysis.lint import lint_checkpoint
from ..criu.images import CheckpointImage
from ..kernel import Kernel

#: server guests measured by ``analyze`` (feature-removal profiles)
SERVER_GUESTS = ("redis", "lighttpd", "nginx")
#: SPEC guests measured by ``analyze`` (init-code removal profiles)
SPEC_GUESTS = ("600.perlbench_s", "605.mcf_s", "625.x264_s")
#: symbol inside each server's command/request dispatch function
DISPATCHERS = {
    "redis": "dispatch",
    "lighttpd": "lh_handle_request",
    "nginx": "ngx_handle_request",
}
#: server guests whose refined removal also runs end-to-end under the
#: verifier, attributing every trap-restore to a classification bucket
VERIFY_GUESTS = ("redis", "lighttpd")


class _HostFS:
    """Adapter giving CheckpointImage.load/save a host directory."""

    def __init__(self, root: pathlib.Path):
        self.root = root

    def read_file(self, path: str) -> bytes:
        return (self.root / pathlib.Path(path).name).read_bytes()

    def write_file(self, path: str, data: bytes) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / pathlib.Path(path).name).write_bytes(data)


def _stage_app(kernel: Kernel, app: str) -> None:
    """Register ``app``'s binaries (and libc) without running it."""
    from ..apps import stage_lighttpd, stage_nginx, stage_redis

    stager = {
        "redis": stage_redis,
        "lighttpd": stage_lighttpd,
        "nginx": stage_nginx,
    }.get(app)
    if stager is None:
        raise SystemExit(f"unknown app {app!r} (redis/lighttpd/nginx)")
    stager(kernel, run_to_ready=False)


def _emit_json(payload: object) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def run_demo(export: pathlib.Path | None, as_json: bool = False) -> int:
    """The quickstart rewrite with the lint wired in."""
    from ..apps import REDIS_PORT, stage_redis
    from ..apps.kvstore import REDIS_BINARY
    from ..core import DynaCut, TraceDiff, TrapPolicy
    from ..tracing import BlockTracer
    from ..workloads import RedisClient

    kernel = Kernel()
    server = stage_redis(kernel)
    client = RedisClient(kernel, REDIS_PORT)

    tracer = BlockTracer(kernel, server).attach()
    for command in ("PING", "GET greeting", "DEL greeting", "DBSIZE"):
        client.command(command)
    wanted = tracer.nudge_dump()
    client.command("SET greeting hello")
    undesired = tracer.finish()
    feature = TraceDiff(REDIS_BINARY).feature_blocks(
        "SET", wanted=[wanted], undesired=[undesired]
    )

    dynacut = DynaCut(kernel, lint_mode="always")
    report = dynacut.disable_feature(
        server.pid, feature,
        policy=TrapPolicy.REDIRECT,
        redirect_symbol="redis_unknown_cmd",
    )
    blocked = client.command("SET k v")

    if export is not None:
        source_dir = dynacut.image_dir
        host = _HostFS(export)
        checkpoint = CheckpointImage.load(kernel.fs, source_dir)
        checkpoint.save(host, source_dir)

    assert report.lint is not None
    if as_json:
        payload = report.lint.to_dict()
        payload["feature_blocks"] = feature.count
        payload["blocked_response"] = blocked
        _emit_json(payload)
    else:
        print(f"feature SET: {feature.count} unique blocks; "
              f"blocked response: {blocked!r}")
        if export is not None:
            print(f"exported image files to {export}")
        print(report.lint.summary())
    return 0 if report.lint.ok else 1


def run_lint(directory: pathlib.Path, app: str, as_json: bool = False) -> int:
    kernel = Kernel()
    _stage_app(kernel, app)
    checkpoint = CheckpointImage.load(_HostFS(directory), ".")
    report = lint_checkpoint(kernel, checkpoint)
    if as_json:
        _emit_json(report.to_dict())
    else:
        print(report.summary())
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# the DynaFlow refinement study (the ``analyze`` subcommand)


@dataclass
class GuestProfile:
    """One traced guest ready for removal-set classification."""

    name: str
    kind: str                       # server-feature | spec-init
    kernel: Kernel
    root: object                    # root Process
    binary: str
    blocks: list                    # removal set (BlockRecords)
    entries: list | None            # designated trap entries, if any
    feature: object | None = None   # FeatureBlocks for server guests
    exercise: Callable[[], object] | None = None


def _profile_redis_thin() -> GuestProfile:
    """Thin wanted profile (PING+GET) vs a SET/APPEND write feature."""
    from ..apps import REDIS_PORT, stage_redis
    from ..apps.kvstore import READY_LINE, REDIS_BINARY
    from ..core import TraceDiff
    from ..tracing import BlockTracer
    from ..workloads import RedisClient

    kernel = Kernel()
    proc = stage_redis(kernel, run_to_ready=False)
    tracer = BlockTracer(kernel, proc).attach()
    kernel.run_until(lambda: READY_LINE in proc.stdout_text(),
                     max_instructions=5_000_000)
    tracer.nudge_dump()
    client = RedisClient(kernel, REDIS_PORT)
    client.command("PING")
    client.command("GET greeting")
    wanted = tracer.nudge_dump()
    client.command("SET greeting hello")
    client.command("APPEND greeting x")
    undesired = tracer.finish()
    feature = TraceDiff(REDIS_BINARY).feature_blocks(
        "set-write", [wanted], [undesired]
    )

    def exercise() -> object:
        # the wanted workload the customized server is kept for: PING,
        # ECHO, and GET all dispatch *before* the trapped SET…APPEND
        # chain arms, so no designated entry needs to heal
        again = RedisClient(kernel, REDIS_PORT)
        return [again.command("PING"), again.command("ECHO hi"),
                again.command("GET greeting")]

    return GuestProfile(
        "redis", "server-feature", kernel, proc, REDIS_BINARY,
        list(feature.blocks), None, feature, exercise,
    )


def _profile_lighttpd_thin() -> GuestProfile:
    """Thin wanted profile (two GETs) vs the PUT/DELETE DAV feature."""
    from ..apps import LIGHTTPD_PORT, stage_lighttpd
    from ..apps.httpd_lighttpd import LIGHTTPD_BINARY, READY_LINE
    from ..core import TraceDiff
    from ..tracing import BlockTracer
    from ..workloads import HttpClient

    kernel = Kernel()
    proc = stage_lighttpd(kernel, run_to_ready=False)
    tracer = BlockTracer(kernel, proc).attach()
    kernel.run_until(lambda: READY_LINE in proc.stdout_text(),
                     max_instructions=5_000_000)
    tracer.nudge_dump()
    client = HttpClient(kernel, LIGHTTPD_PORT)
    kernel.fs.write_file("/var/www/about.html", "<p>about</p>")
    client.get("/")
    client.get("/about.html")
    wanted = tracer.nudge_dump()
    client.put("/probe.txt", "x")
    client.delete("/probe.txt")
    undesired = tracer.finish()
    feature = TraceDiff(LIGHTTPD_BINARY).feature_blocks(
        "dav-write", [wanted], [undesired]
    )

    def exercise() -> object:
        again = HttpClient(kernel, LIGHTTPD_PORT)
        return [again.get("/").status, again.get("/about.html").status,
                again.get("/missing.html").status, again.head("/").status,
                again.post("/echo", "abcd").status]

    return GuestProfile(
        "lighttpd", "server-feature", kernel, proc, LIGHTTPD_BINARY,
        list(feature.blocks), None, feature, exercise,
    )


def _profile_nginx_thin() -> GuestProfile:
    """Thin wanted profile against nginx's DAV feature (master+worker)."""
    from ..apps import NGINX_PORT, nginx_worker, stage_nginx
    from ..apps.httpd_nginx import NGINX_BINARY, READY_LINE, WORKER_LINE
    from ..core import TraceDiff
    from ..tracing import BlockTracer, merge_traces
    from ..workloads import HttpClient

    kernel = Kernel()
    master = stage_nginx(kernel, run_to_ready=False)
    tracer_m = BlockTracer(kernel, master).attach()
    kernel.run_until(lambda: READY_LINE in master.stdout_text(),
                     max_instructions=8_000_000)
    worker = nginx_worker(kernel, master)
    tracer_w = BlockTracer(kernel, worker).attach()
    kernel.run_until(lambda: WORKER_LINE in worker.stdout_text(),
                     max_instructions=2_000_000)
    merge_traces([tracer_m.nudge_dump(), tracer_w.nudge_dump()])
    client = HttpClient(kernel, NGINX_PORT)
    kernel.fs.write_file("/var/www/about.html", "<p>about</p>")
    client.get("/")
    client.get("/about.html")
    wanted = merge_traces([tracer_m.nudge_dump(), tracer_w.nudge_dump()])
    client.put("/probe.txt", "x")
    client.delete("/probe.txt")
    undesired = merge_traces([tracer_m.finish(), tracer_w.finish()])
    feature = TraceDiff(NGINX_BINARY).feature_blocks(
        "dav-write", [wanted], [undesired]
    )
    return GuestProfile(
        "nginx", "server-feature", kernel, master, NGINX_BINARY,
        list(feature.blocks), None, feature, None,
    )


def _profile_spec_init(name: str) -> GuestProfile:
    """Init-only removal set of one SPEC-like guest."""
    from ..apps import get_benchmark, stage_spec
    from ..apps.spec import INIT_DONE_LINE
    from ..core import init_only_blocks
    from ..tracing import BlockTracer

    bench = get_benchmark(name)
    kernel = Kernel()
    proc = stage_spec(kernel, name, iterations=2, run_to_init=False)
    tracer = BlockTracer(kernel, proc).attach()
    kernel.run_until(lambda: INIT_DONE_LINE in proc.stdout_text(),
                     max_instructions=20_000_000)
    init_trace = tracer.nudge_dump(quiesce=False)
    kernel.run(max_instructions=1_500_000)
    serving = tracer.finish(quiesce=False)
    report = init_only_blocks(init_trace, serving, bench.binary)
    return GuestProfile(
        name, "spec-init", kernel, proc, bench.binary,
        list(report.init_only), None, None, None,
    )


_PROFILERS: dict[str, Callable[[], GuestProfile]] = {
    "redis": _profile_redis_thin,
    "lighttpd": _profile_lighttpd_thin,
    "nginx": _profile_nginx_thin,
    **{name: (lambda n=name: _profile_spec_init(n)) for name in SPEC_GUESTS},
}


def _dispatcher_entries(profile: GuestProfile) -> list | None:
    """The feature's blocks inside the app's dispatch function."""
    from ..core.dynacut import enclosing_function

    dispatcher = DISPATCHERS.get(profile.name)
    if dispatcher is None:
        return None
    binary = profile.kernel.binaries[profile.binary]
    dispatcher_fn = enclosing_function(
        binary, binary.symbol_address(dispatcher)
    )
    entries = [
        block for block in profile.blocks
        if enclosing_function(binary, block.offset) == dispatcher_fn
    ]
    return entries or None


def _flow_summary(image) -> dict:
    """Deterministic indirect-resolution/hazard stats for one image."""
    from ..analysis.dataflow import analyze_image_flow

    flow = analyze_image_flow(image)
    internal = [s for s in flow.sites if s.resolved and not s.external]
    external = [s for s in flow.sites if s.external]
    return {
        "indirect_sites": len(flow.sites),
        "resolved_internal": len(internal),
        "resolved_external": len(external),
        "unresolved": len(flow.unresolved_sites()),
        "address_taken": len(flow.address_taken),
        "store_hazards": len(flow.hazards),
        "blocks_analyzed": flow.blocks_analyzed,
        "solver_visits": flow.solver_visits,
    }


def _verify_attribution(profile: GuestProfile) -> dict:
    """Refined prove-mode WIPE under the verifier, restores attributed.

    Every address the verifier heals is matched against the
    classification: a restore inside a PROVABLY_DEAD block would mean
    the dataflow proof was wrong (the acceptance bar is zero).
    """
    from ..core import BlockMode, DynaCut, TrapPolicy
    from ..core.verifier import read_verifier_log

    dynacut = DynaCut(profile.kernel)
    report = dynacut.disable_feature(
        profile.root.pid, profile.feature,  # type: ignore[arg-type]
        policy=TrapPolicy.VERIFY, mode=BlockMode.WIPE,
        refine=True, prove=True,
        dispatcher_symbol=DISPATCHERS[profile.name],
    )
    proc = dynacut.restored_process(profile.root.pid)
    responses = profile.exercise() if profile.exercise else None
    log = read_verifier_log(profile.kernel, proc)
    refinement = report.refinement
    assert refinement is not None
    trapped = set(log.trapped_addresses)
    dead = {b.offset for b in refinement.provably_dead}
    trap_entries = {b.offset for b in refinement.trap_required}
    return {
        "trap_restores": len(trapped),
        "provably_dead_restores": len(trapped & dead),
        "trap_entry_restores": len(trapped & trap_entries),
        "responses": responses,
    }


def analyze_guest(name: str) -> dict:
    """Legacy-vs-prove refinement comparison for one guest."""
    from ..analysis.reachability import refine_removal_set

    profiler = _PROFILERS.get(name)
    if profiler is None:
        known = ", ".join(sorted(_PROFILERS))
        raise SystemExit(f"unknown guest {name!r} (known: {known})")
    profile = profiler()
    binary = profile.kernel.binaries[profile.binary]
    entries = _dispatcher_entries(profile)
    legacy = refine_removal_set(binary, profile.blocks, entries)
    prove = refine_removal_set(binary, profile.blocks, entries, prove=True)
    upgraded = legacy.counts["suspect"] - prove.counts["suspect"]
    row = {
        "guest": name,
        "kind": profile.kind,
        "removal_set": len(profile.blocks),
        "legacy": dict(sorted(legacy.counts.items())),
        "prove": dict(sorted(prove.counts.items())),
        "mode": prove.mode,
        "fallback_reason": prove.fallback_reason,
        "suspects_upgraded": upgraded,
        "wipe_safe": len(prove.wipe_safe),
        "flow": _flow_summary(binary),
    }
    if profile.kind == "server-feature" and name in VERIFY_GUESTS:
        row["verify"] = _verify_attribution(profile)
    return row


def collect_refinement(guests: tuple[str, ...] | None = None) -> dict:
    """The full refinement study payload (``dynaflow_refinement.json``)."""
    if not guests:
        guests = SERVER_GUESTS + SPEC_GUESTS
    rows = [analyze_guest(name) for name in guests]
    legacy_suspects = sum(r["legacy"]["suspect"] for r in rows)
    prove_suspects = sum(r["prove"]["suspect"] for r in rows)
    upgraded = legacy_suspects - prove_suspects
    shrinkage = (
        round(100.0 * upgraded / legacy_suspects, 1)
        if legacy_suspects else 0.0
    )
    dead_restores = sum(
        r["verify"]["provably_dead_restores"] for r in rows if "verify" in r
    )
    return {
        "guests": rows,
        "totals": {
            "legacy_suspects": legacy_suspects,
            "prove_suspects": prove_suspects,
            "suspects_upgraded": upgraded,
            "suspect_shrinkage_pct": shrinkage,
            "provably_dead_restores": dead_restores,
        },
    }


def run_analyze(
    out: pathlib.Path | None,
    as_json: bool = False,
    guests: tuple[str, ...] | None = None,
) -> int:
    payload = collect_refinement(guests)
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True))
    if as_json:
        _emit_json(payload)
    else:
        for row in payload["guests"]:
            verify = row.get("verify")
            tail = (
                f"  restores={verify['trap_restores']} "
                f"(dead={verify['provably_dead_restores']})"
                if verify else ""
            )
            print(
                f"{row['guest']:>16}  removal={row['removal_set']:>3}  "
                f"suspects {row['legacy']['suspect']:>3} -> "
                f"{row['prove']['suspect']:>3}  mode={row['mode']}{tail}"
            )
        totals = payload["totals"]
        print(
            f"total suspects {totals['legacy_suspects']} -> "
            f"{totals['prove_suspects']} "
            f"({totals['suspect_shrinkage_pct']}% upgraded), "
            f"{totals['provably_dead_restores']} provably-dead restores"
        )
        if out is not None:
            print(f"wrote {out}")
    clean = all(r["mode"] == "prove" for r in payload["guests"])
    return 0 if clean and payload["totals"]["provably_dead_restores"] == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="dynalint")
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser("demo", help="quickstart rewrite + lint")
    demo.add_argument("--export", type=pathlib.Path, default=None,
                      help="write the rewritten image files here")
    demo.add_argument("--json", action="store_true",
                      help="emit the lint report as deterministic JSON")
    lint = sub.add_parser("lint", help="lint exported image files")
    lint.add_argument("directory", type=pathlib.Path)
    lint.add_argument("--app", default="redis",
                      help="application whose binaries the image uses")
    lint.add_argument("--json", action="store_true",
                      help="emit the lint report as deterministic JSON")
    analyze = sub.add_parser(
        "analyze", help="DynaFlow refinement study over the guests"
    )
    analyze.add_argument("--out", type=pathlib.Path, default=None,
                         help="also write the JSON payload here")
    analyze.add_argument("--json", action="store_true",
                         help="print the payload as JSON")
    analyze.add_argument("--guest", action="append", default=None,
                         help="restrict to this guest (repeatable)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return run_demo(args.export, args.json)
    if args.command == "analyze":
        guests = tuple(args.guest) if args.guest else None
        return run_analyze(args.out, args.json, guests)
    return run_lint(args.directory, args.app, args.json)


if __name__ == "__main__":
    sys.exit(main())
