"""Minimal dependency-free SVG charts.

Enough to regenerate the paper's line figures (throughput timeline,
live-blocks-over-time) and the telemetry CLI's cost summaries (bar
charts) as actual image files in ``results/`` without pulling in
matplotlib.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_COLORS = (
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
    "#8c564b", "#7f7f7f", "#17becf",
)


@dataclass
class Series:
    label: str
    points: list[tuple[float, float]]
    dashed: bool = False


@dataclass
class LineChart:
    """A simple multi-series line chart with axes and a legend."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    width: int = 640
    height: int = 400
    margin: int = 56

    def add_series(
        self, label: str, points: list[tuple[float, float]],
        dashed: bool = False,
    ) -> None:
        self.series.append(Series(label, list(points), dashed))

    # ------------------------------------------------------------------

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = [x for s in self.series for x, __ in s.points]
        ys = [y for s in self.series for __, y in s.points]
        if not xs:
            return 0.0, 1.0, 0.0, 1.0
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(0.0, min(ys)), max(ys)
        if x_max == x_min:
            x_max = x_min + 1
        if y_max == y_min:
            y_max = y_min + 1
        return x_min, x_max, y_min, y_max * 1.08

    def to_svg(self) -> str:
        x_min, x_max, y_min, y_max = self._bounds()
        m = self.margin
        plot_w = self.width - 2 * m
        plot_h = self.height - 2 * m

        def sx(x: float) -> float:
            return m + (x - x_min) / (x_max - x_min) * plot_w

        def sy(y: float) -> float:
            return self.height - m - (y - y_min) / (y_max - y_min) * plot_h

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" font-family="sans-serif" font-size="12">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{self.title}</text>',
            # axes
            f'<line x1="{m}" y1="{self.height - m}" x2="{self.width - m}" '
            f'y2="{self.height - m}" stroke="black"/>',
            f'<line x1="{m}" y1="{m}" x2="{m}" y2="{self.height - m}" '
            'stroke="black"/>',
            f'<text x="{self.width / 2}" y="{self.height - 12}" '
            f'text-anchor="middle">{self.x_label}</text>',
            f'<text x="16" y="{self.height / 2}" text-anchor="middle" '
            f'transform="rotate(-90 16 {self.height / 2})">{self.y_label}</text>',
        ]
        # ticks: 5 on each axis
        for i in range(6):
            x_val = x_min + (x_max - x_min) * i / 5
            y_val = y_min + (y_max - y_min) * i / 5
            x_pix, y_pix = sx(x_val), sy(y_val)
            parts.append(
                f'<line x1="{x_pix:.1f}" y1="{self.height - m}" '
                f'x2="{x_pix:.1f}" y2="{self.height - m + 4}" stroke="black"/>'
            )
            parts.append(
                f'<text x="{x_pix:.1f}" y="{self.height - m + 16}" '
                f'text-anchor="middle">{x_val:g}</text>'
            )
            parts.append(
                f'<line x1="{m - 4}" y1="{y_pix:.1f}" x2="{m}" '
                f'y2="{y_pix:.1f}" stroke="black"/>'
            )
            parts.append(
                f'<text x="{m - 8}" y="{y_pix + 4:.1f}" '
                f'text-anchor="end">{y_val:g}</text>'
            )
        # series
        for index, series in enumerate(self.series):
            color = _COLORS[index % len(_COLORS)]
            coords = " ".join(
                f"{sx(x):.1f},{sy(y):.1f}" for x, y in series.points
            )
            dash = ' stroke-dasharray="6,4"' if series.dashed else ""
            parts.append(
                f'<polyline points="{coords}" fill="none" stroke="{color}" '
                f'stroke-width="2"{dash}/>'
            )
            legend_y = self.margin + 8 + index * 18
            parts.append(
                f'<line x1="{self.width - m - 130}" y1="{legend_y}" '
                f'x2="{self.width - m - 105}" y2="{legend_y}" '
                f'stroke="{color}" stroke-width="2"{dash}/>'
            )
            parts.append(
                f'<text x="{self.width - m - 100}" y="{legend_y + 4}">'
                f'{series.label}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_svg())


@dataclass
class BarChart:
    """Labeled vertical bars with axes and per-bar value captions."""

    title: str
    x_label: str
    y_label: str
    bars: list[tuple[str, float]] = field(default_factory=list)
    width: int = 640
    height: int = 400
    margin: int = 56

    def add_bar(self, label: str, value: float) -> None:
        self.bars.append((label, float(value)))

    def to_svg(self) -> str:
        m = self.margin
        plot_w = self.width - 2 * m
        plot_h = self.height - 2 * m
        y_max = max((value for __, value in self.bars), default=0.0)
        if y_max <= 0:
            y_max = 1.0
        y_max *= 1.08

        def sy(y: float) -> float:
            return self.height - m - y / y_max * plot_h

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" font-family="sans-serif" font-size="12">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{self.title}</text>',
            f'<line x1="{m}" y1="{self.height - m}" x2="{self.width - m}" '
            f'y2="{self.height - m}" stroke="black"/>',
            f'<line x1="{m}" y1="{m}" x2="{m}" y2="{self.height - m}" '
            'stroke="black"/>',
            f'<text x="{self.width / 2}" y="{self.height - 12}" '
            f'text-anchor="middle">{self.x_label}</text>',
            f'<text x="16" y="{self.height / 2}" text-anchor="middle" '
            f'transform="rotate(-90 16 {self.height / 2})">{self.y_label}</text>',
        ]
        for i in range(6):
            y_val = y_max * i / 5
            y_pix = sy(y_val)
            parts.append(
                f'<line x1="{m - 4}" y1="{y_pix:.1f}" x2="{m}" '
                f'y2="{y_pix:.1f}" stroke="black"/>'
            )
            parts.append(
                f'<text x="{m - 8}" y="{y_pix + 4:.1f}" '
                f'text-anchor="end">{y_val:g}</text>'
            )
        if self.bars:
            slot = plot_w / len(self.bars)
            bar_w = max(4.0, slot * 0.6)
            for index, (label, value) in enumerate(self.bars):
                color = _COLORS[index % len(_COLORS)]
                x = m + index * slot + (slot - bar_w) / 2
                top = sy(max(0.0, value))
                bar_h = self.height - m - top
                parts.append(
                    f'<rect x="{x:.1f}" y="{top:.1f}" width="{bar_w:.1f}" '
                    f'height="{bar_h:.1f}" fill="{color}"/>'
                )
                cx = x + bar_w / 2
                parts.append(
                    f'<text x="{cx:.1f}" y="{top - 4:.1f}" '
                    f'text-anchor="middle" font-size="10">{value:g}</text>'
                )
                parts.append(
                    f'<text x="{cx:.1f}" y="{self.height - m + 16}" '
                    f'text-anchor="middle">{label}</text>'
                )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_svg())


@dataclass
class StackedBarChart:
    """Vertical bars stacked by category (the latency-waterfall style).

    ``categories`` fixes both the stacking order (bottom-up) and the
    color assignment, so every bar decomposes the same way; a bar maps
    each category to its segment height and may omit zero segments.
    """

    title: str
    x_label: str
    y_label: str
    categories: list[str]
    bars: list[tuple[str, dict[str, float]]] = field(default_factory=list)
    width: int = 720
    height: int = 400
    margin: int = 56

    def add_bar(self, label: str, segments: dict[str, float]) -> None:
        self.bars.append((label, {k: float(v) for k, v in segments.items()}))

    def color(self, category: str) -> str:
        return _COLORS[self.categories.index(category) % len(_COLORS)]

    def to_svg(self) -> str:
        m = self.margin
        plot_w = self.width - 2 * m
        plot_h = self.height - 2 * m
        y_max = max(
            (sum(segments.values()) for __, segments in self.bars),
            default=0.0,
        )
        if y_max <= 0:
            y_max = 1.0
        y_max *= 1.08

        def sy(y: float) -> float:
            return self.height - m - y / y_max * plot_h

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" font-family="sans-serif" font-size="12">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{self.title}</text>',
            f'<line x1="{m}" y1="{self.height - m}" x2="{self.width - m}" '
            f'y2="{self.height - m}" stroke="black"/>',
            f'<line x1="{m}" y1="{m}" x2="{m}" y2="{self.height - m}" '
            'stroke="black"/>',
            f'<text x="{self.width / 2}" y="{self.height - 12}" '
            f'text-anchor="middle">{self.x_label}</text>',
            f'<text x="16" y="{self.height / 2}" text-anchor="middle" '
            f'transform="rotate(-90 16 {self.height / 2})">{self.y_label}</text>',
        ]
        for i in range(6):
            y_val = y_max * i / 5
            y_pix = sy(y_val)
            parts.append(
                f'<line x1="{m - 4}" y1="{y_pix:.1f}" x2="{m}" '
                f'y2="{y_pix:.1f}" stroke="black"/>'
            )
            parts.append(
                f'<text x="{m - 8}" y="{y_pix + 4:.1f}" '
                f'text-anchor="end">{y_val:g}</text>'
            )
        if self.bars:
            slot = plot_w / len(self.bars)
            bar_w = max(4.0, slot * 0.6)
            for index, (label, segments) in enumerate(self.bars):
                x = m + index * slot + (slot - bar_w) / 2
                running = 0.0
                for category in self.categories:
                    value = segments.get(category, 0.0)
                    if value <= 0:
                        continue
                    top = sy(running + value)
                    seg_h = sy(running) - top
                    parts.append(
                        f'<rect x="{x:.1f}" y="{top:.1f}" '
                        f'width="{bar_w:.1f}" height="{seg_h:.1f}" '
                        f'fill="{self.color(category)}"/>'
                    )
                    running += value
                parts.append(
                    f'<text x="{x + bar_w / 2:.1f}" '
                    f'y="{self.height - m + 16}" '
                    f'text-anchor="middle" font-size="10">{label}</text>'
                )
        for index, category in enumerate(self.categories):
            legend_y = self.margin + 8 + index * 16
            parts.append(
                f'<rect x="{self.width - m - 120}" y="{legend_y - 8}" '
                f'width="10" height="10" fill="{self.color(category)}"/>'
            )
            parts.append(
                f'<text x="{self.width - m - 106}" y="{legend_y + 2}">'
                f'{category}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_svg())


@dataclass
class GridMap:
    """A colored-cell grid (the Figure 2 memory-footprint style).

    ``cells`` is a flat list of category keys; ``palette`` maps each
    key to a fill color.  Cells wrap after ``columns`` entries, mapping
    a linear address space onto a 2-D picture.
    """

    title: str
    cells: list[str]
    palette: dict[str, str]
    legend: dict[str, str] = field(default_factory=dict)
    columns: int = 64
    cell_size: int = 8

    def to_svg(self) -> str:
        rows = -(-len(self.cells) // self.columns) if self.cells else 1
        width = self.columns * self.cell_size + 16
        height = rows * self.cell_size + 72
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" font-family="sans-serif" font-size="11">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
            f'<text x="{width / 2}" y="16" text-anchor="middle" '
            f'font-size="13" font-weight="bold">{self.title}</text>',
        ]
        for index, key in enumerate(self.cells):
            row, col = divmod(index, self.columns)
            x = 8 + col * self.cell_size
            y = 28 + row * self.cell_size
            color = self.palette.get(key, "#cccccc")
            parts.append(
                f'<rect x="{x}" y="{y}" width="{self.cell_size - 1}" '
                f'height="{self.cell_size - 1}" fill="{color}"/>'
            )
        legend_y = 28 + rows * self.cell_size + 16
        legend_x = 8
        for key, color in self.palette.items():
            label = self.legend.get(key, key)
            parts.append(
                f'<rect x="{legend_x}" y="{legend_y - 9}" width="10" '
                f'height="10" fill="{color}"/>'
            )
            parts.append(
                f'<text x="{legend_x + 14}" y="{legend_y}">{label}</text>'
            )
            legend_x += 14 + 8 * len(label) + 16
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_svg())
