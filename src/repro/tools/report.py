"""Compile ``results/*.json`` into a single markdown experiment report.

Usage::

    python -m repro.tools.report [results_dir] > report.md

The benchmarks write one JSON artifact per experiment; this renderer
turns whatever subset exists into tables, so partial benchmark runs
still produce a useful report.
"""

from __future__ import annotations

import json
import pathlib
import sys


def _load(directory: pathlib.Path, name: str) -> dict | None:
    path = directory / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _table(headers: list[str], rows: list[list]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for __ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def _fig2(data: dict) -> str:
    rows = [
        [app, r["total_static_blocks"], r["executed_blocks"],
         r["unused_blocks"], r["init_only_blocks"]]
        for app, r in data.items()
    ]
    return "## Figure 2 — block liveness footprint\n\n" + _table(
        ["app", "total BBs", "executed", "unused", "init-only"], rows
    )


def _fig6(data: dict) -> str:
    rows = [
        [app, f"{r['image_bytes'] / 1e6:.2f}MB x{r['processes']}",
         f"{r['checkpoint']:.1f}", f"{r['disable code w/ int3']:.1f}",
         f"{r['insert sighandler']:.1f}", f"{r['restore']:.1f}",
         f"{r['total']:.1f}"]
        for app, r in data.items()
    ]
    return "## Figure 6 — feature-customization overhead (virtual ms)\n\n" + _table(
        ["app", "image", "checkpoint", "int3", "sighandler", "restore",
         "total"], rows
    )


def _fig7(data: dict) -> str:
    rows = [
        [app, r["init_blocks_removed"],
         f"{r['checkpoint_restore_ms']:.0f}", f"{r['code_update_ms']:.0f}",
         f"{r['total_ms']:.0f}"]
        for app, r in data.items()
    ]
    return "## Figure 7 — init-code removal (virtual ms)\n\n" + _table(
        ["app", "init BBs", "C/R", "code update", "total"], rows
    )


def _fig8(data: dict) -> str:
    with_dc = data["with_dynacut"]
    without = data["without_dynacut"]
    rows = [
        [f"{t:.0f}", f"{a:.0f}", f"{b:.0f}"]
        for (t, a), (__, b) in zip(with_dc, without)
    ]
    events = ", ".join(f"{ns / 1e9:.1f}s: {label}" for ns, label in data["events"])
    return ("## Figure 8 — throughput timeline (req/s)\n\n"
            + _table(["t (s)", "w/ DynaCut", "w/o"], rows)
            + f"\n\nrewrites: {events}")


def _fig9(data: dict) -> str:
    rows = [
        [app, r["total_static_blocks"], r["executed_blocks"],
         r["removed_blocks"], f"{r['removed_fraction']:.1%}"]
        for app, r in data.items()
    ]
    return "## Figure 9 — executed vs removed blocks\n\n" + _table(
        ["app", "total BBs", "executed", "removed", "removed %"], rows
    )


def _fig10(data: dict) -> str:
    rows = [
        [i, label, f"{fraction:.1%}", f"{data['razor']:.1%}",
         f"{data['chisel']:.1%}"]
        for i, (label, fraction) in enumerate(data["dynacut"])
    ]
    return "## Figure 10 — live blocks over time\n\n" + _table(
        ["slot", "phase", "DynaCut", "RAZOR", "CHISEL"], rows
    )


def _table1(data: dict) -> str:
    rows = [
        [cve, r["command"],
         "exploited" if r["vanilla_exploited"] else "survived",
         "mitigated" if r["dynacut_mitigated"] else "EXPLOITED"]
        for cve, r in data.items()
    ]
    return "## Table 1 — CVE mitigation\n\n" + _table(
        ["CVE", "command", "vanilla", "w/ DynaCut"], rows
    )


def _sec(data: dict) -> str:
    rows = [
        ["Nginx", data["nginx_plt"]["executed"], data["nginx_plt"]["removed"]],
        ["Lighttpd", data["lighttpd_plt"]["executed"],
         data["lighttpd_plt"]["removed"]],
    ]
    attack_rows = [
        ["ret2plt(fork)", data["vanilla"]["ret2plt_fork"],
         data["dynacut"]["ret2plt_fork"]],
        ["BROP feasible", data["vanilla"]["brop_feasible"],
         data["dynacut"]["brop_feasible"]],
    ]
    return ("## §4.2 — PLT removal and attacks\n\n"
            + _table(["app", "executed PLT", "removed"], rows)
            + "\n\n"
            + _table(["attack", "vanilla", "w/ DynaCut"], attack_rows))


_SECTIONS = (
    ("fig2_footprint", _fig2),
    ("fig6_feature_removal", _fig6),
    ("fig7_init_removal", _fig7),
    ("fig8_timeline", _fig8),
    ("fig9_removed_blocks", _fig9),
    ("fig10_live_blocks", _fig10),
    ("table1_cves", _table1),
    ("sec_plt_attacks", _sec),
)


def render(directory: pathlib.Path) -> str:
    """Render every available experiment artifact into markdown."""
    parts = ["# DynaCut reproduction — experiment report",
             f"\nsource: `{directory}`\n"]
    rendered = 0
    for name, formatter in _SECTIONS:
        data = _load(directory, name)
        if data is None:
            continue
        parts.append(formatter(data))
        rendered += 1
    extras = sorted(
        p.stem for p in directory.glob("*.json")
        if p.stem not in {name for name, __ in _SECTIONS}
    )
    if extras:
        parts.append("## Additional artifacts\n\n" + "\n".join(
            f"- `{stem}.json`" for stem in extras
        ))
    if rendered == 0:
        parts.append("*(no experiment artifacts found — run "
                     "`pytest benchmarks/ --benchmark-only` first)*")
    return "\n\n".join(parts) + "\n"


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    directory = pathlib.Path(args[0]) if args else pathlib.Path("results")
    sys.stdout.write(render(directory))
    return 0


if __name__ == "__main__":
    sys.exit(main())
