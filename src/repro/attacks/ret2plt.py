"""ret2plt simulation.

A return-to-PLT attack pivots a hijacked control flow into a PLT stub
(``fork@plt``, ``execve@plt``, ``write@plt``...) to invoke sensitive
library functions without knowing the library's base.  We model the
*post-exploitation* step directly: the attacker already controls the
instruction pointer (mininginx's URL overflow grants that) and aims it
at a PLT entry.

Outcome is judged from the kernel's security-event log: if the stub is
intact, the libc function runs and the sensitive syscall (``execve``,
``fork``) is observed; if DynaCut wiped the stub, the pivot lands on
``int3``/garbage and the process dies without reaching the syscall.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..binfmt.self_format import SelfImage
from ..kernel.kernel import Kernel
from ..kernel.process import Process


@dataclass
class Ret2PltResult:
    symbol: str
    pivot_address: int
    syscall_invoked: bool     # the sensitive syscall was reached
    process_survived: bool

    @property
    def attack_succeeded(self) -> bool:
        return self.syscall_invoked


def attempt_ret2plt(
    kernel: Kernel,
    proc: Process,
    image: SelfImage,
    symbol: str,
    max_instructions: int = 50_000,
) -> Ret2PltResult:
    """Pivot ``proc``'s control flow into ``symbol``'s PLT stub.

    The register/IP hijack itself is assumed (it models the completed
    memory-corruption step); what is being measured is whether the PLT
    entry is still a usable springboard.
    """
    stub = image.plt_entries.get(symbol)
    if stub is None:
        raise KeyError(f"{image.name} has no PLT entry for {symbol!r}")
    module = proc.executable_module()
    pivot = module.load_base + stub

    events_before = len(kernel.security_log)
    proc.regs.rip = pivot
    # the hijack happens while handling the attacker's request, so the
    # process is on-CPU, not parked in a blocking syscall
    from ..kernel.process import ProcessState

    if proc.state is ProcessState.BLOCKED:
        proc.state = ProcessState.RUNNABLE
        proc.wake_predicate = None
        proc.wake_deadline = None
    # give the hijacked flow a syscall-sized budget to reach its target
    kernel.run(max_instructions=max_instructions,
               until=lambda: len(kernel.security_log) > events_before
               or not proc.alive)
    invoked = any(
        event.kind in ("execve", "fork") and event.pid == proc.pid
        for event in kernel.security_log[events_before:]
    )
    return Ret2PltResult(
        symbol=symbol,
        pivot_address=pivot,
        syscall_invoked=invoked,
        process_survived=proc.alive,
    )
