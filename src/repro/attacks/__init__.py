"""Attack simulations for the security evaluation (§4.2)."""

from .cves import (
    AttackOutcome,
    CveSpec,
    REDIS_CVES,
    attempt_cve,
    cve_by_id,
)
from .brop import BropResult, PROBES_REQUIRED, live_workers, run_brop
from .ret2plt import Ret2PltResult, attempt_ret2plt

__all__ = [
    "AttackOutcome",
    "BropResult",
    "CveSpec",
    "PROBES_REQUIRED",
    "REDIS_CVES",
    "Ret2PltResult",
    "attempt_cve",
    "attempt_ret2plt",
    "cve_by_id",
    "live_workers",
    "run_brop",
]
