"""Redis CVE exploit simulations (Table 1).

Each entry crafts the input that drives the corresponding vulnerable
handler in miniredis into memory corruption.  An attack *succeeds*
when the corruption fires (the server crashes with SIGSEGV/SIGILL or
control flow is hijacked); it is *mitigated* when DynaCut's feature
blocking turns the request into an error reply and the server stays
up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel.kernel import Kernel
from ..kernel.process import Process
from ..kernel.signals import Signal


@dataclass(frozen=True)
class CveSpec:
    """One CVE: the command family it lives in and a working exploit."""

    cve: str
    description: str
    command: str             # the dispatcher command word (the feature)
    exploit_line: str        # crafted request triggering the bug
    benign_line: str         # a well-formed use of the same feature


#: the five Redis CVEs of Table 1, with this reproduction's exploits
REDIS_CVES: tuple[CveSpec, ...] = (
    CveSpec(
        cve="CVE-2021-32625",
        description="STRALGO LCS integer overflow (Redis 6.0+)",
        command="STRALGO",
        # 16*16 = 256 truncates to 0 in the 8-bit size check; the fill
        # loop then writes 256 bytes into a 64-byte stack matrix
        exploit_line="STRALGO LCS aaaaaaaaaaaaaaaa bbbbbbbbbbbbbbbb",
        benign_line="STRALGO LCS abc abd",
    ),
    CveSpec(
        cve="CVE-2021-29477",
        description="STRALGO LCS integer overflow, second operand shape",
        command="STRALGO",
        # 32*8 = 256 also truncates to 0
        exploit_line=(
            "STRALGO LCS aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa bbbbbbbb"
        ),
        benign_line="STRALGO LCS xy xz",
    ),
    CveSpec(
        cve="CVE-2019-10193",
        description="SETRANGE missing bound check (stack-buffer overflow)",
        command="SETRANGE",
        exploit_line="SETRANGE victim 20000000 smash",
        benign_line="SETRANGE victim 0 ok",
    ),
    CveSpec(
        cve="CVE-2019-10192",
        description="SETRANGE missing bound check (heap-buffer overflow)",
        command="SETRANGE",
        exploit_line="SETRANGE victim 99999999 smash",
        benign_line="SETRANGE victim 1 ok",
    ),
    CveSpec(
        cve="CVE-2016-8339",
        description="CONFIG SET buffer overflow into a function pointer",
        command="CONFIG",
        exploit_line="CONFIG SET loglevel " + "A" * 96,
        benign_line="CONFIG SET loglevel debug",
    ),
)


def cve_by_id(cve: str) -> CveSpec:
    for spec in REDIS_CVES:
        if spec.cve == cve:
            return spec
    raise KeyError(f"unknown CVE {cve!r}")


@dataclass
class AttackOutcome:
    """What happened when the exploit line was delivered."""

    cve: str
    response: bytes          # reply bytes, if any arrived before the crash
    server_alive: bool
    term_signal: Signal | None

    @property
    def exploited(self) -> bool:
        """The vulnerable code executed and corrupted memory."""
        return not self.server_alive

    @property
    def mitigated(self) -> bool:
        """The server survived and answered with an error."""
        return self.server_alive and self.response.startswith(b"-ERR")


def attempt_cve(
    kernel: Kernel,
    proc: Process,
    port: int,
    spec: CveSpec,
    max_instructions: int = 3_000_000,
) -> AttackOutcome:
    """Deliver ``spec``'s exploit over a fresh connection."""
    sock = kernel.connect(port)
    sock.send(spec.exploit_line + "\n")
    kernel.run_until(
        lambda: not proc.alive or b"\n" in sock.endpoint.recv_buffer,
        max_instructions=max_instructions,
    )
    response = sock.recv_available()
    sock.close()
    return AttackOutcome(
        cve=spec.cve,
        response=response,
        server_alive=proc.alive,
        term_signal=proc.term_signal,
    )
