"""Blind-ROP (BROP) simulation against the nginx-like server.

BROP (Bittau et al., Oakland'14) needs two properties of the target:

1. a **crash primitive** — here mininginx's unchecked 64-byte URL
   buffer, which a long request-line smashes;
2. **worker respawn** — the master forks an identical worker after
   every crash, letting the attacker brute-force one byte of the stack
   canary (or one gadget address) per probe against the *same* address
   space.

The simulator throws crash probes and counts how many consecutive
probes the service survives.  A real BROP needs on the order of
``8 * canary_bytes`` probes; if the worker is not respawned (because
DynaCut removed the master's post-init fork/respawn path), the first
probe ends the exercise and the attack is infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel.kernel import Kernel
from ..kernel.process import Process

#: probes a byte-by-byte canary brute force needs to be viable
PROBES_REQUIRED = 8


def _crash_request() -> str:
    return "GET /" + "A" * 400 + " HTTP/1.0\r\n\r\n"


def live_workers(kernel: Kernel, master_pid: int) -> list[Process]:
    return [
        proc for proc in kernel.processes.values()
        if proc.ppid == master_pid and proc.alive
    ]


@dataclass
class BropResult:
    probes_sent: int
    workers_crashed: int
    respawns_observed: int
    service_alive: bool

    @property
    def feasible(self) -> bool:
        """Could the attacker keep probing long enough to win?"""
        return self.probes_sent >= PROBES_REQUIRED and self.service_alive


def run_brop(
    kernel: Kernel,
    master: Process,
    port: int,
    probes: int = PROBES_REQUIRED,
    max_instructions_per_probe: int = 4_000_000,
) -> BropResult:
    """Throw ``probes`` crash probes; stop early if the service dies."""
    crashed = 0
    respawns = 0
    sent = 0
    for __ in range(probes):
        before = {proc.pid for proc in live_workers(kernel, master.pid)}
        if not before:
            break
        try:
            sock = kernel.connect(port)
        except Exception:
            break  # listener gone: service is down
        sent += 1
        sock.send(_crash_request())

        def worker_changed() -> bool:
            now = {proc.pid for proc in live_workers(kernel, master.pid)}
            return now != before or not master.alive

        kernel.run_until(worker_changed, max_instructions=max_instructions_per_probe)
        sock.close()
        # let the master react: it either respawns a worker or dies trying
        # (wiped fork path); bounded by the probe budget otherwise
        kernel.run_until(
            lambda: bool(live_workers(kernel, master.pid)) or not master.alive,
            max_instructions=max_instructions_per_probe,
        )
        after = {proc.pid for proc in live_workers(kernel, master.pid)}
        died = before - after
        fresh = after - before
        crashed += len(died)
        respawns += len(fresh)
        if not after:
            break  # no worker came back: nothing left to probe
    service_alive = bool(live_workers(kernel, master.pid))
    return BropResult(
        probes_sent=sent,
        workers_crashed=crashed,
        respawns_observed=respawns,
        service_alive=service_alive,
    )
