"""miniredis: a Redis-6.2-flavoured in-memory key-value store.

Single-threaded, event-driven (poll loop), with:

* a config-driven **initialization phase** (several distinct functions
  that never run again, feeding the init-code-removal experiments);
* a **command dispatcher** with one handler function per command — the
  big switch the paper's feature customization targets;
* **vulnerable handlers** modelled on the Redis CVEs of Table 1:

  - ``STRALGO LCS`` truncates the length product to 8 bits before its
    bounds check (CVE-2021-32625 / CVE-2021-29477 integer overflow),
    so crafted operands smash the stack;
  - ``SETRANGE`` misses the offset bound check (CVE-2019-10192/10193),
    allowing out-of-bounds stores;
  - ``CONFIG SET loglevel`` strcpy's into a fixed buffer adjacent to a
    function pointer (CVE-2016-8339 buffer overflow), hijacking a
    later indirect call.

Protocol: inline commands, one per line (``SET k v\\n``); replies are
single-line simplified RESP (``+OK``, ``:N``, ``$v``, ``-ERR ...``).
"""

from __future__ import annotations

from ..binfmt.linker import link_executable
from ..binfmt.self_format import SelfImage
from ..minic.codegen import compile_source

REDIS_BINARY = "miniredis"
REDIS_PORT = 6379
REDIS_CONFIG_PATH = "/etc/redis.conf"

DEFAULT_CONFIG = """\
port 6379
maxmemory 1048576
maxclients 8
appendonly no
loglevel notice
save 900
"""

#: the line the server prints when initialization completes
READY_LINE = "Ready to accept connections"

REDIS_SOURCE = r"""
extern func exit;
extern func open;
extern func close;
extern func read;
extern func socket;
extern func bind;
extern func listen;
extern func accept;
extern func send;
extern func recv;
extern func poll;
extern func print;
extern func println;
extern func print_num;
extern func strlen;
extern func strcmp;
extern func strncmp;
extern func strcpy;
extern func memcpy;
extern func memset;
extern func atoi;
extern func itoa;
extern func strchr_idx;
extern func starts_with;
extern func getpid;

const MAXCLIENTS = 8;
const CBUF = 512;
const NSLOTS = 64;
const KEYSZ = 64;
const VALSZ = 256;

// ------------------------------------------------------------- globals

var cfg_port = 6379;
var cfg_maxmemory = 0;
var cfg_maxclients = 0;
var cfg_appendonly = 0;
var cfg_save_secs = 0;
var cfg_loglevel[16];
var cfg_apply_fn;            // function pointer in bss, right after the buffer

var listen_fd = 0;
var stat_commands = 0;
var stat_connections = 0;

var db_used[64];
var db_keys[4096];           // NSLOTS * KEYSZ
var db_vals[16384];          // NSLOTS * VALSZ

var cli_fds[64];             // MAXCLIENTS u64 slots
var cli_len[64];
var cli_bufs[4096];          // MAXCLIENTS * CBUF
var pollfds[72];             // (MAXCLIENTS + 1) u64 slots

// ------------------------------------------------------------- init phase

func config_read_file(buf, cap) {
    var fd = open("/etc/redis.conf", 0);
    if (fd < 0) { return 0; }
    var n = read(fd, buf, cap - 1);
    close(fd);
    if (n < 0) { n = 0; }
    store8(buf + n, 0);
    return n;
}

func config_parse_port(line) {
    if (starts_with(line, "port ")) { cfg_port = atoi(line + 5); return 1; }
    return 0;
}

func config_parse_maxmemory(line) {
    if (starts_with(line, "maxmemory ")) {
        cfg_maxmemory = atoi(line + 10);
        return 1;
    }
    return 0;
}

func config_parse_maxclients(line) {
    if (starts_with(line, "maxclients ")) {
        cfg_maxclients = atoi(line + 11);
        return 1;
    }
    return 0;
}

func config_parse_appendonly(line) {
    if (starts_with(line, "appendonly ")) {
        if (strcmp(line + 11, "yes") == 0) { cfg_appendonly = 1; }
        return 1;
    }
    return 0;
}

func config_parse_loglevel(line) {
    if (starts_with(line, "loglevel ")) {
        strcpy(cfg_loglevel, line + 9);
        return 1;
    }
    return 0;
}

func config_parse_save(line) {
    if (starts_with(line, "save ")) { cfg_save_secs = atoi(line + 5); return 1; }
    return 0;
}

func load_config() {
    var buf[1024];
    var n = config_read_file(buf, 1024);
    var pos = 0;
    while (pos < n) {
        var rel = strchr_idx(buf + pos, 10);
        if (rel < 0) { break; }
        store8(buf + pos + rel, 0);
        var line = buf + pos;
        if (config_parse_port(line)) { }
        else { if (config_parse_maxmemory(line)) { }
        else { if (config_parse_maxclients(line)) { }
        else { if (config_parse_appendonly(line)) { }
        else { if (config_parse_loglevel(line)) { }
        else { config_parse_save(line); } } } } }
        pos = pos + rel + 1;
    }
    return 0;
}

func init_db() {
    memset(db_used, 0, NSLOTS);
    memset(db_keys, 0, NSLOTS * KEYSZ);
    memset(db_vals, 0, NSLOTS * VALSZ);
    return 0;
}

func init_clients() {
    var i = 0;
    while (i < MAXCLIENTS) {
        store64(cli_fds + 8 * i, 0);
        store64(cli_len + 8 * i, 0);
        i = i + 1;
    }
    return 0;
}

func init_stats() {
    stat_commands = 0;
    stat_connections = 0;
    cfg_apply_fn = config_apply_default;
    return 0;
}

func init_listener() {
    listen_fd = socket();
    if (bind(listen_fd, cfg_port) < 0) {
        println("bind failed");
        exit(1);
    }
    listen(listen_fd, 16);
    return 0;
}

func print_banner() {
    print("miniredis pid=");
    print_num(getpid());
    print(" port=");
    print_num(cfg_port);
    println("");
    println("Ready to accept connections");
    return 0;
}

// ------------------------------------------------------------- database

func db_find(key) {
    var i = 0;
    while (i < NSLOTS) {
        if (db_used[i]) {
            if (strcmp(db_keys + i * KEYSZ, key) == 0) { return i; }
        }
        i = i + 1;
    }
    return -1;
}

func db_alloc(key) {
    var slot = db_find(key);
    if (slot >= 0) { return slot; }
    var i = 0;
    while (i < NSLOTS) {
        if (db_used[i] == 0) {
            db_used[i] = 1;
            strcpy(db_keys + i * KEYSZ, key);
            store8(db_vals + i * VALSZ, 0);
            return i;
        }
        i = i + 1;
    }
    return -1;
}

// ------------------------------------------------------------- replies

func reply_raw(fd, s) { return send(fd, s, strlen(s)); }

func reply_ok(fd) { return reply_raw(fd, "+OK\n"); }

func reply_err(fd, msg) {
    send(fd, "-ERR ", 5);
    send(fd, msg, strlen(msg));
    return send(fd, "\n", 1);
}

func reply_int(fd, n) {
    var buf[40];
    store8(buf, ':');
    var len = itoa(n, buf + 1);
    store8(buf + 1 + len, 10);
    return send(fd, buf, len + 2);
}

func reply_bulk(fd, s) {
    send(fd, "$", 1);
    send(fd, s, strlen(s));
    return send(fd, "\n", 1);
}

func reply_nil(fd) { return reply_raw(fd, "$-1\n"); }

// ------------------------------------------------------------- commands

func cmd_ping(fd, argc, argv) {
    if (argc > 1) { return reply_bulk(fd, load64(argv + 8)); }
    return reply_raw(fd, "+PONG\n");
}

func cmd_echo(fd, argc, argv) {
    if (argc < 2) { return reply_err(fd, "wrong number of arguments"); }
    return reply_bulk(fd, load64(argv + 8));
}

func cmd_get(fd, argc, argv) {
    if (argc < 2) { return reply_err(fd, "wrong number of arguments"); }
    var slot = db_find(load64(argv + 8));
    if (slot < 0) { return reply_nil(fd); }
    return reply_bulk(fd, db_vals + slot * VALSZ);
}

func cmd_set(fd, argc, argv) {
    if (argc < 3) { return reply_err(fd, "wrong number of arguments"); }
    var slot = db_alloc(load64(argv + 8));
    if (slot < 0) { return reply_err(fd, "out of memory"); }
    var value = load64(argv + 16);
    if (strlen(value) >= VALSZ) { return reply_err(fd, "value too large"); }
    strcpy(db_vals + slot * VALSZ, value);
    return reply_ok(fd);
}

func cmd_del(fd, argc, argv) {
    if (argc < 2) { return reply_err(fd, "wrong number of arguments"); }
    var slot = db_find(load64(argv + 8));
    if (slot < 0) { return reply_int(fd, 0); }
    db_used[slot] = 0;
    return reply_int(fd, 1);
}

func cmd_exists(fd, argc, argv) {
    if (argc < 2) { return reply_err(fd, "wrong number of arguments"); }
    if (db_find(load64(argv + 8)) >= 0) { return reply_int(fd, 1); }
    return reply_int(fd, 0);
}

func cmd_strlen(fd, argc, argv) {
    if (argc < 2) { return reply_err(fd, "wrong number of arguments"); }
    var slot = db_find(load64(argv + 8));
    if (slot < 0) { return reply_int(fd, 0); }
    return reply_int(fd, strlen(db_vals + slot * VALSZ));
}

func cmd_append(fd, argc, argv) {
    if (argc < 3) { return reply_err(fd, "wrong number of arguments"); }
    var slot = db_alloc(load64(argv + 8));
    if (slot < 0) { return reply_err(fd, "out of memory"); }
    var val = db_vals + slot * VALSZ;
    var cur = strlen(val);
    var extra = load64(argv + 16);
    if (cur + strlen(extra) >= VALSZ) { return reply_err(fd, "value too large"); }
    strcpy(val + cur, extra);
    return reply_int(fd, strlen(val));
}

func cmd_incr(fd, argc, argv) {
    if (argc < 2) { return reply_err(fd, "wrong number of arguments"); }
    var slot = db_alloc(load64(argv + 8));
    if (slot < 0) { return reply_err(fd, "out of memory"); }
    var val = db_vals + slot * VALSZ;
    var n = atoi(val) + 1;
    itoa(n, val);
    return reply_int(fd, n);
}

func cmd_decr(fd, argc, argv) {
    if (argc < 2) { return reply_err(fd, "wrong number of arguments"); }
    var slot = db_alloc(load64(argv + 8));
    if (slot < 0) { return reply_err(fd, "out of memory"); }
    var val = db_vals + slot * VALSZ;
    var n = atoi(val) - 1;
    itoa(n, val);
    return reply_int(fd, n);
}

// CVE-2019-10192/10193 analogue: the offset bound check is missing, so
// crafted offsets store bytes far outside the value arena.
func cmd_setrange(fd, argc, argv) {
    if (argc < 4) { return reply_err(fd, "wrong number of arguments"); }
    var slot = db_alloc(load64(argv + 8));
    if (slot < 0) { return reply_err(fd, "out of memory"); }
    var offset = atoi(load64(argv + 16));
    var value = load64(argv + 24);
    var val = db_vals + slot * VALSZ;
    // BUG: no "offset + strlen(value) <= VALSZ" check
    var i = 0;
    var n = strlen(value);
    while (i < n) {
        store8(val + offset + i, load8(value + i));
        i = i + 1;
    }
    return reply_int(fd, offset + n);
}

func cmd_getrange(fd, argc, argv) {
    if (argc < 4) { return reply_err(fd, "wrong number of arguments"); }
    var slot = db_find(load64(argv + 8));
    if (slot < 0) { return reply_bulk(fd, ""); }
    var val = db_vals + slot * VALSZ;
    var from = atoi(load64(argv + 16));
    var to = atoi(load64(argv + 24));
    var len = strlen(val);
    if (from < 0) { from = 0; }
    if (to >= len) { to = len - 1; }
    if (from > to) { return reply_bulk(fd, ""); }
    var out[260];
    memcpy(out, val + from, to - from + 1);
    store8(out + (to - from + 1), 0);
    return reply_bulk(fd, out);
}

// CVE-2021-32625 / CVE-2021-29477 analogue: the DP matrix size check
// uses a product truncated to 8 bits, so 16x16 operands pass the check
// and the fill loop smashes the stack frame.
func cmd_stralgo(fd, argc, argv) {
    if (argc < 4) { return reply_err(fd, "wrong number of arguments"); }
    if (strcmp(load64(argv + 8), "LCS") != 0) {
        return reply_err(fd, "unknown STRALGO algorithm");
    }
    var a = load64(argv + 16);
    var b = load64(argv + 24);
    var la = strlen(a);
    var lb = strlen(b);
    var need = (la * lb) & 255;      // BUG: 8-bit truncation of the product
    var matrix[64];
    if (need >= 64) { return reply_err(fd, "operands too long"); }
    var real = la * lb;
    var i = 0;
    while (i < real) {               // writes past matrix when real >= 64
        store8(matrix + i, 0);
        i = i + 1;
    }
    // common-prefix length as a stand-in for the LCS computation
    var common = 0;
    while (common < la && common < lb) {
        if (load8(a + common) != load8(b + common)) { break; }
        common = common + 1;
    }
    return reply_int(fd, common);
}

func config_apply_default() { return 0; }

// CVE-2016-8339 analogue: unbounded strcpy into a 16-byte buffer that
// sits directly before a function pointer called right after.
func cmd_config(fd, argc, argv) {
    if (argc < 2) { return reply_err(fd, "wrong number of arguments"); }
    var sub = load64(argv + 8);
    if (strcmp(sub, "GET") == 0) {
        if (argc < 3) { return reply_err(fd, "wrong number of arguments"); }
        var what = load64(argv + 16);
        if (strcmp(what, "maxmemory") == 0) { return reply_int(fd, cfg_maxmemory); }
        if (strcmp(what, "port") == 0) { return reply_int(fd, cfg_port); }
        if (strcmp(what, "loglevel") == 0) { return reply_bulk(fd, cfg_loglevel); }
        return reply_nil(fd);
    }
    if (strcmp(sub, "SET") == 0) {
        if (argc < 4) { return reply_err(fd, "wrong number of arguments"); }
        var what = load64(argv + 16);
        var value = load64(argv + 24);
        if (strcmp(what, "maxmemory") == 0) {
            cfg_maxmemory = atoi(value);
            return reply_ok(fd);
        }
        if (strcmp(what, "loglevel") == 0) {
            strcpy(cfg_loglevel, value);   // BUG: no length check
            var apply = cfg_apply_fn;
            apply();
            return reply_ok(fd);
        }
        return reply_err(fd, "unsupported parameter");
    }
    return reply_err(fd, "unknown CONFIG subcommand");
}

func cmd_flushall(fd, argc, argv) {
    init_db();
    return reply_ok(fd);
}

func cmd_dbsize(fd, argc, argv) {
    var count = 0;
    var i = 0;
    while (i < NSLOTS) {
        if (db_used[i]) { count = count + 1; }
        i = i + 1;
    }
    return reply_int(fd, count);
}

func cmd_info(fd, argc, argv) {
    var buf[128];
    strcpy(buf, "commands=");
    itoa(stat_commands, buf + 9);
    return reply_bulk(fd, buf);
}

func cmd_shutdown(fd, argc, argv) {
    reply_ok(fd);
    exit(0);
    return 0;
}

// ------------------------------------------------------------- dispatch

func split_ws(line, argv, max) {
    var argc = 0;
    var pos = 0;
    while (argc < max) {
        while (load8(line + pos) == ' ') { pos = pos + 1; }
        if (load8(line + pos) == 0) { break; }
        store64(argv + 8 * argc, line + pos);
        argc = argc + 1;
        while (load8(line + pos) != ' ' && load8(line + pos) != 0) {
            pos = pos + 1;
        }
        if (load8(line + pos) == 0) { break; }
        store8(line + pos, 0);
        pos = pos + 1;
    }
    return argc;
}

func dispatch(fd, argc, argv) {
    stat_commands = stat_commands + 1;
    var cmd = load64(argv);
    if (strcmp(cmd, "PING") == 0) { cmd_ping(fd, argc, argv); return 0; }
    if (strcmp(cmd, "ECHO") == 0) { cmd_echo(fd, argc, argv); return 0; }
    if (strcmp(cmd, "GET") == 0) { cmd_get(fd, argc, argv); return 0; }
    if (strcmp(cmd, "SET") == 0) { cmd_set(fd, argc, argv); return 0; }
    if (strcmp(cmd, "DEL") == 0) { cmd_del(fd, argc, argv); return 0; }
    if (strcmp(cmd, "EXISTS") == 0) { cmd_exists(fd, argc, argv); return 0; }
    if (strcmp(cmd, "STRLEN") == 0) { cmd_strlen(fd, argc, argv); return 0; }
    if (strcmp(cmd, "APPEND") == 0) { cmd_append(fd, argc, argv); return 0; }
    if (strcmp(cmd, "INCR") == 0) { cmd_incr(fd, argc, argv); return 0; }
    if (strcmp(cmd, "DECR") == 0) { cmd_decr(fd, argc, argv); return 0; }
    if (strcmp(cmd, "SETRANGE") == 0) { cmd_setrange(fd, argc, argv); return 0; }
    if (strcmp(cmd, "GETRANGE") == 0) { cmd_getrange(fd, argc, argv); return 0; }
    if (strcmp(cmd, "STRALGO") == 0) { cmd_stralgo(fd, argc, argv); return 0; }
    if (strcmp(cmd, "CONFIG") == 0) { cmd_config(fd, argc, argv); return 0; }
    if (strcmp(cmd, "FLUSHALL") == 0) { cmd_flushall(fd, argc, argv); return 0; }
    if (strcmp(cmd, "DBSIZE") == 0) { cmd_dbsize(fd, argc, argv); return 0; }
    if (strcmp(cmd, "INFO") == 0) { cmd_info(fd, argc, argv); return 0; }
    if (strcmp(cmd, "SHUTDOWN") == 0) { cmd_shutdown(fd, argc, argv); return 0; }
    asm(".marker redis_unknown_cmd");
    reply_err(fd, "unknown command");
    return 0;
}

func process_line(fd, line) {
    // strip trailing \r
    var len = strlen(line);
    if (len > 0 && load8(line + len - 1) == 13) { store8(line + len - 1, 0); }
    if (load8(line) == 0) { return 0; }
    var argv[64];
    var argc = split_ws(line, argv, 8);
    if (argc == 0) { return 0; }
    dispatch(fd, argc, argv);
    return 0;
}

// ------------------------------------------------------------- event loop

func close_client(i) {
    var fd = load64(cli_fds + 8 * i);
    if (fd) { close(fd); }
    store64(cli_fds + 8 * i, 0);
    store64(cli_len + 8 * i, 0);
    return 0;
}

func handle_readable(i) {
    var fd = load64(cli_fds + 8 * i);
    var used = load64(cli_len + 8 * i);
    var buf = cli_bufs + i * CBUF;
    var n = recv(fd, buf + used, CBUF - 1 - used);
    if (n <= 0) { close_client(i); return 0; }
    used = used + n;
    store8(buf + used, 0);
    while (1) {
        var idx = strchr_idx(buf, 10);
        if (idx < 0) { break; }
        store8(buf + idx, 0);
        process_line(fd, buf);
        var rest = used - idx - 1;
        memcpy(buf, buf + idx + 1, rest);
        used = rest;
        store8(buf + used, 0);
    }
    if (used >= CBUF - 1) { used = 0; }      // overlong line: drop it
    store64(cli_len + 8 * i, used);
    return 0;
}

func accept_client() {
    var fd = accept(listen_fd);
    if (fd < 0) { return 0; }
    var i = 0;
    while (i < MAXCLIENTS) {
        if (load64(cli_fds + 8 * i) == 0) {
            store64(cli_fds + 8 * i, fd);
            store64(cli_len + 8 * i, 0);
            stat_connections = stat_connections + 1;
            return 1;
        }
        i = i + 1;
    }
    close(fd);                               // table full
    return 0;
}

func event_loop() {
    while (1) {
        store64(pollfds, listen_fd);
        var count = 1;
        var i = 0;
        while (i < MAXCLIENTS) {
            var fd = load64(cli_fds + 8 * i);
            if (fd) {
                store64(pollfds + 8 * count, fd);
                count = count + 1;
            }
            i = i + 1;
        }
        var ready = poll(pollfds, count);
        if (ready < 0) { continue; }
        if (ready == 0) { accept_client(); continue; }
        var target = load64(pollfds + 8 * ready);
        i = 0;
        while (i < MAXCLIENTS) {
            if (load64(cli_fds + 8 * i) == target) { handle_readable(i); break; }
            i = i + 1;
        }
    }
    return 0;
}

func main(argc, argv) {
    load_config();
    init_db();
    init_clients();
    init_stats();
    init_listener();
    print_banner();
    event_loop();
    return 0;
}
"""


def build_miniredis(libc: SelfImage) -> SelfImage:
    """Compile and link the miniredis executable against ``libc``."""
    module = compile_source(REDIS_SOURCE, "miniredis.o", entry=True)
    return link_executable([module], REDIS_BINARY, libraries=[libc])


def install_default_config(fs) -> None:
    """Write the default redis config into a kernel filesystem."""
    fs.write_file(REDIS_CONFIG_PATH, DEFAULT_CONFIG)
