"""minilight: an event-driven, single-process web server (Lighttpd-like).

Architecture mirrors Lighttpd's: one process, a poll-based event loop
(``server_main_loop``, the function Ghavamnia et al. use as Lighttpd's
init/serving transition point), a config-driven init phase, and a
WebDAV module (PUT/DELETE/PROPFIND/MKCOL) gated by ``server.modules``.

The method dispatcher (``lh_handle_request``) is a switch over method
ids with one handler function per method; an unreachable dispatcher arm
labelled ``http_forbidden_entry`` responds ``403 Forbidden`` — the
redirect target DynaCut's fault handler points blocked features at, so
a disabled ``PUT`` yields a 403 instead of killing the server.
"""

from __future__ import annotations

from ..binfmt.linker import link_executable
from ..binfmt.self_format import SelfImage
from ..minic.codegen import compile_source

LIGHTTPD_BINARY = "minilight"
LIGHTTPD_PORT = 8080
LIGHTTPD_CONFIG_PATH = "/etc/lighttpd.conf"
DOCROOT = "/var/www"

DEFAULT_CONFIG = """\
server.port = 8080
server.document-root = /var/www
server.modules = mod_webdav
server.max-connections = 8
index-file = index.html
"""

READY_LINE = "minilight: server started"

#: symbol of the dispatcher's 403 arm (redirect target for blocked features)
FORBIDDEN_SYMBOL = "http_forbidden_entry"

LIGHTTPD_SOURCE = r"""
extern func exit;
extern func open;
extern func close;
extern func read;
extern func write;
extern func unlink;
extern func socket;
extern func bind;
extern func listen;
extern func accept;
extern func send;
extern func recv;
extern func poll;
extern func print;
extern func println;
extern func print_num;
extern func strlen;
extern func strcmp;
extern func strncmp;
extern func strcpy;
extern func strcat;
extern func memcpy;
extern func memset;
extern func atoi;
extern func itoa;
extern func strchr_idx;
extern func starts_with;
extern func getpid;

const MAXCONN = 8;
const RBUF = 1024;

const M_GET = 1;
const M_HEAD = 2;
const M_POST = 3;
const M_OPTIONS = 4;
const M_PUT = 5;
const M_DELETE = 6;
const M_PROPFIND = 7;
const M_MKCOL = 8;

// ------------------------------------------------------------- globals

var cfg_port = 8080;
var cfg_docroot[64];
var cfg_webdav = 0;
var cfg_maxconn = 0;
var cfg_index[32];

var listen_fd = 0;
var stat_requests = 0;

var conn_fds[64];            // MAXCONN u64 slots
var conn_len[64];
var conn_bufs[8192];         // MAXCONN * RBUF
var pollfds[72];

// ------------------------------------------------------------- init phase

func lh_read_config(buf, cap) {
    var fd = open("/etc/lighttpd.conf", 0);
    if (fd < 0) { return 0; }
    var n = read(fd, buf, cap - 1);
    close(fd);
    if (n < 0) { n = 0; }
    store8(buf + n, 0);
    return n;
}

func lh_parse_port(line) {
    if (starts_with(line, "server.port = ")) {
        cfg_port = atoi(line + 14);
        return 1;
    }
    return 0;
}

func lh_parse_docroot(line) {
    if (starts_with(line, "server.document-root = ")) {
        strcpy(cfg_docroot, line + 23);
        return 1;
    }
    return 0;
}

func lh_parse_modules(line) {
    if (starts_with(line, "server.modules = ")) {
        if (strchr_idx(line + 17, 'w') >= 0) {
            if (starts_with(line + 17, "mod_webdav")) { cfg_webdav = 1; }
        }
        return 1;
    }
    return 0;
}

func lh_parse_maxconn(line) {
    if (starts_with(line, "server.max-connections = ")) {
        cfg_maxconn = atoi(line + 25);
        return 1;
    }
    return 0;
}

func lh_parse_index(line) {
    if (starts_with(line, "index-file = ")) {
        strcpy(cfg_index, line + 13);
        return 1;
    }
    return 0;
}

func lh_load_config() {
    strcpy(cfg_docroot, "/var/www");
    strcpy(cfg_index, "index.html");
    var buf[1024];
    var n = lh_read_config(buf, 1024);
    var pos = 0;
    while (pos < n) {
        var rel = strchr_idx(buf + pos, 10);
        if (rel < 0) { break; }
        store8(buf + pos + rel, 0);
        var line = buf + pos;
        if (lh_parse_port(line)) { }
        else { if (lh_parse_docroot(line)) { }
        else { if (lh_parse_modules(line)) { }
        else { if (lh_parse_maxconn(line)) { }
        else { lh_parse_index(line); } } } }
        pos = pos + rel + 1;
    }
    return 0;
}

func lh_init_connections() {
    var i = 0;
    while (i < MAXCONN) {
        store64(conn_fds + 8 * i, 0);
        store64(conn_len + 8 * i, 0);
        i = i + 1;
    }
    return 0;
}

func lh_check_docroot() {
    var path[128];
    strcpy(path, cfg_docroot);
    strcat(path, "/");
    strcat(path, cfg_index);
    var fd = open(path, 0);
    if (fd >= 0) { close(fd); return 1; }
    return 0;
}

func lh_init_listener() {
    listen_fd = socket();
    if (bind(listen_fd, cfg_port) < 0) {
        println("minilight: bind failed");
        exit(1);
    }
    listen(listen_fd, 16);
    return 0;
}

func lh_print_banner() {
    print("minilight: pid=");
    print_num(getpid());
    print(" port=");
    print_num(cfg_port);
    print(" webdav=");
    print_num(cfg_webdav);
    println("");
    println("minilight: server started");
    return 0;
}

// ------------------------------------------------------------- responses

func status_text(code) {
    if (code == 200) { return "OK"; }
    if (code == 201) { return "Created"; }
    if (code == 204) { return "No Content"; }
    if (code == 207) { return "Multi-Status"; }
    if (code == 400) { return "Bad Request"; }
    if (code == 403) { return "Forbidden"; }
    if (code == 404) { return "Not Found"; }
    if (code == 405) { return "Method Not Allowed"; }
    return "Internal Server Error";
}

func send_response(fd, code, body, body_len) {
    var head[160];
    strcpy(head, "HTTP/1.0 ");
    itoa(code, head + 9);
    strcat(head, " ");
    strcat(head, status_text(code));
    strcat(head, "\r\nContent-Length: ");
    var lenbuf[24];
    itoa(body_len, lenbuf);
    strcat(head, lenbuf);
    strcat(head, "\r\n\r\n");
    send(fd, head, strlen(head));
    if (body_len > 0) { send(fd, body, body_len); }
    return 0;
}

func respond_error(fd, code) {
    var body[64];
    strcpy(body, "<h1>");
    itoa(code, body + 4);
    strcat(body, " ");
    strcat(body, status_text(code));
    strcat(body, "</h1>");
    return send_response(fd, code, body, strlen(body));
}

// ------------------------------------------------------------- handlers

func map_path(path, out) {
    strcpy(out, cfg_docroot);
    if (strcmp(path, "/") == 0) {
        strcat(out, "/");
        strcat(out, cfg_index);
        return 0;
    }
    strcat(out, path);
    return 0;
}

func http_get(fd, path) {
    var full[192];
    map_path(path, full);
    var file = open(full, 0);
    if (file < 0) { return respond_error(fd, 404); }
    var body[2048];
    var n = read(file, body, 2047);
    close(file);
    if (n < 0) { n = 0; }
    return send_response(fd, 200, body, n);
}

func http_head(fd, path) {
    var full[192];
    map_path(path, full);
    var file = open(full, 0);
    if (file < 0) { return respond_error(fd, 404); }
    close(file);
    return send_response(fd, 200, "", 0);
}

func http_post(fd, path, body, body_len) {
    // echo service: reflect the body back
    return send_response(fd, 200, body, body_len);
}

func http_options(fd) {
    var allow = "GET, HEAD, POST, OPTIONS, PUT, DELETE, PROPFIND, MKCOL";
    return send_response(fd, 200, allow, strlen(allow));
}

func dav_put(fd, path, body, body_len) {
    if (cfg_webdav == 0) { return respond_error(fd, 403); }
    var full[192];
    map_path(path, full);
    var file = open(full, 0x241);        // O_WRONLY|O_CREAT|O_TRUNC
    if (file < 0) { return respond_error(fd, 500); }
    write(file, body, body_len);
    close(file);
    return send_response(fd, 201, "", 0);
}

func dav_delete(fd, path) {
    if (cfg_webdav == 0) { return respond_error(fd, 403); }
    var full[192];
    map_path(path, full);
    if (unlink(full) < 0) { return respond_error(fd, 404); }
    return send_response(fd, 204, "", 0);
}

func dav_propfind(fd, path) {
    if (cfg_webdav == 0) { return respond_error(fd, 403); }
    var body[96];
    strcpy(body, "<multistatus><href>");
    strcat(body, path);
    strcat(body, "</href></multistatus>");
    return send_response(fd, 207, body, strlen(body));
}

func dav_mkcol(fd, path) {
    if (cfg_webdav == 0) { return respond_error(fd, 403); }
    return send_response(fd, 201, "", 0);
}

// ------------------------------------------------------------- dispatch

func method_id(s) {
    if (strcmp(s, "GET") == 0) { return M_GET; }
    if (strcmp(s, "HEAD") == 0) { return M_HEAD; }
    if (strcmp(s, "POST") == 0) { return M_POST; }
    if (strcmp(s, "OPTIONS") == 0) { return M_OPTIONS; }
    if (strcmp(s, "PUT") == 0) { return M_PUT; }
    if (strcmp(s, "DELETE") == 0) { return M_DELETE; }
    if (strcmp(s, "PROPFIND") == 0) { return M_PROPFIND; }
    if (strcmp(s, "MKCOL") == 0) { return M_MKCOL; }
    return 0;
}

func lh_handle_request(fd, method, path, body, body_len) {
    stat_requests = stat_requests + 1;
    switch (method) {
    case 1:
        http_get(fd, path);
        break;
    case 2:
        http_head(fd, path);
        break;
    case 3:
        http_post(fd, path, body, body_len);
        break;
    case 4:
        http_options(fd);
        break;
    case 5:
        dav_put(fd, path, body, body_len);
        break;
    case 6:
        dav_delete(fd, path);
        break;
    case 7:
        dav_propfind(fd, path);
        break;
    case 8:
        dav_mkcol(fd, path);
        break;
    case 99:
        // never dispatched: DynaCut's fault handler redirects blocked
        // features here so clients get a 403 instead of a dead server
        asm(".marker http_forbidden_entry");
        respond_error(fd, 403);
        break;
    default:
        respond_error(fd, 405);
    }
    return 0;
}

// ------------------------------------------------------------- parsing

// returns header length (offset of body) or -1 if incomplete
func find_body(buf, used) {
    var i = 0;
    while (i + 3 < used) {
        if (load8(buf + i) == 13 && load8(buf + i + 1) == 10
            && load8(buf + i + 2) == 13 && load8(buf + i + 3) == 10) {
            return i + 4;
        }
        i = i + 1;
    }
    return -1;
}

func parse_content_length(buf, header_len) {
    var i = 0;
    while (i < header_len) {
        if (starts_with(buf + i, "Content-Length: ")) {
            return atoi(buf + i + 16);
        }
        var rel = strchr_idx(buf + i, 10);
        if (rel < 0) { break; }
        i = i + rel + 1;
    }
    return 0;
}

func process_request(fd, buf, header_len, body_len) {
    var method_buf[16];
    var path_buf[128];
    var sp1 = strchr_idx(buf, ' ');
    if (sp1 < 0 || sp1 >= 15) { respond_error(fd, 400); return 0; }
    memcpy(method_buf, buf, sp1);
    store8(method_buf + sp1, 0);
    var rest = buf + sp1 + 1;
    var sp2 = strchr_idx(rest, ' ');
    if (sp2 < 0 || sp2 >= 127) { respond_error(fd, 400); return 0; }
    memcpy(path_buf, rest, sp2);
    store8(path_buf + sp2, 0);
    var method = method_id(method_buf);
    lh_handle_request(fd, method, path_buf, buf + header_len, body_len);
    return 0;
}

// ------------------------------------------------------------- event loop

func close_conn(i) {
    var fd = load64(conn_fds + 8 * i);
    if (fd) { close(fd); }
    store64(conn_fds + 8 * i, 0);
    store64(conn_len + 8 * i, 0);
    return 0;
}

func conn_readable(i) {
    var fd = load64(conn_fds + 8 * i);
    var used = load64(conn_len + 8 * i);
    var buf = conn_bufs + i * RBUF;
    var n = recv(fd, buf + used, RBUF - 1 - used);
    if (n <= 0) { close_conn(i); return 0; }
    used = used + n;
    store64(conn_len + 8 * i, used);
    store8(buf + used, 0);
    var header_len = find_body(buf, used);
    if (header_len < 0) {
        if (used >= RBUF - 1) { respond_error(fd, 400); close_conn(i); }
        return 0;
    }
    var body_len = parse_content_length(buf, header_len);
    if (used < header_len + body_len) { return 0; }     // body incomplete
    process_request(fd, buf, header_len, body_len);
    close_conn(i);                                      // HTTP/1.0: one shot
    return 0;
}

func accept_conn() {
    var fd = accept(listen_fd);
    if (fd < 0) { return 0; }
    var i = 0;
    while (i < MAXCONN) {
        if (load64(conn_fds + 8 * i) == 0) {
            store64(conn_fds + 8 * i, fd);
            store64(conn_len + 8 * i, 0);
            return 1;
        }
        i = i + 1;
    }
    close(fd);
    return 0;
}

func server_main_loop() {
    while (1) {
        store64(pollfds, listen_fd);
        var count = 1;
        var i = 0;
        while (i < MAXCONN) {
            var fd = load64(conn_fds + 8 * i);
            if (fd) {
                store64(pollfds + 8 * count, fd);
                count = count + 1;
            }
            i = i + 1;
        }
        var ready = poll(pollfds, count);
        if (ready < 0) { continue; }
        if (ready == 0) { accept_conn(); continue; }
        var target = load64(pollfds + 8 * ready);
        i = 0;
        while (i < MAXCONN) {
            if (load64(conn_fds + 8 * i) == target) { conn_readable(i); break; }
            i = i + 1;
        }
    }
    return 0;
}

func main(argc, argv) {
    lh_load_config();
    lh_init_connections();
    lh_check_docroot();
    lh_init_listener();
    lh_print_banner();
    server_main_loop();
    return 0;
}
"""


def build_minilight(libc: SelfImage) -> SelfImage:
    """Compile and link the minilight executable against ``libc``."""
    module = compile_source(LIGHTTPD_SOURCE, "minilight.o", entry=True)
    return link_executable([module], LIGHTTPD_BINARY, libraries=[libc])


def install_default_config(fs, index_body: str = "<h1>it works</h1>") -> None:
    """Stage the lighttpd config and a docroot with an index file."""
    fs.write_file(LIGHTTPD_CONFIG_PATH, DEFAULT_CONFIG)
    fs.write_file(f"{DOCROOT}/index.html", index_body)
