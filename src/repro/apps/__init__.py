"""Guest applications: libc, web servers, key-value store, SPEC-like suite."""

from .libc import LIBC_EXPORTS, LIBC_NAME, build_libc
from .kvstore import (
    REDIS_BINARY,
    REDIS_PORT,
    build_miniredis,
)
from .httpd_lighttpd import LIGHTTPD_BINARY, LIGHTTPD_PORT, build_minilight
from .httpd_nginx import NGINX_BINARY, NGINX_PORT, build_mininginx
from .spec import benchmark_names, get_benchmark
from .toolchain import (
    all_images,
    libc_image,
    lighttpd_image,
    nginx_image,
    nginx_worker,
    redis_image,
    spec_image,
    stage_lighttpd,
    stage_nginx,
    stage_redis,
    stage_spec,
)

__all__ = [
    "LIBC_EXPORTS",
    "LIBC_NAME",
    "LIGHTTPD_BINARY",
    "LIGHTTPD_PORT",
    "NGINX_BINARY",
    "NGINX_PORT",
    "REDIS_BINARY",
    "REDIS_PORT",
    "all_images",
    "benchmark_names",
    "build_libc",
    "build_minilight",
    "build_mininginx",
    "build_miniredis",
    "get_benchmark",
    "libc_image",
    "lighttpd_image",
    "nginx_image",
    "nginx_worker",
    "redis_image",
    "spec_image",
    "stage_lighttpd",
    "stage_nginx",
    "stage_redis",
    "stage_spec",
]
