"""SPEC-INTspeed-like benchmark suite (seven C/C++-style programs)."""

from .common import (
    INIT_DONE_LINE,
    RESULT_PREFIX,
    SpecBenchmark,
    benchmark_names,
    get_benchmark,
)

# importing the modules registers each benchmark
from . import perlbench, mcf, omnetpp, xalancbmk, x264, deepsjeng, leela  # noqa: F401, E402

__all__ = [
    "INIT_DONE_LINE",
    "RESULT_PREFIX",
    "SpecBenchmark",
    "benchmark_names",
    "get_benchmark",
]
