"""623.xalancbmk_s-like: XML/XSLT-style document transformation.

Real xalancbmk applies XSLT stylesheets to XML; the paper notes it has
the *largest* text section but fewer init-only blocks than perlbench.
This analogue mirrors that: many template-rule functions (large code),
a moderate table-building init phase, and a transform loop over a
synthetic tag soup.
"""

from __future__ import annotations

from .common import (
    COMMON_EXTERNS,
    RUNTIME_HELPERS,
    SpecBenchmark,
    generate_table_init,
    register,
)

_INIT_TABLES = generate_table_init("xa_style", 8, "xa_tbl_style", 48)

# sixteen distinct "template rules", one per tag letter, each with its
# own transformation logic — the big-code, runtime-executed half
_RULES = "".join(
    f"""
func xa_rule_{index}(out, pos, depth) {{
    var marker = {65 + index};
    out[pos] = marker;
    out[pos + 1] = '0' + depth % 10;
    out[pos + 2] = {90 - index};
    return pos + 3;
}}
"""
    for index in range(16)
)

_DISPATCH = "\n".join(
    f'    if (tag == {65 + index}) {{ return xa_rule_{index}(out, pos, depth); }}'
    for index in range(16)
)

_SOURCE = COMMON_EXTERNS + r"""
var xa_tbl_style[384];
var xa_document[1024];
var xa_output[2048];

""" + _INIT_TABLES + _RULES + r"""

func xa_apply_rule(tag, out, pos, depth) {
""" + _DISPATCH + r"""
    out[pos] = '?';
    return pos + 1;
}

func xa_build_document() {
    // synthetic markup: <A<B>...> nested tag stream
    var pos = 0;
    var i = 0;
    while (pos < 1000) {
        xa_document[pos] = '<';
        xa_document[pos + 1] = 'A' + i % 16;
        xa_document[pos + 2] = '>';
        pos = pos + 3;
        i = i + 1;
    }
    xa_document[pos] = 0;
    return pos;
}

// never executed: DTD validation mode
func xa_validate_dtd() {
    var i = 0;
    var errors = 0;
    while (xa_document[i] != 0) {
        if (xa_document[i] == '<' && xa_document[i + 1] == '/') {
            errors = errors + 1;
        }
        i = i + 1;
    }
    return errors;
}

// never executed: pretty printer
func xa_pretty_print(out, len) {
    var i = 0;
    while (i < len) {
        print_num(out[i]);
        i = i + 1;
    }
    println("");
    return 0;
}

func xa_transform_pass() {
    var in_pos = 0;
    var out_pos = 0;
    var depth = 0;
    while (xa_document[in_pos] != 0 && out_pos < 2000) {
        if (xa_document[in_pos] == '<') {
            var tag = xa_document[in_pos + 1];
            depth = depth + 1;
            out_pos = xa_apply_rule(tag, xa_output, out_pos, depth);
            in_pos = in_pos + 3;
        } else {
            xa_output[out_pos] = xa_document[in_pos];
            out_pos = out_pos + 1;
            in_pos = in_pos + 1;
        }
        if (depth > 8) { depth = 0; }
    }
    var checksum = 0;
    var i = 0;
    while (i < out_pos) {
        checksum = (checksum * 31 + xa_output[i]) & 0xffffff;
        i = i + 1;
    }
    return checksum;
}

func main(argc, argv) {
    xa_style_init_tables();
    xa_build_document();
    announce_init_done();

    var iters = parse_iterations(argc, argv, 4);
    var checksum = 0;
    var i = 0;
    while (i < iters) {
        checksum = (checksum + xa_transform_pass()) & 0xffffffff;
        i = i + 1;
    }
    report_result(checksum);
    return 0;
}
""" + RUNTIME_HELPERS


@register("623.xalancbmk_s")
def xalancbmk() -> SpecBenchmark:
    return SpecBenchmark(
        name="623.xalancbmk_s",
        binary="xalancbmk_s",
        source=_SOURCE,
        default_iterations=4,
    )
