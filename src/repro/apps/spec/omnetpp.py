"""620.omnetpp_s-like: discrete-event network simulation.

Real omnetpp simulates an Ethernet network through a future-event set;
this analogue keeps the skeleton: an event calendar (array-based
priority queue), typed events dispatched through a switch, and handlers
that schedule follow-up events.
"""

from __future__ import annotations

from .common import (
    COMMON_EXTERNS,
    RUNTIME_HELPERS,
    SpecBenchmark,
    generate_table_init,
    register,
)

_INIT_TABLES = generate_table_init("om_topo", 6, "om_tbl_topology", 40)

_SOURCE = COMMON_EXTERNS + r"""
const QCAP = 64;
const EV_SEND = 1;
const EV_RECV = 2;
const EV_ACK = 3;
const EV_TIMEOUT = 4;

var om_tbl_topology[240];

var omq_time[512];           // QCAP u64 slots
var omq_kind[512];
var omq_node[512];
var omq_len = 0;
var om_now = 0;
var om_stats_sent = 0;
var om_stats_recv = 0;
var om_stats_acked = 0;
var om_stats_timeout = 0;

""" + _INIT_TABLES + r"""

func omq_push(time, kind, node) {
    if (om_len_guard()) { return -1; }
    var i = omq_len;
    store64(omq_time + 8 * i, time);
    store64(omq_kind + 8 * i, kind);
    store64(omq_node + 8 * i, node);
    omq_len = omq_len + 1;
    // sift up (min-heap on time)
    while (i > 0) {
        var parent = (i - 1) / 2;
        if (load64(omq_time + 8 * parent) <= load64(omq_time + 8 * i)) { break; }
        omq_swap(i, parent);
        i = parent;
    }
    return 0;
}

func om_len_guard() {
    if (omq_len >= QCAP) { return 1; }
    return 0;
}

func omq_swap(a, b) {
    var t = load64(omq_time + 8 * a);
    store64(omq_time + 8 * a, load64(omq_time + 8 * b));
    store64(omq_time + 8 * b, t);
    t = load64(omq_kind + 8 * a);
    store64(omq_kind + 8 * a, load64(omq_kind + 8 * b));
    store64(omq_kind + 8 * b, t);
    t = load64(omq_node + 8 * a);
    store64(omq_node + 8 * a, load64(omq_node + 8 * b));
    store64(omq_node + 8 * b, t);
    return 0;
}

func omq_pop() {
    if (omq_len == 0) { return -1; }
    omq_len = omq_len - 1;
    omq_swap(0, omq_len);
    // sift down
    var i = 0;
    while (1) {
        var left = 2 * i + 1;
        var right = 2 * i + 2;
        var smallest = i;
        if (left < omq_len) {
            if (load64(omq_time + 8 * left) < load64(omq_time + 8 * smallest)) {
                smallest = left;
            }
        }
        if (right < omq_len) {
            if (load64(omq_time + 8 * right) < load64(omq_time + 8 * smallest)) {
                smallest = right;
            }
        }
        if (smallest == i) { break; }
        omq_swap(i, smallest);
        i = smallest;
    }
    return omq_len;               // popped entry now lives at index omq_len
}

// ------------------------------------------------------------- handlers

func om_handle_send(node, time) {
    om_stats_sent = om_stats_sent + 1;
    var hop = om_tbl_topology[node % 240];
    omq_push(time + 2 + hop % 5, EV_RECV, (node + 1) % 8);
    return 0;
}

func om_handle_recv(node, time) {
    om_stats_recv = om_stats_recv + 1;
    omq_push(time + 1, EV_ACK, node);
    return 0;
}

func om_handle_ack(node, time) {
    om_stats_acked = om_stats_acked + 1;
    if (om_stats_acked % 7 == 3) {
        omq_push(time + 9, EV_TIMEOUT, node);
    }
    return 0;
}

func om_handle_timeout(node, time) {
    om_stats_timeout = om_stats_timeout + 1;
    omq_push(time + 3, EV_SEND, (node + 3) % 8);
    return 0;
}

// never executed: tracing mode
func om_trace_event(kind, node, time) {
    print("event kind=");
    print_num(kind);
    print(" node=");
    print_num(node);
    print(" t=");
    print_num(time);
    println("");
    return 0;
}

func om_seed_events() {
    var n = 0;
    while (n < 8) {
        omq_push(n, EV_SEND, n);
        n = n + 1;
    }
    return 0;
}

func om_run(max_events) {
    var processed = 0;
    while (processed < max_events) {
        var slot = omq_pop();
        if (slot < 0) { om_seed_events(); continue; }
        var time = load64(omq_time + 8 * slot);
        var kind = load64(omq_kind + 8 * slot);
        var node = load64(omq_node + 8 * slot);
        om_now = time;
        switch (kind) {
        case 1:
            om_handle_send(node, time);
            break;
        case 2:
            om_handle_recv(node, time);
            break;
        case 3:
            om_handle_ack(node, time);
            break;
        case 4:
            om_handle_timeout(node, time);
            break;
        default:
            break;
        }
        processed = processed + 1;
    }
    return om_stats_sent + om_stats_recv * 3 + om_stats_acked * 5
        + om_stats_timeout * 7 + om_now;
}

func main(argc, argv) {
    om_topo_init_tables();
    om_seed_events();
    announce_init_done();

    var iters = parse_iterations(argc, argv, 3);
    var checksum = 0;
    var i = 0;
    while (i < iters) {
        checksum = (checksum + om_run(120)) & 0xffffffff;
        i = i + 1;
    }
    report_result(checksum);
    return 0;
}
""" + RUNTIME_HELPERS


@register("620.omnetpp_s")
def omnetpp() -> SpecBenchmark:
    return SpecBenchmark(
        name="620.omnetpp_s",
        binary="omnetpp_s",
        source=_SOURCE,
        default_iterations=3,
    )
