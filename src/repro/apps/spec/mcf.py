"""605.mcf_s-like: minimum-cost-flow relaxation (the suite's smallest).

Real mcf solves vehicle-scheduling min-cost-flow instances; the paper
uses it as the smallest binary (18 KiB text) with negligible rewrite
overhead.  This analogue runs Bellman-Ford cost relaxations over a
small fixed network — tiny code, tiny init, long compute loop.
"""

from __future__ import annotations

from .common import COMMON_EXTERNS, RUNTIME_HELPERS, SpecBenchmark, register

_SOURCE = COMMON_EXTERNS + r"""
const NNODES = 16;
const NEDGES = 48;

var mcf_edge_from[48];
var mcf_edge_to[48];
var mcf_edge_cost[48];
var mcf_dist[128];           // NNODES u64 slots

func mcf_build_network() {
    var e = 0;
    while (e < NEDGES) {
        mcf_edge_from[e] = e % NNODES;
        mcf_edge_to[e] = (e * 7 + 3) % NNODES;
        mcf_edge_cost[e] = (e * 13) % 29 + 1;
        e = e + 1;
    }
    return 0;
}

func mcf_reset_distances() {
    var i = 0;
    while (i < NNODES) {
        store64(mcf_dist + 8 * i, 1000000);
        i = i + 1;
    }
    store64(mcf_dist, 0);
    return 0;
}

// never executed: dual-price consistency audit
func mcf_audit_duals() {
    var bad = 0;
    var e = 0;
    while (e < NEDGES) {
        var u = mcf_edge_from[e];
        var v = mcf_edge_to[e];
        if (load64(mcf_dist + 8 * v) > load64(mcf_dist + 8 * u) + mcf_edge_cost[e]) {
            bad = bad + 1;
        }
        e = e + 1;
    }
    return bad;
}

func mcf_relax_once() {
    var changed = 0;
    var e = 0;
    while (e < NEDGES) {
        var u = mcf_edge_from[e];
        var v = mcf_edge_to[e];
        var nd = load64(mcf_dist + 8 * u) + mcf_edge_cost[e];
        if (nd < load64(mcf_dist + 8 * v)) {
            store64(mcf_dist + 8 * v, nd);
            changed = changed + 1;
        }
        e = e + 1;
    }
    return changed;
}

func mcf_solve() {
    mcf_reset_distances();
    var rounds = 0;
    while (rounds < NNODES) {
        if (mcf_relax_once() == 0) { break; }
        rounds = rounds + 1;
    }
    var total = 0;
    var i = 0;
    while (i < NNODES) {
        total = total + load64(mcf_dist + 8 * i);
        i = i + 1;
    }
    return total;
}

func main(argc, argv) {
    mcf_build_network();
    mcf_reset_distances();
    announce_init_done();

    var iters = parse_iterations(argc, argv, 10);
    var checksum = 0;
    var i = 0;
    while (i < iters) {
        checksum = (checksum + mcf_solve()) & 0xffffffff;
        i = i + 1;
    }
    report_result(checksum);
    return 0;
}
""" + RUNTIME_HELPERS


@register("605.mcf_s")
def mcf() -> SpecBenchmark:
    return SpecBenchmark(
        name="605.mcf_s",
        binary="mcf_s",
        source=_SOURCE,
        default_iterations=10,
    )
