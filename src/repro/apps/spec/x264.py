"""625.x264_s-like: block-transform video encoding.

Real x264 encodes H.264 video; the hot loop is 8x8 integer transforms,
quantization against precomputed tables, and entropy coding.  This
analogue keeps that pipeline over synthetic frames.
"""

from __future__ import annotations

from .common import (
    COMMON_EXTERNS,
    RUNTIME_HELPERS,
    SpecBenchmark,
    generate_table_init,
    register,
)

_INIT_TABLES = generate_table_init("xv_quant", 8, "xv_tbl_quant", 32)

_SOURCE = COMMON_EXTERNS + r"""
const BLOCK = 64;            // 8x8 samples

var xv_tbl_quant[256];
var xv_frame[4096];
var xv_coeffs[512];          // BLOCK u64 slots

""" + _INIT_TABLES + r"""

func xv_build_frame(seed) {
    srand(seed + 11);
    var i = 0;
    while (i < 4096) {
        xv_frame[i] = rand_next() & 255;
        i = i + 1;
    }
    return 0;
}

// 1-D butterfly pass over a row of eight coefficients
func xv_transform_row(base) {
    var i = 0;
    while (i < 4) {
        var a = load64(xv_coeffs + 8 * (base + i));
        var b = load64(xv_coeffs + 8 * (base + 7 - i));
        store64(xv_coeffs + 8 * (base + i), a + b);
        store64(xv_coeffs + 8 * (base + 7 - i), a - b);
        i = i + 1;
    }
    return 0;
}

func xv_dct_block() {
    var row = 0;
    while (row < 8) {
        xv_transform_row(row * 8);
        row = row + 1;
    }
    return 0;
}

func xv_quantize_block() {
    var total = 0;
    var i = 0;
    while (i < BLOCK) {
        var q = xv_tbl_quant[i % 256] + 1;
        var c = load64(xv_coeffs + 8 * i);
        if (c < 0) { c = -c; }
        var lvl = c / q;
        store64(xv_coeffs + 8 * i, lvl);
        total = total + lvl;
        i = i + 1;
    }
    return total;
}

// simple run-length "entropy coder"
func xv_entropy_block() {
    var bits = 0;
    var zero_run = 0;
    var i = 0;
    while (i < BLOCK) {
        var lvl = load64(xv_coeffs + 8 * i);
        if (lvl == 0) {
            zero_run = zero_run + 1;
        } else {
            bits = bits + 4 + zero_run;
            zero_run = 0;
        }
        i = i + 1;
    }
    return bits;
}

// never executed: motion-estimation mode (inter frames)
func xv_motion_search(bx, by) {
    var best = 1000000;
    var dx = -2;
    while (dx <= 2) {
        var dy = -2;
        while (dy <= 2) {
            var cost = (dx * dx + dy * dy) * 3 + (bx ^ by);
            if (cost < best) { best = cost; }
            dy = dy + 1;
        }
        dx = dx + 1;
    }
    return best;
}

func xv_encode_frame(frame_index) {
    xv_build_frame(frame_index);
    var bits = 0;
    var block = 0;
    while (block < 16) {                   // 16 blocks per frame
        var base = block * 256 % 4000;
        var i = 0;
        while (i < BLOCK) {
            store64(xv_coeffs + 8 * i, xv_frame[base + i] - 128);
            i = i + 1;
        }
        xv_dct_block();
        xv_quantize_block();
        bits = bits + xv_entropy_block();
        block = block + 1;
    }
    return bits;
}

func main(argc, argv) {
    xv_quant_init_tables();
    xv_build_frame(0);
    announce_init_done();

    var frames = parse_iterations(argc, argv, 4);
    var checksum = 0;
    var f = 0;
    while (f < frames) {
        checksum = (checksum + xv_encode_frame(f)) & 0xffffffff;
        f = f + 1;
    }
    report_result(checksum);
    return 0;
}
""" + RUNTIME_HELPERS


@register("625.x264_s")
def x264() -> SpecBenchmark:
    return SpecBenchmark(
        name="625.x264_s",
        binary="x264_s",
        source=_SOURCE,
        default_iterations=4,
    )
