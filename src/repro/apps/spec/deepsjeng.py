"""631.deepsjeng_s-like: alpha-beta game-tree search.

Real deepsjeng is a chess engine; the analogue searches a deterministic
two-player take-away game with negamax + alpha-beta over hashed
positions, with zobrist-style tables built during init.
"""

from __future__ import annotations

from .common import (
    COMMON_EXTERNS,
    RUNTIME_HELPERS,
    SpecBenchmark,
    generate_table_init,
    register,
)

_INIT_TABLES = generate_table_init("ds_zobrist", 10, "ds_tbl_zobrist", 32)

_SOURCE = COMMON_EXTERNS + r"""
var ds_tbl_zobrist[320];
var ds_nodes = 0;

""" + _INIT_TABLES + r"""

func ds_hash_position(stones, turn) {
    var h = ds_tbl_zobrist[stones % 320];
    h = (h * 31 + ds_tbl_zobrist[(stones * 7 + turn) % 320]) & 0xffffff;
    return h;
}

func ds_evaluate(stones, turn) {
    // heuristic: positions ≡ 0 mod 4 lose for the side to move
    var score = (stones % 4) * 25 - 30;
    score = score + (ds_hash_position(stones, turn) & 7);
    if (turn) { return -score; }
    return score;
}

// moves: take 1, 2 or 3 stones
func ds_negamax(stones, depth, alpha, beta, turn) {
    ds_nodes = ds_nodes + 1;
    if (stones == 0) { return -100; }      // side to move already lost
    if (depth == 0) { return ds_evaluate(stones, turn); }
    var best = -1000;
    var take = 1;
    while (take <= 3) {
        if (take <= stones) {
            var score = -ds_negamax(stones - take, depth - 1, -beta, -alpha,
                                    1 - turn);
            if (score > best) { best = score; }
            if (best > alpha) { alpha = best; }
            if (alpha >= beta) { break; }  // beta cutoff
        }
        take = take + 1;
    }
    return best;
}

// never executed: opening-book probe
func ds_probe_book(stones) {
    if (stones == 21) { return 1; }
    if (stones == 34) { return 2; }
    return 0;
}

// never executed: perft-style move counting
func ds_perft(stones, depth) {
    if (depth == 0 || stones == 0) { return 1; }
    var total = 0;
    var take = 1;
    while (take <= 3) {
        if (take <= stones) { total = total + ds_perft(stones - take, depth - 1); }
        take = take + 1;
    }
    return total;
}

func ds_search_root(stones) {
    ds_nodes = 0;
    var best_move = 0;
    var best_score = -1000;
    var take = 1;
    while (take <= 3) {
        if (take <= stones) {
            var score = -ds_negamax(stones - take, 6, -1000, 1000, 1);
            if (score > best_score) {
                best_score = score;
                best_move = take;
            }
        }
        take = take + 1;
    }
    return best_move * 10000 + (best_score & 255) * 16 + (ds_nodes & 15);
}

func main(argc, argv) {
    ds_zobrist_init_tables();
    announce_init_done();

    var iters = parse_iterations(argc, argv, 4);
    var checksum = 0;
    var i = 0;
    while (i < iters) {
        checksum = (checksum + ds_search_root(20 + i % 12)) & 0xffffffff;
        i = i + 1;
    }
    report_result(checksum);
    return 0;
}
""" + RUNTIME_HELPERS


@register("631.deepsjeng_s")
def deepsjeng() -> SpecBenchmark:
    return SpecBenchmark(
        name="631.deepsjeng_s",
        binary="deepsjeng_s",
        source=_SOURCE,
        default_iterations=4,
    )
