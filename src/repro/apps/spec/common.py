"""Shared scaffolding for the SPEC-INTspeed-like benchmark programs.

Every benchmark follows the same lifecycle the paper's Figure 7/9
experiments rely on:

* a **setup phase** made of many small, distinct functions (table
  builders, config parsers) that run exactly once — these are the
  init-only basic blocks DynaCut removes;
* an ``init complete`` line on stdout — the observable transition point
  the profiler nudges at;
* a long-running **compute phase** whose iteration count comes from
  ``argv[1]``, so experiments can keep the process alive while it is
  checkpointed and rewritten;
* a final ``result <checksum>`` line, letting tests verify that the
  computation still produces the right answer after init-code removal;
* some never-called code (debug dumps, alternate modes) so the static
  CFG contains genuinely unused blocks (the gray regions of Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...binfmt.linker import link_executable
from ...binfmt.self_format import SelfImage
from ...minic.codegen import compile_source

INIT_DONE_LINE = "init complete"
RESULT_PREFIX = "result "

#: externs every benchmark imports
COMMON_EXTERNS = """
extern func exit;
extern func print;
extern func println;
extern func print_num;
extern func strlen;
extern func strcmp;
extern func strcpy;
extern func memcpy;
extern func memset;
extern func atoi;
extern func itoa;
extern func srand;
extern func rand_next;
"""

#: shared epilogue helpers (each benchmark gets its own copy, like
#: statically inlined runtime support in real SPEC builds)
RUNTIME_HELPERS = r"""
func announce_init_done() {
    println("init complete");
    return 0;
}

func report_result(checksum) {
    print("result ");
    print_num(checksum);
    println("");
    return 0;
}

func parse_iterations(argc, argv, fallback) {
    if (argc < 2) { return fallback; }
    var n = atoi(load64(argv + 8));
    if (n <= 0) { return fallback; }
    return n;
}
"""


def generate_table_init(prefix: str, count: int, table: str, stride: int) -> str:
    """Emit ``count`` distinct init functions, each filling one slice of
    ``table``, plus a driver that calls them all.

    Real SPEC programs burn thousands of init-only basic blocks building
    lookup tables; this generates the same *code shape* (many small
    functions, each a handful of blocks) at a tractable scale.
    """
    functions = []
    calls = []
    for index in range(count):
        base = index * stride
        # vary the fill expression so the functions are not clones
        mix = (index * 7 + 3) % 13 + 1
        functions.append(
            f"""
func {prefix}_init_{index}() {{
    var i = 0;
    while (i < {stride}) {{
        {table}[{base} + i] = (i * {mix} + {index}) & 255;
        i = i + 1;
    }}
    return {index};
}}
"""
        )
        calls.append(f"    {prefix}_init_{index}();")
    driver = (
        f"\nfunc {prefix}_init_tables() {{\n" + "\n".join(calls) + "\n    return 0;\n}\n"
    )
    return "".join(functions) + driver


@dataclass(frozen=True)
class SpecBenchmark:
    """One SPEC-like benchmark program."""

    name: str                    # paper-style name, e.g. "600.perlbench_s"
    binary: str                  # binary/registry name, e.g. "perlbench_s"
    source: str                  # full MiniC source
    default_iterations: int      # compute-loop iterations when argv has none

    def build(self, libc: SelfImage) -> SelfImage:
        module = compile_source(self.source, self.binary + ".o", entry=True)
        return link_executable([module], self.binary, libraries=[libc])


_REGISTRY: dict[str, Callable[[], SpecBenchmark]] = {}


def register(name: str):
    """Decorator: register a zero-arg benchmark factory under ``name``."""

    def wrap(factory: Callable[[], SpecBenchmark]):
        _REGISTRY[name] = factory
        return factory

    return wrap


def benchmark_names() -> list[str]:
    return sorted(_REGISTRY)


def get_benchmark(name: str) -> SpecBenchmark:
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        ) from None
