"""600.perlbench_s-like: text processing (the suite's biggest init phase).

The real perlbench interprets Perl scripts that process email text; the
paper measures it as the most expensive init-removal target (~10.8k
init-only blocks, 41.4% of executed blocks).  This analogue keeps that
*shape*: by far the most init-table builders in the suite, then a long
tokenisation/pattern-matching loop over synthetic email text.
"""

from __future__ import annotations

from .common import (
    COMMON_EXTERNS,
    RUNTIME_HELPERS,
    SpecBenchmark,
    generate_table_init,
    register,
)

_INIT_TABLES = (
    generate_table_init("pb_charclass", 8, "pb_tbl_charclass", 32)
    + generate_table_init("pb_regexstate", 10, "pb_tbl_regex", 64)
    + generate_table_init("pb_opcode", 6, "pb_tbl_opcode", 48)
)

_SOURCE = COMMON_EXTERNS + r"""
var pb_tbl_charclass[256];
var pb_tbl_regex[640];
var pb_tbl_opcode[288];
var pb_corpus[2048];
var pb_freq[256];

""" + _INIT_TABLES + r"""

// build the synthetic mail corpus (init-only)
func pb_build_corpus() {
    var words = "from subject dear spam offer free winner urgent reply stop hello meeting agenda notes lunch cheers ";
    var wlen = strlen(words);
    var pos = 0;
    var src = 0;
    while (pos < 2000) {
        var c = load8(words + src);
        pb_corpus[pos] = c;
        pos = pos + 1;
        src = src + 1;
        if (src >= wlen) { src = 0; }
    }
    pb_corpus[pos] = 0;
    return pos;
}

func pb_init_freq() {
    var i = 0;
    while (i < 256) { pb_freq[i] = 0; i = i + 1; }
    return 0;
}

// never executed with the default workload: utf8 decoding mode
func pb_decode_utf8(buf, len) {
    var i = 0;
    var acc = 0;
    while (i < len) {
        var c = load8(buf + i);
        if (c >= 128) { acc = acc + ((c & 31) << 6); i = i + 2; }
        else { acc = acc + c; i = i + 1; }
    }
    return acc;
}

// never executed: debug table dump
func pb_dump_tables() {
    var i = 0;
    while (i < 32) {
        print_num(pb_tbl_charclass[i]);
        i = i + 1;
    }
    println("");
    return 0;
}

func pb_is_space(c) {
    if (c == ' ' || c == 10 || c == 9) { return 1; }
    return 0;
}

func pb_hash_word(buf, len) {
    var h = 5381;
    var i = 0;
    while (i < len) {
        h = (h * 33 + load8(buf + i)) & 0xffffff;
        i = i + 1;
    }
    return h;
}

func pb_match_spam(word, len) {
    if (len != 4) { return 0; }
    if (load8(word) == 's' && load8(word + 1) == 'p'
        && load8(word + 2) == 'a' && load8(word + 3) == 'm') { return 1; }
    return 0;
}

func pb_tokenize_pass() {
    var pos = 0;
    var spam = 0;
    var checksum = 0;
    while (pb_corpus[pos] != 0) {
        while (pb_is_space(pb_corpus[pos])) { pos = pos + 1; }
        var start = pos;
        while (pb_corpus[pos] != 0 && pb_is_space(pb_corpus[pos]) == 0) {
            pos = pos + 1;
        }
        var len = pos - start;
        if (len == 0) { break; }
        var h = pb_hash_word(pb_corpus + start, len);
        var bucket = h & 255;
        pb_freq[bucket] = (pb_freq[bucket] + 1) & 255;
        spam = spam + pb_match_spam(pb_corpus + start, len);
        checksum = (checksum + h) & 0xffffff;
    }
    return checksum + spam * 1000;
}

func main(argc, argv) {
    pb_charclass_init_tables();
    pb_regexstate_init_tables();
    pb_opcode_init_tables();
    pb_build_corpus();
    pb_init_freq();
    announce_init_done();

    var iters = parse_iterations(argc, argv, 6);
    var checksum = 0;
    var i = 0;
    while (i < iters) {
        checksum = (checksum + pb_tokenize_pass()) & 0xffffffff;
        i = i + 1;
    }
    report_result(checksum);
    return 0;
}
""" + RUNTIME_HELPERS


@register("600.perlbench_s")
def perlbench() -> SpecBenchmark:
    return SpecBenchmark(
        name="600.perlbench_s",
        binary="perlbench_s",
        source=_SOURCE,
        default_iterations=6,
    )
