"""641.leela_s-like: Monte-Carlo tree-search playouts.

Real leela plays Go with MCTS; the analogue runs random playouts on a
7x7 board with liberty-style counting, neighbour tables built at init,
and a win-rate accumulator.
"""

from __future__ import annotations

from .common import (
    COMMON_EXTERNS,
    RUNTIME_HELPERS,
    SpecBenchmark,
    generate_table_init,
    register,
)

_INIT_TABLES = generate_table_init("ll_pattern", 8, "ll_tbl_pattern", 32)

_SOURCE = COMMON_EXTERNS + r"""
const BSIZE = 7;
const BCELLS = 49;

var ll_tbl_pattern[256];
var ll_board[64];
var ll_neighbors[256];       // 4 per cell
var ll_wins = 0;
var ll_playouts = 0;

""" + _INIT_TABLES + r"""

func ll_build_neighbors() {
    var cell = 0;
    while (cell < BCELLS) {
        var row = cell / BSIZE;
        var col = cell % BSIZE;
        var base = cell * 4;
        ll_neighbors[base] = 255;
        ll_neighbors[base + 1] = 255;
        ll_neighbors[base + 2] = 255;
        ll_neighbors[base + 3] = 255;
        if (row > 0) { ll_neighbors[base] = cell - BSIZE; }
        if (row < BSIZE - 1) { ll_neighbors[base + 1] = cell + BSIZE; }
        if (col > 0) { ll_neighbors[base + 2] = cell - 1; }
        if (col < BSIZE - 1) { ll_neighbors[base + 3] = cell + 1; }
        cell = cell + 1;
    }
    return 0;
}

func ll_clear_board() {
    var i = 0;
    while (i < BCELLS) { ll_board[i] = 0; i = i + 1; }
    return 0;
}

func ll_count_liberties(cell) {
    var libs = 0;
    var n = 0;
    while (n < 4) {
        var nb = ll_neighbors[cell * 4 + n];
        if (nb != 255) {
            if (ll_board[nb] == 0) { libs = libs + 1; }
        }
        n = n + 1;
    }
    return libs;
}

// never executed: ladder reading
func ll_read_ladder(cell, depth) {
    if (depth == 0) { return 0; }
    var libs = ll_count_liberties(cell);
    if (libs >= 2) { return 0; }
    return 1 + ll_read_ladder((cell + 1) % BCELLS, depth - 1);
}

// never executed: SGF game dump
func ll_dump_sgf() {
    var i = 0;
    while (i < BCELLS) {
        print_num(ll_board[i]);
        i = i + 1;
    }
    println("");
    return 0;
}

func ll_playout() {
    ll_clear_board();
    var color = 1;
    var moves = 0;
    var score = 0;
    while (moves < 40) {
        var cell = rand_next() % BCELLS;
        if (ll_board[cell] == 0) {
            var libs = ll_count_liberties(cell);
            if (libs > 0) {
                ll_board[cell] = color;
                var pattern = ll_tbl_pattern[(cell * 3 + moves) % 256];
                if (color == 1) { score = score + libs + (pattern & 3); }
                else { score = score - libs - (pattern & 3); }
                color = 3 - color;
            }
        }
        moves = moves + 1;
    }
    ll_playouts = ll_playouts + 1;
    if (score >= 0) { ll_wins = ll_wins + 1; return 1; }
    return 0;
}

func main(argc, argv) {
    ll_pattern_init_tables();
    ll_build_neighbors();
    srand(42);
    announce_init_done();

    var playouts = parse_iterations(argc, argv, 30);
    var checksum = 0;
    var i = 0;
    while (i < playouts) {
        checksum = checksum + ll_playout();
        i = i + 1;
    }
    report_result(checksum * 1000 / (ll_playouts + 1));
    return 0;
}
""" + RUNTIME_HELPERS


@register("641.leela_s")
def leela() -> SpecBenchmark:
    return SpecBenchmark(
        name="641.leela_s",
        binary="leela_s",
        source=_SOURCE,
        default_iterations=30,
    )
