"""Build-and-stage helpers for the guest application fleet.

Building a binary means compiling MiniC, assembling, and linking
against libc — deterministic and side-effect free, so images are
memoized process-wide.  :func:`stage_*` helpers put a binary plus its
config files onto a concrete kernel and return the booted process.
"""

from __future__ import annotations

from functools import lru_cache

from ..binfmt.self_format import SelfImage
from ..kernel.kernel import Kernel
from ..kernel.process import Process
from . import httpd_lighttpd, httpd_nginx, kvstore
from .libc import build_libc
from .spec import benchmark_names, get_benchmark


@lru_cache(maxsize=None)
def libc_image() -> SelfImage:
    return build_libc()


@lru_cache(maxsize=None)
def redis_image() -> SelfImage:
    return kvstore.build_miniredis(libc_image())


@lru_cache(maxsize=None)
def lighttpd_image() -> SelfImage:
    return httpd_lighttpd.build_minilight(libc_image())


@lru_cache(maxsize=None)
def nginx_image() -> SelfImage:
    return httpd_nginx.build_mininginx(libc_image())


@lru_cache(maxsize=None)
def spec_image(name: str) -> SelfImage:
    return get_benchmark(name).build(libc_image())


def all_images() -> dict[str, SelfImage]:
    """Every buildable binary, keyed by registry name."""
    images = {
        "libc.so": libc_image(),
        kvstore.REDIS_BINARY: redis_image(),
        httpd_lighttpd.LIGHTTPD_BINARY: lighttpd_image(),
        httpd_nginx.NGINX_BINARY: nginx_image(),
    }
    for name in benchmark_names():
        bench = get_benchmark(name)
        images[bench.binary] = spec_image(name)
    return images


# ----------------------------------------------------------------------
# staging helpers


def stage_redis(kernel: Kernel, run_to_ready: bool = True) -> Process:
    """Register, configure and boot miniredis on ``kernel``."""
    kernel.register_binary(libc_image())
    kernel.register_binary(redis_image())
    kvstore.install_default_config(kernel.fs)
    proc = kernel.spawn(kvstore.REDIS_BINARY)
    if run_to_ready:
        ready = kernel.run_until(
            lambda: kvstore.READY_LINE in proc.stdout_text(),
            max_instructions=5_000_000,
        )
        if not ready:
            raise RuntimeError("miniredis failed to reach ready state")
    return proc


def stage_lighttpd(kernel: Kernel, run_to_ready: bool = True) -> Process:
    """Register, configure and boot minilight on ``kernel``."""
    kernel.register_binary(libc_image())
    kernel.register_binary(lighttpd_image())
    httpd_lighttpd.install_default_config(kernel.fs)
    proc = kernel.spawn(httpd_lighttpd.LIGHTTPD_BINARY)
    if run_to_ready:
        ready = kernel.run_until(
            lambda: httpd_lighttpd.READY_LINE in proc.stdout_text(),
            max_instructions=5_000_000,
        )
        if not ready:
            raise RuntimeError("minilight failed to reach ready state")
    return proc


def stage_nginx(kernel: Kernel, run_to_ready: bool = True) -> Process:
    """Register, configure and boot mininginx (master + worker)."""
    kernel.register_binary(libc_image())
    kernel.register_binary(nginx_image())
    httpd_nginx.install_default_config(kernel.fs)
    master = kernel.spawn(httpd_nginx.NGINX_BINARY)
    if run_to_ready:
        def worker_running() -> bool:
            return any(
                httpd_nginx.WORKER_LINE in p.stdout_text()
                for p in kernel.processes.values()
                if p.ppid == master.pid
            )

        ready = kernel.run_until(
            lambda: httpd_nginx.READY_LINE in master.stdout_text()
            and worker_running(),
            max_instructions=8_000_000,
        )
        if not ready:
            raise RuntimeError("mininginx failed to reach ready state")
    return master


def nginx_worker(kernel: Kernel, master: Process) -> Process:
    """The (live) worker process of a booted mininginx master."""
    for proc in kernel.processes.values():
        if proc.ppid == master.pid and proc.alive:
            return proc
    raise RuntimeError("no live mininginx worker")


def stage_spec(
    kernel: Kernel,
    name: str,
    iterations: int | None = None,
    run_to_init: bool = True,
) -> Process:
    """Register and boot a SPEC-like benchmark; stops at init-done."""
    from .spec.common import INIT_DONE_LINE

    bench = get_benchmark(name)
    kernel.register_binary(libc_image())
    kernel.register_binary(spec_image(name))
    argv = [bench.binary]
    if iterations is not None:
        argv.append(str(iterations))
    proc = kernel.spawn(bench.binary, argv)
    if run_to_init:
        ready = kernel.run_until(
            lambda: INIT_DONE_LINE in proc.stdout_text(),
            max_instructions=10_000_000,
        )
        if not ready:
            raise RuntimeError(f"{name} did not finish initialization")
    return proc
