"""Guest libc: the shared library every application links against.

Built as a SELF shared object (``libc.so``).  Applications import these
functions through PLT stubs, which is what makes the paper's PLT-entry
analysis meaningful: DynaCut counts *executed* PLT entries per phase
and disables the ones (``fork``, ``execve``, ...) not used after
initialization.

The library is MiniC except for the 9-byte ``rt_sigreturn`` trampoline
(``__restore_rt``), which must run with a raw stack pointer and is
therefore hand-written assembly — mirroring glibc, where the restorer
is an assembly stub too.
"""

from __future__ import annotations

from ..binfmt.linker import link_shared
from ..binfmt.self_format import SelfImage
from ..isa.assembler import assemble
from ..minic.codegen import compile_source

LIBC_NAME = "libc.so"

#: system call numbers, kept in sync with repro.kernel.syscalls.Sys
_SYS = """
const SYS_EXIT = 1;
const SYS_WRITE = 2;
const SYS_READ = 3;
const SYS_OPEN = 4;
const SYS_CLOSE = 5;
const SYS_SOCKET = 6;
const SYS_BIND = 7;
const SYS_LISTEN = 8;
const SYS_ACCEPT = 9;
const SYS_SEND = 10;
const SYS_RECV = 11;
const SYS_FORK = 12;
const SYS_GETPID = 13;
const SYS_MMAP = 14;
const SYS_MUNMAP = 15;
const SYS_SIGACTION = 16;
const SYS_NANOSLEEP = 18;
const SYS_KILL = 21;
const SYS_WAITPID = 22;
const SYS_CLOCK_GETTIME = 23;
const SYS_UNLINK = 24;
const SYS_EXECVE = 25;
const SYS_GETPPID = 26;
const SYS_POLL = 28;
const SYS_MPROTECT = 29;
"""

LIBC_SOURCE = _SYS + r"""
extern func __restore_rt;

// ---------------------------------------------------------------- syscalls

func exit(code) { syscall(SYS_EXIT, code); return 0; }
func write(fd, buf, len) { return syscall(SYS_WRITE, fd, buf, len); }
func read(fd, buf, len) { return syscall(SYS_READ, fd, buf, len); }
func open(path, flags) { return syscall(SYS_OPEN, path, flags); }
func close(fd) { return syscall(SYS_CLOSE, fd); }
func unlink(path) { return syscall(SYS_UNLINK, path); }
func socket() { return syscall(SYS_SOCKET); }
func bind(fd, port) { return syscall(SYS_BIND, fd, port); }
func listen(fd, backlog) { return syscall(SYS_LISTEN, fd, backlog); }
func accept(fd) { return syscall(SYS_ACCEPT, fd); }
func send(fd, buf, len) { return syscall(SYS_SEND, fd, buf, len); }
func recv(fd, buf, len) { return syscall(SYS_RECV, fd, buf, len); }
func fork() { return syscall(SYS_FORK); }
func getpid() { return syscall(SYS_GETPID); }
func getppid() { return syscall(SYS_GETPPID); }
func waitpid(pid) { return syscall(SYS_WAITPID, pid); }
func kill(pid, sig) { return syscall(SYS_KILL, pid, sig); }
func execve(path) { return syscall(SYS_EXECVE, path); }
func mmap(addr, len, prot) { return syscall(SYS_MMAP, addr, len, prot); }
func munmap(addr, len) { return syscall(SYS_MUNMAP, addr, len); }
func mprotect(addr, len, prot) { return syscall(SYS_MPROTECT, addr, len, prot); }
func poll(fds, count) { return syscall(SYS_POLL, fds, count); }
func clock_ns() { return syscall(SYS_CLOCK_GETTIME); }
func clock_ms() { return syscall(SYS_CLOCK_GETTIME) / 1000000; }
func sleep_ms(ms) { return syscall(SYS_NANOSLEEP, ms * 1000000); }

func sigaction(sig, handler) {
    return syscall(SYS_SIGACTION, sig, handler, __restore_rt);
}

// ---------------------------------------------------------------- strings

func strlen(s) {
    var n = 0;
    while (load8(s + n) != 0) { n = n + 1; }
    return n;
}

func strcmp(a, b) {
    var i = 0;
    while (1) {
        var ca = load8(a + i);
        var cb = load8(b + i);
        if (ca != cb) { return ca - cb; }
        if (ca == 0) { return 0; }
        i = i + 1;
    }
    return 0;
}

func strncmp(a, b, n) {
    var i = 0;
    while (i < n) {
        var ca = load8(a + i);
        var cb = load8(b + i);
        if (ca != cb) { return ca - cb; }
        if (ca == 0) { return 0; }
        i = i + 1;
    }
    return 0;
}

func strcpy(dst, src) {
    var i = 0;
    while (1) {
        var c = load8(src + i);
        store8(dst + i, c);
        if (c == 0) { return dst; }
        i = i + 1;
    }
    return dst;
}

func strcat(dst, src) {
    strcpy(dst + strlen(dst), src);
    return dst;
}

func memcpy(dst, src, n) {
    var i = 0;
    while (i < n) {
        store8(dst + i, load8(src + i));
        i = i + 1;
    }
    return dst;
}

func memset(dst, value, n) {
    var i = 0;
    while (i < n) {
        store8(dst + i, value);
        i = i + 1;
    }
    return dst;
}

func memcmp(a, b, n) {
    var i = 0;
    while (i < n) {
        var d = load8(a + i) - load8(b + i);
        if (d != 0) { return d; }
        i = i + 1;
    }
    return 0;
}

// index of first occurrence of byte c in s, or -1
func strchr_idx(s, c) {
    var i = 0;
    while (1) {
        var ch = load8(s + i);
        if (ch == c) { return i; }
        if (ch == 0) { return -1; }
        i = i + 1;
    }
    return -1;
}

func starts_with(s, prefix) {
    var n = strlen(prefix);
    if (strncmp(s, prefix, n) == 0) { return 1; }
    return 0;
}

// ---------------------------------------------------------------- numbers

func atoi(s) {
    var i = 0;
    var sign = 1;
    var value = 0;
    if (load8(s) == '-') { sign = -1; i = 1; }
    while (1) {
        var c = load8(s + i);
        if (c < '0' || c > '9') { break; }
        value = value * 10 + (c - '0');
        i = i + 1;
    }
    return value * sign;
}

// write decimal representation of n into buf; returns length
func itoa(n, buf) {
    var len = 0;
    var neg = 0;
    if (n < 0) { neg = 1; n = -n; }
    var tmp[32];
    var t = 0;
    if (n == 0) { tmp[0] = '0'; t = 1; }
    while (n > 0) {
        tmp[t] = '0' + n % 10;
        n = n / 10;
        t = t + 1;
    }
    if (neg) { buf[len] = '-'; len = len + 1; }
    while (t > 0) {
        t = t - 1;
        buf[len] = tmp[t];
        len = len + 1;
    }
    buf[len] = 0;
    return len;
}

// ---------------------------------------------------------------- stdio

func print(s) { return write(1, s, strlen(s)); }

func println(s) {
    write(1, s, strlen(s));
    var nl[2];
    nl[0] = 10;
    return write(1, nl, 1);
}

func print_num(n) {
    var buf[32];
    var len = itoa(n, buf);
    return write(1, buf, len);
}

// ---------------------------------------------------------------- malloc

var __heap_base = 0;
var __heap_cursor = 0;
var __heap_end = 0;
const HEAP_CHUNK = 262144;

func malloc(n) {
    n = (n + 15) / 16 * 16;
    if (__heap_cursor + n > __heap_end) {
        var want = HEAP_CHUNK;
        if (n > want) { want = (n + 4095) / 4096 * 4096; }
        var chunk = mmap(0, want, 3);
        if (chunk < 0) { return 0; }
        __heap_base = chunk;
        __heap_cursor = chunk;
        __heap_end = chunk + want;
    }
    var p = __heap_cursor;
    __heap_cursor = __heap_cursor + n;
    return p;
}

func free(p) { return 0; }   // bump allocator: free is a no-op

// ---------------------------------------------------------------- misc

var __rand_state = 88172645463325252;

func srand(seed) {
    if (seed == 0) { seed = 1; }
    __rand_state = seed;
    return 0;
}

// xorshift64 PRNG; returns a non-negative value
func rand_next() {
    var x = __rand_state;
    x = x ^ (x << 13);
    x = x ^ (x >> 7);
    x = x ^ (x << 17);
    __rand_state = x;
    var v = x & 0x7fffffffffffffff;
    return v;
}
"""

#: the rt_sigreturn trampoline: handlers RET here with sp at the sigframe
RESTORER_ASM = """
.section text
.global __restore_rt
__restore_rt:
    mov r1, sp
    movi r0, 17        ; SYS_SIGRETURN
    syscall
    int3               ; never reached
"""


def build_libc() -> SelfImage:
    """Compile and link the guest libc shared object."""
    main_module = compile_source(LIBC_SOURCE, "libc.o", entry=False)
    restorer_module = assemble(RESTORER_ASM, "sigrestore.o")
    return link_shared([main_module, restorer_module], LIBC_NAME)


#: names applications typically import (used by tests and docs)
LIBC_EXPORTS = (
    "exit", "write", "read", "open", "close", "unlink",
    "socket", "bind", "listen", "accept", "send", "recv",
    "fork", "getpid", "getppid", "waitpid", "kill", "execve",
    "mmap", "munmap", "mprotect", "poll", "clock_ns", "clock_ms", "sleep_ms",
    "sigaction", "strlen", "strcmp", "strncmp", "strcpy", "strcat",
    "memcpy", "memset", "memcmp", "strchr_idx", "starts_with",
    "atoi", "itoa", "print", "println", "print_num",
    "malloc", "free", "srand", "rand_next",
)
