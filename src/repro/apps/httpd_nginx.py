"""mininginx: a master/worker web server (Nginx-like).

Architecture mirrors Nginx's:

* a **master** process parses the config, creates the listening socket,
  forks worker processes (``ngx_spawn_worker``), then sits in a
  ``waitpid`` loop; when a worker dies it *respawns* it via ``fork`` —
  the exact behaviour Blind-ROP needs (crash the worker, get a fresh
  one with the same address space) and the exact behaviour DynaCut's
  init-code removal disables (post-init, the only traced ``fork`` PLT
  entry executions were during initialization);
* a **worker** (``ngx_worker_process_cycle``, named after the paper's
  transition-point function) accepts one connection at a time, parses
  the request, and dispatches through ``ngx_handle_request`` — a switch
  with a WebDAV module (PUT/DELETE) and a ``ngx_forbidden_entry``
  redirect arm, modelled on the ``ngx_http_dav_handler`` of Listing 1;
* the worker's request-line parser copies the URL into a fixed 64-byte
  buffer without a bound check — the memory-corruption primitive the
  BROP simulation crashes workers with.
"""

from __future__ import annotations

from ..binfmt.linker import link_executable
from ..binfmt.self_format import SelfImage
from ..minic.codegen import compile_source

NGINX_BINARY = "mininginx"
NGINX_PORT = 8081
NGINX_CONFIG_PATH = "/etc/nginx.conf"
DOCROOT = "/var/www"

DEFAULT_CONFIG = """\
worker_processes 1
listen 8081
root /var/www
dav_methods PUT DELETE
worker_respawn on
index index.html
"""

READY_LINE = "mininginx: master ready"
WORKER_LINE = "mininginx: worker running"

#: symbol of the dispatcher's 403 arm (redirect target for blocked features)
FORBIDDEN_SYMBOL = "ngx_forbidden_entry"

NGINX_SOURCE = r"""
extern func exit;
extern func open;
extern func close;
extern func read;
extern func write;
extern func unlink;
extern func socket;
extern func bind;
extern func listen;
extern func accept;
extern func send;
extern func recv;
extern func fork;
extern func waitpid;
extern func print;
extern func println;
extern func print_num;
extern func strlen;
extern func strcmp;
extern func strcpy;
extern func strcat;
extern func memcpy;
extern func memset;
extern func atoi;
extern func itoa;
extern func strchr_idx;
extern func starts_with;
extern func getpid;

const RBUF = 1024;

const M_GET = 1;
const M_HEAD = 2;
const M_POST = 3;
const M_OPTIONS = 4;
const M_PUT = 5;
const M_DELETE = 6;

// ------------------------------------------------------------- globals

var cfg_workers = 1;
var cfg_port = 8081;
var cfg_root[64];
var cfg_dav_put = 0;
var cfg_dav_delete = 0;
var cfg_respawn = 0;
var cfg_index[32];

var listen_fd = 0;
var stat_requests = 0;
var workers_spawned = 0;

// ------------------------------------------------------------- init phase

func ngx_read_config(buf, cap) {
    var fd = open("/etc/nginx.conf", 0);
    if (fd < 0) { return 0; }
    var n = read(fd, buf, cap - 1);
    close(fd);
    if (n < 0) { n = 0; }
    store8(buf + n, 0);
    return n;
}

func ngx_parse_workers(line) {
    if (starts_with(line, "worker_processes ")) {
        cfg_workers = atoi(line + 17);
        return 1;
    }
    return 0;
}

func ngx_parse_listen(line) {
    if (starts_with(line, "listen ")) { cfg_port = atoi(line + 7); return 1; }
    return 0;
}

func ngx_parse_root(line) {
    if (starts_with(line, "root ")) { strcpy(cfg_root, line + 5); return 1; }
    return 0;
}

func ngx_parse_dav(line) {
    if (starts_with(line, "dav_methods ")) {
        var rest = line + 12;
        if (strchr_idx(rest, 'P') >= 0) { cfg_dav_put = 1; }
        if (strchr_idx(rest, 'D') >= 0) { cfg_dav_delete = 1; }
        return 1;
    }
    return 0;
}

func ngx_parse_respawn(line) {
    if (starts_with(line, "worker_respawn ")) {
        if (strcmp(line + 15, "on") == 0) { cfg_respawn = 1; }
        return 1;
    }
    return 0;
}

func ngx_parse_index(line) {
    if (starts_with(line, "index ")) { strcpy(cfg_index, line + 6); return 1; }
    return 0;
}

func ngx_load_config() {
    strcpy(cfg_root, "/var/www");
    strcpy(cfg_index, "index.html");
    var buf[1024];
    var n = ngx_read_config(buf, 1024);
    var pos = 0;
    while (pos < n) {
        var rel = strchr_idx(buf + pos, 10);
        if (rel < 0) { break; }
        store8(buf + pos + rel, 0);
        var line = buf + pos;
        if (ngx_parse_workers(line)) { }
        else { if (ngx_parse_listen(line)) { }
        else { if (ngx_parse_root(line)) { }
        else { if (ngx_parse_dav(line)) { }
        else { if (ngx_parse_respawn(line)) { }
        else { ngx_parse_index(line); } } } } }
        pos = pos + rel + 1;
    }
    return 0;
}

func ngx_init_listener() {
    listen_fd = socket();
    if (bind(listen_fd, cfg_port) < 0) {
        println("mininginx: bind failed");
        exit(1);
    }
    listen(listen_fd, 16);
    return 0;
}

func ngx_print_banner() {
    print("mininginx: master pid=");
    print_num(getpid());
    print(" port=");
    print_num(cfg_port);
    println("");
    println("mininginx: master ready");
    return 0;
}

// ------------------------------------------------------------- responses

func ngx_status_text(code) {
    if (code == 200) { return "OK"; }
    if (code == 201) { return "Created"; }
    if (code == 204) { return "No Content"; }
    if (code == 400) { return "Bad Request"; }
    if (code == 403) { return "Forbidden"; }
    if (code == 404) { return "Not Found"; }
    if (code == 405) { return "Method Not Allowed"; }
    return "Internal Server Error";
}

func ngx_send_response(fd, code, body, body_len) {
    var head[160];
    strcpy(head, "HTTP/1.0 ");
    itoa(code, head + 9);
    strcat(head, " ");
    strcat(head, ngx_status_text(code));
    strcat(head, "\r\nServer: mininginx\r\nContent-Length: ");
    var lenbuf[24];
    itoa(body_len, lenbuf);
    strcat(head, lenbuf);
    strcat(head, "\r\n\r\n");
    send(fd, head, strlen(head));
    if (body_len > 0) { send(fd, body, body_len); }
    return 0;
}

func ngx_respond_error(fd, code) {
    var body[64];
    strcpy(body, "<h1>");
    itoa(code, body + 4);
    strcat(body, " ");
    strcat(body, ngx_status_text(code));
    strcat(body, "</h1>");
    return ngx_send_response(fd, code, body, strlen(body));
}

// ------------------------------------------------------------- handlers

func ngx_map_path(path, out) {
    strcpy(out, cfg_root);
    if (strcmp(path, "/") == 0) {
        strcat(out, "/");
        strcat(out, cfg_index);
        return 0;
    }
    strcat(out, path);
    return 0;
}

func ngx_http_get(fd, path) {
    var full[192];
    ngx_map_path(path, full);
    var file = open(full, 0);
    if (file < 0) { return ngx_respond_error(fd, 404); }
    var body[2048];
    var n = read(file, body, 2047);
    close(file);
    if (n < 0) { n = 0; }
    return ngx_send_response(fd, 200, body, n);
}

func ngx_http_head(fd, path) {
    var full[192];
    ngx_map_path(path, full);
    var file = open(full, 0);
    if (file < 0) { return ngx_respond_error(fd, 404); }
    close(file);
    return ngx_send_response(fd, 200, "", 0);
}

func ngx_http_post(fd, path, body, body_len) {
    return ngx_send_response(fd, 200, body, body_len);
}

func ngx_http_options(fd) {
    var allow = "GET, HEAD, POST, OPTIONS, PUT, DELETE";
    return ngx_send_response(fd, 200, allow, strlen(allow));
}

func ngx_dav_put(fd, path, body, body_len) {
    if (cfg_dav_put == 0) { return ngx_respond_error(fd, 403); }
    var full[192];
    ngx_map_path(path, full);
    var file = open(full, 0x241);
    if (file < 0) { return ngx_respond_error(fd, 500); }
    write(file, body, body_len);
    close(file);
    return ngx_send_response(fd, 201, "", 0);
}

func ngx_dav_delete(fd, path) {
    if (cfg_dav_delete == 0) { return ngx_respond_error(fd, 403); }
    var full[192];
    ngx_map_path(path, full);
    if (unlink(full) < 0) { return ngx_respond_error(fd, 404); }
    return ngx_send_response(fd, 204, "", 0);
}

// ------------------------------------------------------------- dispatch

func ngx_method_id(s) {
    if (strcmp(s, "GET") == 0) { return M_GET; }
    if (strcmp(s, "HEAD") == 0) { return M_HEAD; }
    if (strcmp(s, "POST") == 0) { return M_POST; }
    if (strcmp(s, "OPTIONS") == 0) { return M_OPTIONS; }
    if (strcmp(s, "PUT") == 0) { return M_PUT; }
    if (strcmp(s, "DELETE") == 0) { return M_DELETE; }
    return 0;
}

// modelled on ngx_http_dav_handler (Listing 1 in the paper)
func ngx_handle_request(fd, method, path, body, body_len) {
    stat_requests = stat_requests + 1;
    switch (method) {
    case 1:
        ngx_http_get(fd, path);
        break;
    case 2:
        ngx_http_head(fd, path);
        break;
    case 3:
        ngx_http_post(fd, path, body, body_len);
        break;
    case 4:
        ngx_http_options(fd);
        break;
    case 5:
        ngx_dav_put(fd, path, body, body_len);
        break;
    case 6:
        ngx_dav_delete(fd, path);
        break;
    case 99:
        // redirect target for DynaCut-blocked methods: NGX_DECLINED-style
        asm(".marker ngx_forbidden_entry");
        ngx_respond_error(fd, 403);
        break;
    default:
        ngx_respond_error(fd, 405);
    }
    return 0;
}

// ------------------------------------------------------------- worker

func ngx_find_body(buf, used) {
    var i = 0;
    while (i + 3 < used) {
        if (load8(buf + i) == 13 && load8(buf + i + 1) == 10
            && load8(buf + i + 2) == 13 && load8(buf + i + 3) == 10) {
            return i + 4;
        }
        i = i + 1;
    }
    return -1;
}

func ngx_content_length(buf, header_len) {
    var i = 0;
    while (i < header_len) {
        if (starts_with(buf + i, "Content-Length: ")) {
            return atoi(buf + i + 16);
        }
        var rel = strchr_idx(buf + i, 10);
        if (rel < 0) { break; }
        i = i + rel + 1;
    }
    return 0;
}

func ngx_process_request(fd, buf, header_len, body_len) {
    var method_buf[16];
    var path_buf[64];
    var sp1 = strchr_idx(buf, ' ');
    if (sp1 < 0 || sp1 >= 15) { ngx_respond_error(fd, 400); return 0; }
    memcpy(method_buf, buf, sp1);
    store8(method_buf + sp1, 0);
    var rest = buf + sp1 + 1;
    var sp2 = strchr_idx(rest, ' ');
    if (sp2 < 0) { ngx_respond_error(fd, 400); return 0; }
    // BUG: no bound check against the 64-byte path buffer — a long URL
    // smashes the worker's stack (the BROP crash primitive)
    memcpy(path_buf, rest, sp2);
    store8(path_buf + sp2, 0);
    var method = ngx_method_id(method_buf);
    ngx_handle_request(fd, method, path_buf, buf + header_len, body_len);
    return 0;
}

func ngx_worker_handle_conn(fd) {
    var buf[1024];
    var used = 0;
    while (used < RBUF - 1) {
        var n = recv(fd, buf + used, RBUF - 1 - used);
        if (n <= 0) { close(fd); return 0; }
        used = used + n;
        store8(buf + used, 0);
        var header_len = ngx_find_body(buf, used);
        if (header_len < 0) { continue; }
        var body_len = ngx_content_length(buf, header_len);
        if (used < header_len + body_len) { continue; }
        ngx_process_request(fd, buf, header_len, body_len);
        close(fd);
        return 0;
    }
    ngx_respond_error(fd, 400);
    close(fd);
    return 0;
}

func ngx_worker_process_cycle() {
    println("mininginx: worker running");
    while (1) {
        var fd = accept(listen_fd);
        if (fd < 0) { continue; }
        ngx_worker_handle_conn(fd);
    }
    return 0;
}

// ------------------------------------------------------------- master

func ngx_spawn_worker() {
    var pid = fork();
    if (pid == 0) {
        ngx_worker_process_cycle();
        exit(0);
    }
    workers_spawned = workers_spawned + 1;
    return pid;
}

func ngx_master_cycle() {
    while (1) {
        var dead = waitpid(0);
        if (dead < 0) { break; }          // no children left
        println("mininginx: worker exited");
        if (cfg_respawn) {
            ngx_spawn_worker();
            println("mininginx: worker respawned");
        } else {
            println("mininginx: not respawning, shutting down");
            break;
        }
    }
    return 0;
}

func main(argc, argv) {
    ngx_load_config();
    ngx_init_listener();
    var i = 0;
    while (i < cfg_workers) {
        ngx_spawn_worker();
        i = i + 1;
    }
    ngx_print_banner();
    ngx_master_cycle();
    return 0;
}
"""


def build_mininginx(libc: SelfImage) -> SelfImage:
    """Compile and link the mininginx executable against ``libc``."""
    module = compile_source(NGINX_SOURCE, "mininginx.o", entry=True)
    return link_executable([module], NGINX_BINARY, libraries=[libc])


def install_default_config(fs, index_body: str = "<h1>nginx-like</h1>") -> None:
    """Stage the nginx config and a docroot with an index file."""
    fs.write_file(NGINX_CONFIG_PATH, DEFAULT_CONFIG)
    fs.write_file(f"{DOCROOT}/index.html", index_body)
