"""Shard-by-shard rollouts with per-shard blast radius.

:class:`MeshRollout` drives one policy rollout across every shard of a
mesh, one :class:`~repro.fleet.rollout.RolloutExecutor` per shard,
advanced strictly shard-by-shard: shard *i* must finish (complete or
abort) before shard *i+1* drains its first batch — the mesh-level
analogue of the canary gate, bounding how much of the keyspace is
mid-customization at once.

The per-shard health gates stay exactly the single-kernel ones (probe
success rate, blocked-feature checks); the mesh adds one gate above
them: **a shard whose host is not routable aborts — that shard only**.
A whole-host crash mid-rollout therefore rolls back nothing anywhere
else; the dead shard's instances are recovered later by its own
supervisor from their committed images, and the remaining shards keep
rolling.  ``report()`` makes the blast radius auditable per shard.
"""

from __future__ import annotations

from .. import telemetry
from ..fleet.rollout import RolloutExecutor
from .controller import MeshController
from .host import MeshError


class MeshRollout:
    """One policy rollout, sequenced across every shard of a mesh."""

    def __init__(self, mesh: MeshController):
        if mesh.frontend is None:
            raise MeshError("spawn_mesh() before planning a rollout")
        self.mesh = mesh
        self.executors: list[RolloutExecutor] = [
            RolloutExecutor(host.controller) for host in mesh.hosts
        ]
        self._cursor = 0

    # ------------------------------------------------------------------
    # progress

    @property
    def done(self) -> bool:
        return all(executor.done for executor in self.executors)

    @property
    def current_shard(self) -> str | None:
        for host, executor in zip(self.mesh.hosts, self.executors):
            if not executor.done:
                return host.name
        return None

    def step(self) -> bool:
        """Advance the current shard's rollout by one batch.

        Returns True while any shard still has work.  Designed to be
        called from workload timeline events, like the single-kernel
        executor's ``step()``.
        """
        while self._cursor < len(self.executors) and self.executors[self._cursor].done:
            self._cursor += 1
        if self._cursor >= len(self.executors):
            return False
        host = self.mesh.hosts[self._cursor]
        executor = self.executors[self._cursor]
        self.mesh.clock.sync(host.kernel)
        with telemetry.label_scope(shard=host.name):
            if not host.routable():
                # whole-host failure: bound the blast radius to this
                # shard — roll back what this executor customized on
                # still-live trees (dead ones are the supervisor's job)
                executor.abort(
                    f"{host.name} is not routable (whole-host failure); "
                    f"aborting this shard's rollout only"
                )
                telemetry.count("mesh_rollout_aborts_total", shard=host.name)
            else:
                try:
                    executor.step()
                except Exception as exc:  # noqa: BLE001 — abort, don't crash the mesh
                    executor.abort(f"{host.name}: rollout step failed: {exc!r}")
                    telemetry.count("mesh_rollout_aborts_total", shard=host.name)
        return not self.done

    def run(self) -> dict:
        """Step to completion (no interleaved workload)."""
        while self.step():
            pass
        return self.report()

    # ------------------------------------------------------------------
    # reporting

    @property
    def state(self) -> str:
        """``completed`` / ``aborted`` / ``partial`` / ``running``."""
        if not self.done:
            return "running"
        states = {executor.report.state for executor in self.executors}
        if states == {"completed"}:
            return "completed"
        if "completed" in states:
            return "partial"
        return "aborted"

    def report(self) -> dict:
        return {
            "state": self.state,
            "shards": {
                host.name: executor.report.to_dict()
                for host, executor in zip(self.mesh.hosts, self.executors)
            },
            "completed_shards": [
                host.name
                for host, executor in zip(self.mesh.hosts, self.executors)
                if executor.report.completed
            ],
            "aborted_shards": {
                host.name: executor.report.aborted_reason
                for host, executor in zip(self.mesh.hosts, self.executors)
                if executor.report.aborted
            },
        }
