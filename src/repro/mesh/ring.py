"""Consistent-hash keyspace routing for the mesh frontend.

The kvstore workload is keyed: requests for one key must keep landing
on the same shard so its data is actually there.  A :class:`HashRing`
maps keys to shards with the classic stable-arc guarantee: each shard
owns ``replicas`` points ("virtual nodes") on a 2^64 ring, a key
belongs to the first shard point at or clockwise-after its own hash,
and **adding or removing a shard only remaps the arcs adjacent to that
shard's points** — every other key keeps its assignment.  That is the
property the mesh's whole-host failure story leans on: when a host
dies, only its arc fails over (to each arc's ring successor), and the
hypothesis suite in ``tests/test_mesh_ring.py`` pins it down.

Hashing is :mod:`hashlib`-based, never the interpreter's randomized
``hash()``: assignments must be identical across processes and runs or
same-seed campaigns would route differently and break byte-identical
re-export.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, insort
from collections.abc import Iterable, Iterator


class RingError(ValueError):
    """Misuse of the hash ring (no shards, bad replica count)."""


def stable_hash(value: str) -> int:
    """A 64-bit hash that is stable across runs and interpreters."""
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Keys → shards via consistent hashing with virtual nodes."""

    def __init__(self, replicas: int = 8, shards: Iterable[int] = ()):
        if replicas < 1:
            raise RingError(f"ring replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        #: sorted (point, shard) pairs; ties break on the lower shard id
        self._points: list[tuple[int, int]] = []
        self._shards: set[int] = set()
        for shard in shards:
            self.add(shard)

    # ------------------------------------------------------------------
    # membership

    @property
    def shards(self) -> tuple[int, ...]:
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: int) -> bool:
        return shard in self._shards

    def _shard_points(self, shard: int) -> list[tuple[int, int]]:
        return [
            (stable_hash(f"shard-{shard}#{replica}"), shard)
            for replica in range(self.replicas)
        ]

    def add(self, shard: int) -> None:
        """Place ``shard``'s virtual nodes; other arcs are untouched."""
        if shard in self._shards:
            return
        self._shards.add(shard)
        for point in self._shard_points(shard):
            insort(self._points, point)

    def remove(self, shard: int) -> None:
        """Withdraw ``shard``; only keys on its arcs get remapped."""
        if shard not in self._shards:
            return
        self._shards.discard(shard)
        gone = set(self._shard_points(shard))
        self._points = [p for p in self._points if p not in gone]

    # ------------------------------------------------------------------
    # lookup

    def successors(self, key: str) -> Iterator[int]:
        """Distinct shards in ring order starting at ``key``'s arc.

        The first yielded shard is the key's owner; the rest is the
        deterministic failover order a down-host dispatch walks.
        """
        if not self._points:
            raise RingError("hash ring has no shards")
        start = bisect_left(self._points, (stable_hash(key), -1))
        seen: set[int] = set()
        for index in range(len(self._points)):
            __, shard = self._points[(start + index) % len(self._points)]
            if shard not in seen:
                seen.add(shard)
                yield shard

    def shard_for(self, key: str, down: Iterable[int] = ()) -> int:
        """The live shard owning ``key`` (skipping ``down`` hosts)."""
        unavailable = set(down)
        for shard in self.successors(key):
            if shard not in unavailable:
                return shard
        raise RingError(f"no live shard for key {key!r}: all {len(self)} down")

    # ------------------------------------------------------------------
    # observability

    def arc_sizes(self, samples: int = 4096) -> dict[int, int]:
        """Sampled keyspace share per shard (balance diagnostics)."""
        owned = {shard: 0 for shard in self._shards}
        for index in range(samples):
            owned[self.shard_for(f"arc-sample-{index}")] += 1
        return owned

    def to_dict(self) -> dict:
        return {
            "replicas": self.replicas,
            "shards": list(self.shards),
            "points": len(self._points),
        }
