"""DynaMesh: the fleet, sharded over kernels, behind a frontend tier.

Layer 8 of the stack.  DynaFleet customizes N instances on *one*
kernel; DynaMesh shards that fleet over N *kernels* ("hosts"), each
with its own virtual clock, network, supervisor, and drift detector,
and puts a cross-kernel frontend in front:

* :class:`Host` — one kernel-sized shard (kernel + fleet controller +
  supervisor), with whole-host crash as its failure unit;
* :class:`Frontend` — consistent-hash keyspace routing (kvstore) or L7
  spread (httpd) over shards, cross-host failover, and the
  ``issued == served + failed_over + shed`` accounting identity;
* :class:`MeshController` — the control plane: mesh-time clock
  discipline (:class:`MeshClock`), mesh-wide supervision ticks, seeded
  whole-host chaos (:func:`inject_host_chaos`);
* :class:`MeshRollout` — shard-by-shard rollouts where a whole-host
  failure aborts only the affected shard.

See ``docs/fleet.md`` (Mesh section) and ``tools/mesh_cli.py``.
"""

from .controller import MeshClock, MeshController, inject_host_chaos
from .frontend import ROUTING_MODES, Frontend
from .host import Host, MeshError
from .ring import HashRing, RingError, stable_hash
from .rollout import MeshRollout

__all__ = [
    "Frontend",
    "HashRing",
    "Host",
    "MeshClock",
    "MeshController",
    "MeshError",
    "MeshRollout",
    "ROUTING_MODES",
    "RingError",
    "inject_host_chaos",
    "stable_hash",
]
