"""The mesh frontend tier: cross-host routing with strict accounting.

One :class:`Frontend` stands in front of N :class:`~repro.mesh.host.Host`
shards the way a host's intra-kernel balancer stands in front of its
instances — and it is literally the same state machine: a
:class:`~repro.kernel.balancer.MemberPool` over *shard indices* instead
of backend ports.  Two routing policies:

* ``"spread"`` — plain L7 round-robin over routable shards; right for
  stateless httpd fleets where any shard can serve any request.
* ``"hash"`` — consistent-hash keyspace routing (:class:`HashRing`);
  required for the kvstore fleet, where the data for a key lives on
  the shard that owns its arc.  A down host's arc fails over to its
  ring successors, so only that arc remaps.

Every dispatch is accounted into exactly one bucket, and the identity

    ``issued == served + failed_over + shed``

is the mesh's no-lost-requests invariant: ``served`` reached a shard
first try, ``failed_over`` reached one after >= 1 cross-host hop,
``shed`` exhausted the host-failover budget and surfaced as an error
to the caller.  A request is never silently dropped between tiers —
chaos campaigns assert ``accounted`` after crashing a whole host.

Cross-host hops consult the seeded ``mesh.host_unreachable`` fault
site, so a campaign can also drop individual hops deterministically.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from .. import faults, telemetry
from ..kernel.balancer import MemberPool, NoBackendAvailable
from ..telemetry import trace
from .host import Host, MeshError
from .ring import HashRing

ROUTING_MODES = ("spread", "hash")


class Frontend:
    """Routes requests across mesh hosts; never loses one silently."""

    def __init__(
        self,
        hosts: list[Host],
        mode: str = "spread",
        ring_replicas: int = 8,
        host_failover_budget: int = 1,
    ):
        if mode not in ROUTING_MODES:
            raise MeshError(
                f"unknown routing mode {mode!r}; use one of {ROUTING_MODES}"
            )
        if not hosts:
            raise MeshError("a mesh frontend needs at least one host")
        self.mode = mode
        self.hosts = {host.index: host for host in hosts}
        self.pool = MemberPool(
            label="mesh frontend",
            backends=sorted(self.hosts),
            failover_budget=host_failover_budget,
        )
        self.ring = HashRing(ring_replicas, shards=sorted(self.hosts))
        #: the accounting identity: issued == served + failed_over + shed
        self.issued = 0
        self.served = 0
        self.failed_over = 0
        self.shed = 0

    # ------------------------------------------------------------------
    # host state

    def mark_host_down(self, index: int) -> None:
        if index not in self.pool.down:
            self.pool.mark_down(index)
            host = self.hosts[index]
            telemetry.emit(
                "mesh", "host-down",
                clock_ns=host.kernel.clock_ns, labels={"shard": host.name},
            )

    def mark_host_up(self, index: int) -> None:
        if index in self.pool.down:
            self.pool.mark_up(index)
            host = self.hosts[index]
            telemetry.emit(
                "mesh", "host-up",
                clock_ns=host.kernel.clock_ns, labels={"shard": host.name},
            )

    @property
    def down_hosts(self) -> list[int]:
        return sorted(self.pool.down)

    # ------------------------------------------------------------------
    # candidate ordering

    def _candidates(self, key: str | None) -> Iterator[Host]:
        """Shards to try, in policy order, skipping known-down hosts."""
        if self.mode == "hash":
            if key is None:
                raise MeshError("hash routing needs a key= on every dispatch")
            for index in self.ring.successors(key):
                if index not in self.pool.down:
                    yield self.hosts[index]
        else:
            while True:
                yield self.hosts[self.pool.pick(lambda index: True)]

    def shard_for(self, key: str) -> Host:
        """The live shard owning ``key`` (hash mode only)."""
        if self.mode != "hash":
            raise MeshError("shard_for() is only meaningful under hash routing")
        return self.hosts[self.ring.shard_for(key, down=self.pool.down)]

    # ------------------------------------------------------------------
    # dispatch

    def dispatch(self, request: Callable[[Host], bool], key: str | None = None) -> bool:
        """Route one request to a shard; returns the request's result.

        ``request(host)`` runs against the chosen shard (normally a
        connect to its intra-host frontend port).  A hop that raises
        :class:`NoBackendAvailable` — the whole shard has nothing
        serving — marks the host down and fails over to the next
        candidate, bounded by the host-failover budget; exhausting the
        budget **sheds** the request (re-raised to the caller, counted).
        The seeded ``mesh.host_unreachable`` site can drop any single
        hop without marking the host down (a transient partition, not a
        dead machine).
        """
        self.issued += 1
        hops = 0
        candidates = self._candidates(key)
        last_error: Exception | None = None
        primary: str | None = None
        while hops <= self.pool.failover_budget:
            try:
                host = next(candidates)
            except (StopIteration, NoBackendAvailable) as exc:
                last_error = exc
                break
            if primary is None:
                primary = host.name
            try:
                # each leg is timed on the *serving host's* kernel clock
                # (the only clock its guest work advances); a leg that
                # fails with a routing error is attributed as a paid hop
                with trace.leg_span(
                    "mesh.hop",
                    clock=(lambda kernel=host.kernel: kernel.clock_ns),
                    shard=host.name,
                    hop=hops,
                ):
                    faults.trip("mesh.host_unreachable", detail=host.name)
                    # the intra-host leg (balancer dispatch, app service)
                    # emits under the shard's label
                    with telemetry.label_scope(shard=host.name):
                        result = request(host)
            except NoBackendAvailable as exc:
                # nothing serving on that whole shard: dead machine
                self.mark_host_down(host.index)
                self.pool.note_failover(host.index)
                telemetry.count("mesh_failover_total", shard=host.name)
                telemetry.emit(
                    "mesh", "failover",
                    clock_ns=host.kernel.clock_ns,
                    labels={"shard": host.name}, detail=str(exc),
                )
                last_error = exc
                hops += 1
                continue
            except faults.InjectedFault as fault:
                # one dropped hop, not a dead host: retry elsewhere but
                # leave the host's frontend state alone
                self.pool.note_failover(host.index)
                telemetry.count("mesh_failover_total", shard=host.name)
                last_error = fault
                hops += 1
                continue
            except Exception:
                # the request *reached* the shard and failed at the
                # application layer — delivery succeeded as far as the
                # mesh is concerned, so account it before re-raising
                self._account_delivery(host, hops)
                raise
            self._account_delivery(host, hops)
            return result
        self.shed += 1
        # shed requests keep their per-shard identity: attribute them to
        # the primary candidate (the shard that *would* have served) so
        # they do not vanish from per-shard breakdowns
        telemetry.count("mesh_shed_total", shard=primary or "none")
        trace.tag_outcome("shed")
        raise NoBackendAvailable(
            f"connection refused: mesh failover budget "
            f"({self.pool.failover_budget}) exhausted "
            f"(last error: {last_error!r})"
        )

    # ------------------------------------------------------------------
    # accounting

    def _account_delivery(self, host: Host, hops: int) -> None:
        self.pool.note_dispatch(host.index)
        telemetry.count("mesh_dispatch_total", shard=host.name)
        if hops == 0:
            self.served += 1
            trace.tag_outcome("served")
        else:
            self.failed_over += 1
            trace.tag_outcome("failed_over")

    @property
    def accounted(self) -> bool:
        """Every issued request landed in exactly one bucket."""
        return self.issued == self.served + self.failed_over + self.shed

    def stats(self) -> dict:
        return {
            "mode": self.mode,
            "issued": self.issued,
            "served": self.served,
            "failed_over": self.failed_over,
            "shed": self.shed,
            "accounted": self.accounted,
            "down_hosts": self.down_hosts,
            "dispatched": {
                self.hosts[index].name: total
                for index, total in sorted(self.pool.dispatched.items())
            },
            "failovers": {
                self.hosts[index].name: total
                for index, total in sorted(self.pool.failovers.items())
            },
            "ring": self.ring.to_dict() if self.mode == "hash" else None,
        }
