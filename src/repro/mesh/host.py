"""One mesh host: a kernel, its fleet, and its supervisor.

A :class:`Host` is the mesh's unit of failure and of scale: one
:class:`~repro.kernel.kernel.Kernel` (own virtual clock, own loopback
network, own process table) running one shard of the fleet behind that
kernel's intra-host balancer, self-healed by its own
:class:`~repro.fleet.FleetSupervisor`.  Everything the host does is
wrapped in ``telemetry.label_scope(shard=<name>)`` so every metric,
event, and span the shard emits carries its shard label — the mesh
controller's aggregated telemetry separates cleanly per host.

Whole-host failure (:meth:`crash`) kills every instance tree on the
kernel at once.  The listeners stay *orphaned* in the port table — the
intra-host balancer's stale view — so from the frontend tier the host
looks exactly like a dead machine whose NIC still answers ARP: picks
route to it until a dispatch bounces, which is the window the
cross-host failover exists for.
"""

from __future__ import annotations

from .. import telemetry
from ..fleet.controller import FleetController
from ..fleet.policy import FleetPolicy
from ..fleet.supervisor import FleetSupervisor, SupervisorEvent
from ..kernel.kernel import Kernel, KernelConfig
from .ring import stable_hash


class MeshError(RuntimeError):
    """Misuse of the mesh API (bad host, wrong lifecycle order)."""


class Host:
    """One kernel-sized shard of the mesh."""

    def __init__(
        self,
        index: int,
        app,
        policy: FleetPolicy,
        size: int,
        image_root: str = "/tmp/criu/mesh",
        config: KernelConfig | None = None,
    ):
        self.index = index
        self.name = f"host-{index}"
        self.kernel = Kernel(config)
        # skew each host's boot clock by a few microseconds so no two
        # kernels are bit-identical at spawn (deterministically, per
        # host name — never wall clock)
        self.kernel.clock_ns += stable_hash(self.name) % 10_000
        self.controller = FleetController(
            self.kernel,
            app,
            policy,
            size,
            image_root=f"{image_root.rstrip('/')}/{self.name}",
        )
        self.supervisor: FleetSupervisor | None = None

    # ------------------------------------------------------------------
    # lifecycle

    def spawn(self) -> None:
        """Boot this shard's fleet and attach its supervisor."""
        with telemetry.label_scope(shard=self.name):
            self.controller.spawn_fleet()
            self.supervisor = FleetSupervisor(self.controller)

    @property
    def spawned(self) -> bool:
        return bool(self.controller.instances)

    @property
    def frontend_port(self) -> int:
        return self.controller.frontend_port

    def crash(self) -> list[str]:
        """Whole-host failure: every instance tree dies at once.

        Listeners are left orphaned (stale balancer view), exactly like
        :meth:`Kernel.crash_process` does for a single instance.
        """
        crashed: list[str] = []
        with telemetry.label_scope(shard=self.name):
            for instance in self.controller.instances:
                if self.controller.alive(instance):
                    self.kernel.crash_process(instance.root_pid)
                    crashed.append(instance.name)
            telemetry.emit(
                "mesh", "host-crash",
                clock_ns=self.kernel.clock_ns,
                instances=list(crashed),
            )
            telemetry.count("mesh_host_crashes_total")
        return crashed

    # ------------------------------------------------------------------
    # health

    def routable(self) -> bool:
        """Can a frontend dispatch land on a live listener here?

        True when at least one in-rotation backend port has a bound,
        non-orphaned listener.  This is the *frontend's* notion of
        health — the host supervisor may well recover instances later,
        but until then dispatches must fail over to another shard.
        """
        if self.controller.pool is None:
            return False
        net = self.kernel.net
        return any(
            net._healthy_backend(port)
            for port in self.controller.pool.in_service()
        )

    def tick(self, force: bool = False) -> list[SupervisorEvent]:
        """One supervision pass, under this shard's telemetry scope."""
        if self.supervisor is None:
            raise MeshError(f"{self.name}: spawn() before tick()")
        with telemetry.label_scope(shard=self.name):
            return self.supervisor.tick(force=force)

    # ------------------------------------------------------------------
    # status

    def status(self) -> dict:
        status = self.controller.status()
        status["host"] = self.name
        status["clock_ns"] = self.kernel.clock_ns
        status["routable"] = self.routable()
        return status
