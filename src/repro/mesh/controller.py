"""DynaMesh control plane: N kernels, one fleet, one clock discipline.

:class:`MeshController` shards a fleet over ``policy.shards``
:class:`~repro.mesh.host.Host` objects — each a whole
:class:`~repro.kernel.kernel.Kernel` with its own virtual clock — and
fronts them with a :class:`~repro.mesh.frontend.Frontend`.

**The clock model is the whole point.**  Hosts are parallel machines:
a request served on host-0 must not advance host-1's clock, or the
mesh would be a time-sliced single machine and adding shards could
never raise throughput.  :class:`MeshClock` therefore duck-types the
one-kernel clock interface the workload driver uses:

* reading ``clock_ns`` returns the **max** over member kernels (mesh
  wall time = the furthest-ahead machine);
* writing it raises every *lagging* kernel to the written value (used
  by the driver's error nudge; never rewinds a kernel);
* the control plane (:meth:`tick`, :meth:`crash_host`, rollout steps)
  first **syncs the target kernel up to mesh time** — supervision and
  rollouts happen "now", not in the shard's past — while the data path
  never syncs anything.

So the scale-out benchmark falls out of the model: N shards serve a
fixed request count in ~1/N the mesh wall time, because each kernel
only accrues the cost of its own shard's requests.
"""

from __future__ import annotations

from .. import faults, telemetry
from ..fleet.apps import FleetApp, get_app
from ..fleet.drift import DriftDetector
from ..fleet.policy import FleetPolicy
from ..kernel.balancer import NetworkError, NoBackendAvailable
from ..kernel.kernel import Kernel, KernelConfig
from ..workloads import RedisClient
from .frontend import Frontend
from .host import Host, MeshError

__all__ = ["MeshClock", "MeshController", "inject_host_chaos"]


class MeshClock:
    """The mesh-wide clock facade over N independent kernel clocks.

    Implements exactly the surface
    :func:`~repro.workloads.run_request_timeline` needs from a
    ``Kernel`` (``clock_ns`` read/write and ``config``), so the same
    driver measures a mesh without modification.
    """

    def __init__(self, kernels: list[Kernel]):
        if not kernels:
            raise MeshError("a mesh clock needs at least one kernel")
        self.kernels = list(kernels)
        self.config: KernelConfig = self.kernels[0].config

    @property
    def clock_ns(self) -> int:
        return max(kernel.clock_ns for kernel in self.kernels)

    @clock_ns.setter
    def clock_ns(self, value: int) -> None:
        for kernel in self.kernels:
            if kernel.clock_ns < value:
                kernel.clock_ns = value

    def sync(self, kernel: Kernel) -> int:
        """Raise one member kernel to mesh time (control-plane actions)."""
        now = self.clock_ns
        if kernel.clock_ns < now:
            kernel.clock_ns = now
        return kernel.clock_ns


class MeshController:
    """Spawn, route, supervise, and customize a sharded fleet."""

    def __init__(
        self,
        app: str | FleetApp,
        policy: FleetPolicy,
        size_per_shard: int,
        image_root: str = "/tmp/criu/mesh",
        routing: str | None = None,
        config: KernelConfig | None = None,
    ):
        self.app = get_app(app) if isinstance(app, str) else app
        self.policy = policy
        self.size_per_shard = size_per_shard
        #: kvstore traffic is keyed, so it defaults to the hash ring;
        #: stateless httpds default to plain L7 spread
        self.routing = routing or (
            "hash" if self.app.name == "redis" else "spread"
        )
        self.hosts = [
            Host(index, self.app, policy, size_per_shard, image_root, config)
            for index in range(policy.shards)
        ]
        self.clock = MeshClock([host.kernel for host in self.hosts])
        self.frontend: Frontend | None = None
        self.drift: dict[str, DriftDetector] = {}
        #: persistent kvstore connections, one per (host, port).  The
        #: guest reaps closed client slots lazily (one poll round per
        #: EOF, and only while something drives its kernel), so a
        #: fresh-connection-per-request pattern slowly fills its client
        #: table with unreaped EOF slots until accepts bounce.  Reusing
        #: one long-lived connection per target sidesteps that and
        #: matches the client's design: it survives rewrite cycles via
        #: TCP repair and reconnects by itself when a crash severs it.
        self._clients: dict[tuple[int, int], RedisClient] = {}

    # ------------------------------------------------------------------
    # lifecycle

    def spawn_mesh(self) -> Frontend:
        """Boot every shard, align clocks, and open the frontend tier."""
        if self.frontend is not None:
            raise MeshError("mesh already spawned")
        for host in self.hosts:
            host.spawn()
        # staging costs differ per host; start the serving epoch aligned
        self.clock.clock_ns = self.clock.clock_ns
        self.frontend = Frontend(
            self.hosts,
            mode=self.routing,
            ring_replicas=self.policy.ring_replicas,
            host_failover_budget=self.policy.host_failover_budget,
        )
        self.drift = {
            host.name: DriftDetector(host.controller) for host in self.hosts
        }
        return self.frontend

    def host(self, ref: int | str) -> Host:
        for host in self.hosts:
            if host.index == ref or host.name == ref:
                return host
        raise MeshError(f"no mesh host {ref!r}")

    # ------------------------------------------------------------------
    # chaos

    def crash_host(self, ref: int | str) -> list[str]:
        """Whole-host failure at mesh time; returns crashed instances.

        The frontend is *not* told: like a real machine loss, the mesh
        finds out when a dispatch bounces (cross-host failover) or when
        the next :meth:`tick` heartbeats the shard.
        """
        host = self.host(ref)
        self.clock.sync(host.kernel)
        return host.crash()

    # ------------------------------------------------------------------
    # supervision

    def tick(self, force: bool = False) -> dict[str, int]:
        """One mesh-wide supervision pass; events generated per shard.

        Each shard is synced up to mesh time and heartbeat; afterwards
        any host the frontend marked down is re-checked — the shard
        supervisor recovers instances from their committed images, and
        once a live listener is back the host rejoins the frontend
        tier.
        """
        events: dict[str, int] = {}
        for host in self.hosts:
            self.clock.sync(host.kernel)
            events[host.name] = len(host.tick(force=force))
        assert self.frontend is not None
        for index in list(self.frontend.down_hosts):
            if self.hosts[index].routable():
                self.frontend.mark_host_up(index)
        return events

    @property
    def settled(self) -> bool:
        """Every shard's supervisor is settled and routable."""
        return all(
            host.supervisor is not None
            and host.supervisor.settled
            and host.routable()
            for host in self.hosts
        )

    # ------------------------------------------------------------------
    # data path

    def _client(self, host: Host, port: int) -> RedisClient:
        """The persistent connection to ``port`` on ``host``."""
        client = self._clients.get((host.index, port))
        if client is None:
            client = RedisClient(host.kernel, port)
            self._clients[(host.index, port)] = client
        return client

    def wanted_request(self, key: str | None = None) -> bool:
        """One unit of service through the frontend tier.

        Under hash routing the request is a keyed kvstore round-trip
        (GET against the owning shard's intra-host frontend — a miss is
        still *service*); under spread it is the app adapter's wanted
        request.  Never syncs clocks: the data path is parallel.
        """
        assert self.frontend is not None
        if self.routing == "hash":
            if key is None:
                raise MeshError("hash routing needs a key= per request")

            def request(host: Host) -> bool:
                self._client(host, host.frontend_port).get(key)
                return True

            return self.frontend.dispatch(request, key=key)
        return self.frontend.dispatch(
            lambda host: self.app.wanted_request(host.kernel, host.frontend_port)
        )

    def store(self, key: str, value: str) -> bool:
        """Write ``key`` to every live replica on its owning shard.

        Within a shard the kvstore instances form a leaderless replica
        set: writes fan out to all live instances (so any in-rotation
        replica can serve the shard's arc), reads go through the
        intra-host balancer to any one of them.  Used to seed data
        before a rollout removes the write path (``SET`` is exactly the
        feature the canonical mesh policy disables).
        """
        assert self.frontend is not None
        if self.routing != "hash":
            raise MeshError("store() is only meaningful under hash routing")

        def request(host: Host) -> bool:
            wrote = False
            for instance in host.controller.instances:
                if not host.controller.alive(instance):
                    continue
                wrote = self._client(host, instance.port).set(key, value) or wrote
            if not wrote:
                raise NoBackendAvailable(
                    f"connection refused: no live replica on {host.name} "
                    f"accepted key {key!r}"
                )
            return True

        return self.frontend.dispatch(request, key=key)

    def probe_replicas(self, command: str = "SET __probe__ 1") -> int:
        """Issue ``command`` once to every live replica, on every shard.

        Bypasses the frontend tier entirely — no ``issued`` accounting —
        so control-plane sweeps (e.g. a trace campaign's heal sweep,
        which drives one SET into each replica to heal every shelved
        block at a known clock offset) do not perturb the request-count
        identity the data path is measured under.  Returns the number of
        replicas probed.
        """
        probed = 0
        for host in self.hosts:
            for instance in host.controller.instances:
                if not host.controller.alive(instance):
                    continue
                try:
                    self._client(host, instance.port).command(command)
                except NetworkError:
                    continue  # a dying replica is the supervisor's job
                probed += 1
        return probed

    def fetch(self, key: str) -> str | None:
        """Read ``key`` from its owning shard (data-locality checks)."""
        assert self.frontend is not None
        if self.routing != "hash":
            raise MeshError("fetch() is only meaningful under hash routing")
        box: list[str | None] = [None]

        def request(host: Host) -> bool:
            box[0] = self._client(host, host.frontend_port).get(key)
            return True

        self.frontend.dispatch(request, key=key)
        return box[0]

    # ------------------------------------------------------------------
    # status

    def status(self) -> dict:
        """Mesh-wide operator overview: frontend + every shard."""
        assert self.frontend is not None
        shards = {}
        for host in self.hosts:
            with telemetry.label_scope(shard=host.name):
                shards[host.name] = host.status()
        return {
            "app": self.app.name,
            "routing": self.routing,
            "shards": self.policy.shards,
            "size_per_shard": self.size_per_shard,
            "clock_ns": self.clock.clock_ns,
            "settled": self.settled,
            "frontend": self.frontend.stats(),
            "hosts": shards,
        }


# ----------------------------------------------------------------------
# seeded chaos entry point


def inject_host_chaos(mesh: MeshController) -> list[str]:
    """Visit ``mesh.host_crash`` once per routable host, in index order.

    The mesh analogue of :func:`repro.fleet.inject_chaos`: call it from
    timeline events *between* mesh ticks, so the frontend's view is
    stale until a dispatch bounces — the window cross-host failover
    exists for.  Returns the names of hosts crashed.
    """
    crashed: list[str] = []
    for host in mesh.hosts:
        if not host.routable():
            continue
        fault = faults.check("mesh.host_crash", detail=host.name)
        if fault is not None:
            mesh.clock.sync(host.kernel)
            host.crash()
            crashed.append(host.name)
    return crashed
