"""DynaCut core: coverage analysis, trace diffing, process rewriting."""

from .covgraph import CoverageGraph
from .tracediff import (
    DEFAULT_LIBRARY_SUFFIXES,
    FeatureBlocks,
    TraceDiff,
    tracediff,
)
from .initphase import InitPhaseReport, init_only_blocks
from .sighandler import (
    HANDLER_LIB_NAME,
    HANDLER_SYMBOL,
    POLICY_REDIRECT,
    POLICY_TERMINATE,
    POLICY_VERIFY,
    RESTORER_SYMBOL,
    build_handler_library,
)
from .rewriter import (
    HandlerPlacement,
    ImageRewriter,
    RewriteError,
    RewriteStats,
)
from .dynacut import (
    BlockMode,
    DynaCut,
    RewriteReport,
    ShelvedBlock,
    TrapPolicy,
)
from .transaction import (
    CustomizationAborted,
    JournalEntry,
    RollbackFailed,
    TxJournal,
)
from .baselines import (
    DebloatResult,
    apply_debloat,
    chisel_debloat,
    razor_debloat,
)
from .verifier import (
    VerificationReport,
    falsely_removed_blocks,
    read_verifier_log,
    refine_block_list,
    validate_removal,
)
from .autodetect import AutoNudgeTracer, autodetect_init_phase
from .syscall_filter import (
    ALWAYS_ALLOWED,
    SENSITIVE,
    dropped_syscalls,
    serving_allowlist,
    specialization_report,
)

__all__ = [
    "ALWAYS_ALLOWED",
    "AutoNudgeTracer",
    "autodetect_init_phase",
    "BlockMode",
    "SENSITIVE",
    "dropped_syscalls",
    "serving_allowlist",
    "specialization_report",
    "CoverageGraph",
    "CustomizationAborted",
    "DEFAULT_LIBRARY_SUFFIXES",
    "DebloatResult",
    "DynaCut",
    "FeatureBlocks",
    "HANDLER_LIB_NAME",
    "HANDLER_SYMBOL",
    "HandlerPlacement",
    "ImageRewriter",
    "InitPhaseReport",
    "JournalEntry",
    "POLICY_REDIRECT",
    "POLICY_TERMINATE",
    "POLICY_VERIFY",
    "RESTORER_SYMBOL",
    "RewriteError",
    "RewriteReport",
    "RewriteStats",
    "RollbackFailed",
    "ShelvedBlock",
    "TraceDiff",
    "TxJournal",
    "TrapPolicy",
    "VerificationReport",
    "apply_debloat",
    "build_handler_library",
    "chisel_debloat",
    "falsely_removed_blocks",
    "init_only_blocks",
    "razor_debloat",
    "read_verifier_log",
    "refine_block_list",
    "validate_removal",
    "tracediff",
]
