"""Host-side feature validation (§3.2.3).

When DynaCut runs with :attr:`TrapPolicy.VERIFY`, the injected library
restores falsely removed blocks in place and logs their addresses in
an in-library ring buffer.  This module reads that buffer back from the
live (restored) process so an operator can

* confirm the customized process still behaves correctly, and
* feed the falsely classified blocks back into the block lists
  (removing them from the "undesired" set) before the next rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..binfmt.self_format import SelfImage
from ..kernel.kernel import Kernel
from ..kernel.process import Process
from ..kernel.signals import Signal
from ..tracing.drcov import BlockRecord
from . import sighandler


@dataclass(frozen=True)
class VerificationReport:
    """Falsely-removed code observed by the verifier library."""

    pid: int
    trapped_addresses: tuple[int, ...]

    @property
    def clean(self) -> bool:
        """True when no supposedly-removed block was ever reached."""
        return not self.trapped_addresses


def _handler_base(proc: Process, library: SelfImage) -> int | None:
    action = proc.sigactions.get(Signal.SIGTRAP)
    if action is None or not action.handler:
        return None
    return action.handler - library.symbol_address(sighandler.HANDLER_SYMBOL)


def read_verifier_log(kernel: Kernel, proc: Process) -> VerificationReport:
    """Read the verifier ring buffer out of a live process's memory."""
    libc = kernel.binaries.get("libc.so")
    if libc is None:
        raise RuntimeError("libc.so not registered")
    library = sighandler.build_handler_library(libc)
    base = _handler_base(proc, library)
    if base is None:
        return VerificationReport(proc.pid, ())
    count_addr = base + library.symbol_address(sighandler.LOG_COUNT_SYMBOL)
    table_addr = base + library.symbol_address(sighandler.LOG_TABLE_SYMBOL)
    count = int.from_bytes(proc.memory.read_raw(count_addr, 8), "little")
    count = min(count, sighandler.LOG_CAPACITY)
    addresses = tuple(
        int.from_bytes(proc.memory.read_raw(table_addr + 8 * i, 8), "little")
        for i in range(count)
    )
    return VerificationReport(proc.pid, addresses)


def falsely_removed_blocks(
    report: VerificationReport,
    candidate_blocks: list[BlockRecord],
    module_base: int = 0,
) -> list[BlockRecord]:
    """Map trapped addresses back to the blocks that were misclassified."""
    trapped = set(report.trapped_addresses)
    return [
        block for block in candidate_blocks
        if module_base + block.offset in trapped
    ]


def refine_block_list(
    blocks: list[BlockRecord],
    report: VerificationReport,
    module_base: int = 0,
) -> list[BlockRecord]:
    """Drop misclassified blocks from a removal list (the feedback loop)."""
    false = set(falsely_removed_blocks(report, blocks, module_base))
    return [block for block in blocks if block not in false]


def validate_removal(
    dynacut,
    root_pid: int,
    module: str,
    blocks: list[BlockRecord],
    exercise,
    max_rounds: int = 3,
) -> tuple[list[BlockRecord], list[VerificationReport]]:
    """The full §3.2.3 workflow: verify, refine, repeat until clean.

    Removes ``blocks`` in verify mode, runs ``exercise()`` (the
    validation workload), reads back the falsely-removed log, drops the
    misclassified blocks, and repeats.  The verifier already healed the
    running process, so each round only re-applies the *refined* list.
    Returns the final (clean) block list and the per-round reports.
    """
    kernel = dynacut.kernel
    current = list(blocks)
    reports: list[VerificationReport] = []
    for __ in range(max_rounds):
        dynacut.remove_init_code(root_pid, module, current, verify=True)
        proc = dynacut.restored_process(root_pid)
        exercise()
        report = read_verifier_log(kernel, proc)
        reports.append(report)
        if report.clean:
            break
        current = refine_block_list(current, report)
        if not current:
            break
    return current, reports
