"""Temporally-unused (initialization-only) code identification.

Reproduces §3.1's semi-automatic profiling: the user observes that the
server has finished initializing (the ready line on stdout, or just
waiting a while), nudges the tracer to dump ``CovG_init``, lets the
program serve its workload, and collects ``CovG_serving``.  A block is
initialization-only iff::

    blk ∈ CovG_init  and  blk ∉ CovG_serving

The identification is per-module; by default only the application
binary's blocks are reported (DynaCut targets application code;
library customization is future work in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tracing.drcov import BlockRecord, CoverageTrace
from .covgraph import CoverageGraph, bytes_to_ranges


@dataclass(frozen=True)
class InitPhaseReport:
    """Init-only code plus the phase statistics Figure 9 reports.

    ``init_only`` holds maximal contiguous byte ranges (what the
    rewriter wipes); ``removed_blocks`` holds the executed basic blocks
    whose entry byte is init-only (Figure 9's block counts).
    """

    module: str
    init_only: tuple[BlockRecord, ...]       # contiguous removable ranges
    removed_blocks: tuple[BlockRecord, ...]  # init trace blocks removed
    init_executed: int          # blocks executed during init (module only)
    serving_executed: int       # blocks executed while serving (module only)
    total_executed: int         # deduplicated blocks across both phases

    @property
    def removable_count(self) -> int:
        return len(self.removed_blocks)

    @property
    def removable_fraction(self) -> float:
        """Fraction of *executed* blocks that are init-only (Fig. 9's %)"""
        if self.total_executed == 0:
            return 0.0
        return self.removable_count / self.total_executed

    def removable_bytes(self) -> int:
        return sum(block.size for block in self.init_only)


def init_only_blocks(
    init_trace: CoverageTrace,
    serving_trace: CoverageTrace,
    module: str,
) -> InitPhaseReport:
    """Compute the init-only code of ``module``.

    The difference is taken at **byte granularity**: dynamic traces
    record entry-point-sensitive sub-blocks, so the same live bytes can
    show up under different ``(start, size)`` records in the two
    phases.  A byte is removable iff it executed during init and never
    during serving; contiguous removable bytes are reported as ranges
    (the units the rewriter wipes).
    """
    init_graph = CoverageGraph.from_traces(init_trace).restrict_to_module(module)
    serving_graph = CoverageGraph.from_traces(serving_trace).restrict_to_module(
        module
    )
    init_bytes = init_graph.covered_bytes(module)
    serving_bytes = serving_graph.covered_bytes(module)
    removable = init_bytes - serving_bytes
    init_only = tuple(
        BlockRecord(module, start, size)
        for start, size in bytes_to_ranges(removable)
    )
    removed_blocks = tuple(
        block for block in init_graph.order if block.offset in removable
    )
    total = init_graph.union(serving_graph)
    return InitPhaseReport(
        module=module,
        init_only=init_only,
        removed_blocks=removed_blocks,
        init_executed=len(init_graph),
        serving_executed=len(serving_graph),
        total_executed=len(total),
    )
