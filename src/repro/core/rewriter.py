"""The process rewriter: static mutation of checkpoint images.

This is DynaCut's central mechanism (§3.2.1): all customization happens
on the *static* process image between dump and restore — never on live
memory — which is what makes the transformation race-free.

Supported operations, mirroring the paper's extended CRIT:

* replace the first byte of a basic block (or every byte of it) with
  ``int3``;
* restore a block's original bytes from the pristine binary;
* unmap whole code pages (drop the VMA and its dumped pages);
* insert a position-independent shared library: place segments at a
  free base, apply its RELATIVE relocations, resolve its GOT imports
  against the *target's* libc mapping (PLT relocation against the
  runtime libc base, §3.3), and add the pages to the image;
* update the SIGTRAP sigaction in the core image to point into the
  injected library, with the library's own restorer.

Multi-process images (Nginx master + worker) are handled by applying
each operation to every process whose memory maps the target module.

Every mutation advances the kernel's virtual clock through the CRIU
cost model, which is where Figures 6 and 7's time breakdowns come from.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import faults
from ..binfmt.self_format import DynRelocType, PAGE_SIZE, SelfImage, page_align
from ..isa.instructions import INT3_OPCODE
from ..kernel.kernel import Kernel
from ..kernel.signals import Signal
from ..tracing.drcov import BlockRecord
from ..criu.costmodel import CriuCostModel, DEFAULT_COST_MODEL
from ..criu.images import CheckpointImage, ImageError, ProcessImage, VmaEntry
from . import sighandler
from .sighandler import (
    HANDLER_SYMBOL,
    LOG_CAPACITY,
    ORIG_CAPACITY,
    POLICY_REDIRECT,
    POLICY_TERMINATE,
    POLICY_VERIFY,
    REDIRECT_CAPACITY,
    RESTORER_SYMBOL,
)

#: default placement region for injected libraries
_INJECT_HINT = 0x7D00_0000_0000
_INJECT_STRIDE = 0x0100_0000


class RewriteError(RuntimeError):
    pass


@dataclass
class RewriteStats:
    """What a rewrite session did, and what it cost (virtual ns)."""

    blocks_patched: int = 0
    blocks_restored: int = 0
    bytes_wiped: int = 0
    pages_unmapped: int = 0
    libraries_injected: int = 0
    patch_ns: int = 0
    inject_ns: int = 0
    unmap_ns: int = 0

    def merge(self, other: "RewriteStats") -> None:
        self.blocks_patched += other.blocks_patched
        self.blocks_restored += other.blocks_restored
        self.bytes_wiped += other.bytes_wiped
        self.pages_unmapped += other.pages_unmapped
        self.libraries_injected += other.libraries_injected
        self.patch_ns += other.patch_ns
        self.inject_ns += other.inject_ns
        self.unmap_ns += other.unmap_ns


@dataclass
class HandlerPlacement:
    """Where the trap-handler library lives in one process image."""

    pid: int
    base: int

    def symbol_address(self, library: SelfImage, name: str) -> int:
        return self.base + library.symbol_address(name)


class ImageRewriter:
    """Rewrites one :class:`CheckpointImage` in place."""

    def __init__(
        self,
        kernel: Kernel,
        checkpoint: CheckpointImage,
        cost_model: CriuCostModel = DEFAULT_COST_MODEL,
    ):
        self.kernel = kernel
        self.checkpoint = checkpoint
        self.cost_model = cost_model
        self.stats = RewriteStats()
        #: trap policies configured this session (DynaLint consults this
        #: to decide whether the post-rewrite lint should run)
        self.policies_installed: set[int] = set()

    # ------------------------------------------------------------------
    # module resolution

    def module_base(self, image: ProcessImage, module: str) -> int | None:
        """Load base of ``module`` in one process image, from its mm."""
        base: int | None = None
        for vma in image.mm.vmas:
            if vma.file_path != module:
                continue
            candidate = vma.start - vma.file_offset
            if base is None or candidate < base:
                base = candidate
        return base

    def images_mapping(self, module: str) -> list[tuple[ProcessImage, int]]:
        """Every (process image, module base) pair that maps ``module``."""
        out = []
        for image in self.checkpoint.processes:
            base = self.module_base(image, module)
            if base is not None:
                out.append((image, base))
        if not out:
            raise RewriteError(f"no process in the image maps module {module!r}")
        return out

    def _binary(self, module: str) -> SelfImage:
        binary = self.kernel.binaries.get(module)
        if binary is None:
            raise RewriteError(f"binary {module!r} not registered with the kernel")
        return binary

    # ------------------------------------------------------------------
    # code patching

    def block_entry_int3(self, module: str, blocks: list[BlockRecord]) -> int:
        """Replace the first byte of each block with ``int3``.

        The paper's default blocking mode: one byte per block is enough
        to make the block un-enterable through normal control flow.
        Returns the number of patch sites written.
        """
        patched = 0
        for image, base in self.images_mapping(module):
            for block in blocks:
                self._write_code(image, base + block.offset, bytes([INT3_OPCODE]))
                patched += 1
        self.stats.blocks_patched += patched
        self._charge_patch(patched, 0)
        return patched

    def wipe_blocks(self, module: str, blocks: list[BlockRecord]) -> int:
        """Overwrite every byte of each block with ``int3``.

        The aggressive mode: wiped blocks contain no reusable gadget
        bytes, at the price of a costlier future restore.
        """
        wiped = 0
        for image, base in self.images_mapping(module):
            for block in blocks:
                self._write_code(
                    image, base + block.offset, bytes([INT3_OPCODE]) * block.size
                )
                wiped += block.size
        self.stats.blocks_patched += len(blocks)
        self.stats.bytes_wiped += wiped
        self._charge_patch(len(blocks), wiped)
        return wiped

    def restore_blocks(self, module: str, blocks: list[BlockRecord]) -> int:
        """Write back the original bytes of each block (feature re-enable)."""
        binary = self._binary(module)
        restored = 0
        for image, base in self.images_mapping(module):
            for block in blocks:
                original = binary.read_bytes(block.offset, block.size)
                self._write_code(image, base + block.offset, original)
                restored += 1
        self.stats.blocks_restored += restored
        self._charge_patch(restored, 0)
        return restored

    def _write_code(self, image: ProcessImage, address: int, data: bytes) -> None:
        faults.trip(
            "rewriter.write_code", detail=f"pid={image.pid} @{address:#x}"
        )
        try:
            image.write_memory(address, data)
        except ImageError as exc:
            raise RewriteError(
                f"cannot patch {address:#x}: {exc}. Code pages are only "
                "present in the image when the checkpoint was taken with "
                "dump_exec_pages=True (DynaCut's CRIU modification)."
            ) from exc

    def _charge_patch(self, blocks: int, wiped_bytes: int) -> None:
        cost = self.cost_model.patch_cost(blocks, wiped_bytes)
        self.stats.patch_ns += cost
        self.kernel.clock_ns += cost

    # ------------------------------------------------------------------
    # page unmapping

    def unmap_module_range(self, module: str, offset: int, size: int) -> int:
        """Unmap whole pages of ``module`` (the large-feature policy).

        ``offset`` must be page aligned; returns pages dropped across
        all processes.
        """
        if offset % PAGE_SIZE:
            raise RewriteError(f"unmap offset {offset:#x} is not page aligned")
        size = page_align(size)
        dropped_total = 0
        for image, base in self.images_mapping(module):
            start = base + offset
            end = start + size
            dropped_total += image.drop_range(start, end)
            new_vmas: list[VmaEntry] = []
            for vma in image.mm.vmas:
                if vma.end <= start or vma.start >= end:
                    new_vmas.append(vma)
                    continue
                if vma.start < start:
                    new_vmas.append(
                        VmaEntry(
                            vma.start, start, vma.perms, vma.file_path,
                            vma.file_offset, vma.tag,
                        )
                    )
                if vma.end > end:
                    delta = end - vma.start
                    new_vmas.append(
                        VmaEntry(
                            end, vma.end, vma.perms, vma.file_path,
                            vma.file_offset + delta, vma.tag,
                        )
                    )
            image.mm.vmas = sorted(new_vmas, key=lambda v: v.start)
        pages = size // PAGE_SIZE
        self.stats.pages_unmapped += pages
        cost = self.cost_model.unmap_vma_ns * max(1, pages)
        self.stats.unmap_ns += cost
        self.kernel.clock_ns += cost
        return dropped_total

    # ------------------------------------------------------------------
    # live library re-randomization (§5 / Shuffler direction)

    def rerandomize_library(
        self, module: str, new_base: int | None = None
    ) -> dict[int, tuple[int, int]]:
        """Move a shared library to a new base in every process image.

        The §5 "live code re-randomization" direction, implemented at
        the image level: the library's VMAs and dumped pages are
        relabelled, its own RELATIVE relocations and every importer's
        GLOB_DAT sites are re-resolved against the new base, and stale
        pointers in volatile state (registers, sigactions, stack words
        that look like old-range pointers — the conservative scan
        Shuffler-style systems use) are rebased.  After restore, code
        addresses an attacker leaked before the rewrite are dead.

        Returns ``{pid: (old_base, new_base)}``.
        """
        library = self._binary(module)
        span = page_align(max(seg.end for seg in library.segments))
        results: dict[int, tuple[int, int]] = {}
        for image, old_base in self.images_mapping(module):
            base = new_base if new_base is not None else self._find_free_base(
                image, span
            )
            delta = base - old_base
            if delta == 0:
                results[image.pid] = (old_base, base)
                continue
            old_lo, old_hi = old_base, old_base + span

            # 1. relabel the VMAs and their dumped pages
            for vma in image.mm.vmas:
                if vma.file_path == module:
                    vma.start += delta
                    vma.end += delta
            image.mm.vmas.sort(key=lambda v: v.start)
            image.relocate_page_range(old_lo, old_hi, delta)

            # 2. the library's own position-dependent words
            for reloc in library.dynamic_relocs:
                site = base + reloc.vaddr
                if reloc.type is DynRelocType.RELATIVE:
                    if image.has_dumped(site):
                        image.write_memory(
                            site, ((base + reloc.addend) & ((1 << 64) - 1))
                            .to_bytes(8, "little"),
                        )
                # GLOB_DAT sites hold pointers into *other* modules:
                # unchanged by this move

            # 3. re-resolve every importer's references to the library
            exports = {
                name: base + info.vaddr
                for name, info in library.exports().items()
            }
            self._repoint_importers(image, module, exports)

            # 4. rebase volatile pointers: registers, sigactions, stack
            self._rebase_range(image, old_lo, old_hi, delta)
            results[image.pid] = (old_base, base)

        cost = self.cost_model.library_injection_cost()
        self.stats.inject_ns += cost
        self.kernel.clock_ns += cost
        return results

    def _repoint_importers(
        self, image: ProcessImage, moved: str, exports: dict[str, int]
    ) -> None:
        """Rewrite GLOB_DAT sites (GOT slots, movi fields) in every other
        mapped module that imports symbols from the moved library."""
        seen: set[str] = set()
        for vma in list(image.mm.vmas):
            name = vma.file_path
            if not name or name == moved or name in seen:
                continue
            seen.add(name)
            importer = self.kernel.binaries.get(name)
            if importer is None:
                continue
            importer_base = vma.start - vma.file_offset
            for reloc in importer.dynamic_relocs:
                if reloc.type is not DynRelocType.GLOB_DAT:
                    continue
                target = exports.get(reloc.symbol)
                if target is None:
                    continue
                site = importer_base + reloc.vaddr
                if image.has_dumped(site):
                    image.write_memory(
                        site, ((target + reloc.addend) & ((1 << 64) - 1))
                        .to_bytes(8, "little"),
                    )
        # the injected trap-handler library (anonymous VMAs) also imports
        # from libc; re-resolve its GOT through its sigaction-derived base
        libc = self.kernel.binaries.get("libc.so")
        if libc is None:
            return
        handler_lib = sighandler.build_handler_library(libc)
        handler_base = self.existing_handler_base(image, handler_lib)
        if handler_base is None:
            return
        for reloc in handler_lib.dynamic_relocs:
            if reloc.type is not DynRelocType.GLOB_DAT:
                continue
            target = exports.get(reloc.symbol)
            if target is None:
                continue
            site = handler_base + reloc.vaddr
            if image.has_dumped(site):
                image.write_memory(
                    site, ((target + reloc.addend) & ((1 << 64) - 1))
                    .to_bytes(8, "little"),
                )

    def _rebase_range(
        self, image: ProcessImage, old_lo: int, old_hi: int, delta: int
    ) -> None:
        """Rebase pointers into [old_lo, old_hi) held in volatile state."""
        regs = image.core.regs
        if old_lo <= regs.rip < old_hi:
            regs.rip += delta
        for index, value in enumerate(regs.gpr):
            if old_lo <= value < old_hi:
                regs.gpr[index] = value + delta
        for action in image.core.sigactions:
            if old_lo <= action.handler < old_hi:
                action.handler += delta
            if old_lo <= action.restorer < old_hi:
                action.restorer += delta
        # conservative aligned-word scan of the stack (Shuffler-style)
        for vma in image.mm.vmas:
            if vma.tag != "stack":
                continue
            cursor = vma.start
            while cursor < vma.end:
                if not image.has_dumped(cursor):
                    cursor += 8
                    continue
                word = int.from_bytes(image.read_memory(cursor, 8), "little")
                if old_lo <= word < old_hi:
                    image.write_memory(
                        cursor, (word + delta).to_bytes(8, "little")
                    )
                cursor += 8

    # ------------------------------------------------------------------
    # syscall filtering (temporal specialization, §5 / Ghavamnia et al.)

    def set_syscall_filter(self, allowed: set[int] | None) -> None:
        """Install (or clear) a seccomp-style allow-list in every core image.

        Restored processes raise SIGSYS on any syscall outside
        ``allowed`` — the dynamic enable/disable of seccomp filtering
        the paper's discussion section proposes building on process
        rewriting.
        """
        for image in self.checkpoint.processes:
            image.core.syscall_filter = (
                sorted(allowed) if allowed is not None else None
            )
        self.kernel.clock_ns += self.cost_model.set_sigaction_ns

    # ------------------------------------------------------------------
    # library injection + trap handler configuration

    def existing_handler_base(
        self, image: ProcessImage, library: SelfImage
    ) -> int | None:
        """Base of an already-injected handler library, if any."""
        for entry in image.core.sigactions:
            if entry.signal == int(Signal.SIGTRAP) and entry.handler:
                return entry.handler - library.symbol_address(HANDLER_SYMBOL)
        return None

    def inject_library(
        self, image: ProcessImage, library: SelfImage, base: int | None = None
    ) -> int:
        """Insert ``library`` into one process image; returns its base.

        The library's pages are added as anonymous dumped pages (they
        did not come from a file mapping of the target) and its dynamic
        relocations are resolved against the modules the target already
        maps — exactly how the paper loads the handler library and
        performs its GOT/PLT relocations against the runtime libc base.
        """
        faults.trip("rewriter.inject_library", detail=f"pid={image.pid}")
        span = page_align(max(seg.end for seg in library.segments))
        if base is None:
            base = self._find_free_base(image, span)
        exports = self._target_exports(image)
        for seg in library.segments:
            content = bytearray(seg.data)
            content += b"\x00" * (seg.memsize - len(seg.data))
            self._apply_relocs(library, seg.vaddr, content, base, exports)
            vaddr = base + seg.vaddr
            memsize = page_align(max(seg.memsize, 1))
            image.add_pages(vaddr, bytes(content))
            image.mm.vmas.append(
                VmaEntry(vaddr, vaddr + memsize, seg.perms, "", 0,
                         f"dynacut:{seg.name}")
            )
        image.mm.vmas.sort(key=lambda v: v.start)
        self.stats.libraries_injected += 1
        cost = self.cost_model.library_injection_cost()
        self.stats.inject_ns += cost
        self.kernel.clock_ns += cost
        return base

    def _find_free_base(self, image: ProcessImage, span: int) -> int:
        base = _INJECT_HINT
        while any(
            vma.start < base + span and base < vma.end for vma in image.mm.vmas
        ):
            base += _INJECT_STRIDE
        return base

    def _target_exports(self, image: ProcessImage) -> dict[str, int]:
        """Exported symbols of every module the target maps, absolute."""
        exports: dict[str, int] = {}
        seen: set[str] = set()
        for vma in image.mm.vmas:
            if not vma.file_path or vma.file_path in seen:
                continue
            seen.add(vma.file_path)
            module_image = self.kernel.binaries.get(vma.file_path)
            if module_image is None:
                continue
            module_base = vma.start - vma.file_offset
            for name, info in module_image.exports().items():
                exports.setdefault(name, module_base + info.vaddr)
        return exports

    def _apply_relocs(
        self,
        library: SelfImage,
        seg_vaddr: int,
        content: bytearray,
        base: int,
        exports: dict[str, int],
    ) -> None:
        seg_end = seg_vaddr + len(content)
        for reloc in library.dynamic_relocs:
            if not seg_vaddr <= reloc.vaddr < seg_end:
                continue
            if reloc.type is DynRelocType.RELATIVE:
                value = base + reloc.addend
            else:
                target = exports.get(reloc.symbol)
                if target is None:
                    raise RewriteError(
                        f"cannot resolve {reloc.symbol!r} for injected library: "
                        "target process does not map a module exporting it"
                    )
                value = target + reloc.addend
            offset = reloc.vaddr - seg_vaddr
            content[offset:offset + 8] = (value & ((1 << 64) - 1)).to_bytes(
                8, "little"
            )

    # ------------------------------------------------------------------

    def install_trap_handler(
        self,
        policy: int,
        redirect_entries: list[tuple[int, int]] | None = None,
        orig_entries: list[tuple[int, int]] | None = None,
        library: SelfImage | None = None,
    ) -> list[HandlerPlacement]:
        """Install (or reconfigure) the SIGTRAP handler in every process.

        ``redirect_entries`` are absolute (trap address, target address)
        pairs; ``orig_entries`` absolute (address, original byte) pairs
        for the verify policy.  Re-uses an already-injected library when
        the image has one.
        """
        if library is None:
            libc = self.kernel.binaries.get("libc.so")
            if libc is None:
                raise RewriteError("libc.so not registered; cannot build handler")
            library = sighandler.build_handler_library(libc)
        redirect_entries = redirect_entries or []
        orig_entries = orig_entries or []
        if len(redirect_entries) > REDIRECT_CAPACITY:
            raise RewriteError(
                f"too many redirect entries ({len(redirect_entries)} > "
                f"{REDIRECT_CAPACITY})"
            )
        if len(orig_entries) > ORIG_CAPACITY:
            raise RewriteError(
                f"too many original-byte entries ({len(orig_entries)} > "
                f"{ORIG_CAPACITY})"
            )

        placements = []
        self.policies_installed.add(policy)
        for image in self.checkpoint.processes:
            base = self.existing_handler_base(image, library)
            if base is None:
                base = self.inject_library(image, library)
            self._configure_handler(
                image, library, base, policy, redirect_entries, orig_entries
            )
            self._set_sigtrap(image, library, base)
            placements.append(HandlerPlacement(image.pid, base))
        return placements

    def _configure_handler(
        self,
        image: ProcessImage,
        library: SelfImage,
        base: int,
        policy: int,
        redirect_entries: list[tuple[int, int]],
        orig_entries: list[tuple[int, int]],
    ) -> None:
        def write_u64(symbol: str, index: int, value: int) -> None:
            address = base + library.symbol_address(symbol) + 8 * index
            image.write_memory(address, value.to_bytes(8, "little"))

        write_u64(sighandler.POLICY_SYMBOL, 0, policy)
        write_u64(sighandler.REDIRECT_COUNT_SYMBOL, 0, len(redirect_entries))
        for index, (trap, target) in enumerate(redirect_entries):
            write_u64(sighandler.REDIRECT_TABLE_SYMBOL, 2 * index, trap)
            write_u64(sighandler.REDIRECT_TABLE_SYMBOL, 2 * index + 1, target)
        write_u64(sighandler.ORIG_COUNT_SYMBOL, 0, len(orig_entries))
        for index, (address, byte) in enumerate(orig_entries):
            write_u64(sighandler.ORIG_TABLE_SYMBOL, 2 * index, address)
            write_u64(sighandler.ORIG_TABLE_SYMBOL, 2 * index + 1, byte)
        write_u64(sighandler.LOG_COUNT_SYMBOL, 0, 0)

    def reset_trap_log(self, library: SelfImage | None = None) -> int:
        """Zero the verifier's trap log in every process with a handler.

        The shelve path uses this after durably restoring trapped
        blocks: their log entries are consumed, and the next drift scan
        must observe only traps that happen *after* the shelve commit.
        Unlike :meth:`install_trap_handler` this touches nothing else —
        the policy, redirect and original-byte tables stay valid for
        the blocks that remain patched.  Returns the number of process
        images whose log was cleared.
        """
        if library is None:
            libc = self.kernel.binaries.get("libc.so")
            if libc is None:
                raise RewriteError("libc.so not registered; cannot build handler")
            library = sighandler.build_handler_library(libc)
        cleared = 0
        for image in self.checkpoint.processes:
            base = self.existing_handler_base(image, library)
            if base is None:
                continue
            address = base + library.symbol_address(
                sighandler.LOG_COUNT_SYMBOL
            )
            image.write_memory(address, (0).to_bytes(8, "little"))
            cleared += 1
        self.kernel.clock_ns += self.cost_model.set_sigaction_ns
        return cleared

    def _set_sigtrap(
        self, image: ProcessImage, library: SelfImage, base: int
    ) -> None:
        handler = base + library.symbol_address(HANDLER_SYMBOL)
        restorer = base + library.symbol_address(RESTORER_SYMBOL)
        sig = int(Signal.SIGTRAP)
        for entry in image.core.sigactions:
            if entry.signal == sig:
                entry.handler = handler
                entry.restorer = restorer
                break
        else:
            from ..criu.images import SigactionEntry

            image.core.sigactions.append(SigactionEntry(sig, handler, restorer))
        self.kernel.clock_ns += self.cost_model.set_sigaction_ns
