"""Automatic initialization/serving transition detection (§5).

The paper's profiling is semi-automatic: a human watches the server's
log and nudges the tracer when initialization looks finished.  Its
discussion proposes monitoring "specific system calls to determine the
end of the initialization phase, making DynaCut fully automatic".

For servers the signal is crisp: initialization ends the first time
the process *waits for a client* — the first ``accept``/``poll`` after
a ``listen``.  That is exactly the boundary the manual analyses in
prior work picked (Nginx's ``ngx_worker_process_cycle``, Lighttpd's
``server_main_loop``).  :class:`AutoNudgeTracer` watches the traced
process's syscalls and dumps the init-phase coverage at that moment,
no human in the loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..kernel.syscalls import Sys
from ..tracing.drcov import CoverageTrace
from ..tracing.tracer import BlockTracer

if TYPE_CHECKING:
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process

#: syscalls that mean "the server is now waiting for clients"
DEFAULT_TRANSITION_SYSCALLS = frozenset({int(Sys.ACCEPT), int(Sys.POLL)})


class AutoNudgeTracer(BlockTracer):
    """A block tracer that nudges itself at the init/serving boundary.

    After the traced process has issued ``listen``, the first
    transition syscall (``accept`` or ``poll`` by default) dumps the
    coverage collected so far into :attr:`init_trace` and starts the
    serving-phase trace — the automated equivalent of the operator
    watching for the ready line.
    """

    def __init__(
        self,
        kernel: "Kernel",
        proc: "Process",
        transition_syscalls: frozenset[int] = DEFAULT_TRANSITION_SYSCALLS,
    ):
        super().__init__(kernel, proc)
        self.transition_syscalls = transition_syscalls
        self.init_trace: CoverageTrace | None = None
        self._listening = False

    @property
    def transitioned(self) -> bool:
        return self.init_trace is not None

    def on_syscall(self, proc: "Process", number: int) -> None:
        super().on_syscall(proc, number)
        if number == int(Sys.LISTEN):
            self._listening = True
            return
        # accept implies a listening socket even when it was inherited
        # from a forking master (the Nginx worker case); poll is only a
        # transition once this process is known to be a server
        waiting_for_clients = number == int(Sys.ACCEPT) or (
            self._listening and number in self.transition_syscalls
        )
        if (
            self.init_trace is None
            and waiting_for_clients
            and number in self.transition_syscalls
        ):
            # the boundary syscall itself belongs to the serving phase
            self.trace.syscalls.discard(number)
            self.init_trace = self.nudge_dump(quiesce=False)
            self.trace.syscalls.add(number)


def autodetect_init_phase(
    kernel: "Kernel",
    proc: "Process",
    max_instructions: int = 10_000_000,
) -> tuple[AutoNudgeTracer, CoverageTrace]:
    """Run ``proc`` until its init/serving transition; return the tracer
    (still attached, now collecting the serving phase) and the init trace.
    """
    tracer = AutoNudgeTracer(kernel, proc)
    tracer.attach()
    kernel.run_until(
        lambda: tracer.transitioned, max_instructions=max_instructions
    )
    if tracer.init_trace is None:
        tracer.detach()
        raise RuntimeError(
            f"pid {proc.pid} never reached a listen→accept/poll transition"
        )
    return tracer, tracer.init_trace
