"""tracediff — diff-based feature-related basic-block discovery.

The reproduction of the paper's ``tracediff.py`` tool (Figure 4): given
execution traces of *wanted* requests and traces of an *undesired*
feature, the feature's unique code is::

    blk ∈ CovG_undesired  and  blk ∉ CovG_wanted

narrowed down by filtering out basic blocks that live in program
libraries (libc et al.), since feature-specific logic lives in the
application binary while library code is shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..tracing.drcov import BlockRecord, CoverageTrace
from .covgraph import CoverageGraph

#: module names treated as shared libraries by default
DEFAULT_LIBRARY_SUFFIXES = (".so",)


@dataclass(frozen=True)
class FeatureBlocks:
    """The discovered code of one feature.

    ``blocks`` is in first-execution order within the undesired traces,
    so ``blocks[0]`` is "the first basic block executed" — the one
    whose first byte DynaCut replaces with ``int3`` in the default
    blocking mode.
    """

    name: str
    module: str
    blocks: tuple[BlockRecord, ...]

    @property
    def entry(self) -> BlockRecord:
        if not self.blocks:
            raise ValueError(f"feature {self.name!r} has no unique blocks")
        return self.blocks[0]

    @property
    def count(self) -> int:
        return len(self.blocks)

    def total_size(self) -> int:
        return sum(block.size for block in self.blocks)


@dataclass
class TraceDiff:
    """Configurable trace differ (the ``tracediff.py`` CLI object)."""

    target_module: str
    library_suffixes: tuple[str, ...] = DEFAULT_LIBRARY_SUFFIXES
    extra_excluded_modules: set[str] = field(default_factory=set)

    def _is_library(self, module: str) -> bool:
        if module in self.extra_excluded_modules:
            return True
        return any(module.endswith(suffix) for suffix in self.library_suffixes)

    def feature_blocks(
        self,
        name: str,
        wanted: list[CoverageTrace],
        undesired: list[CoverageTrace],
    ) -> FeatureBlocks:
        """Identify blocks unique to the undesired feature.

        ``wanted`` and ``undesired`` each accept multiple trace logs
        (single merged files and per-request logs both work, matching
        the paper's trace collector).

        The diff is **byte-granular**: dynamic sub-blocks can overlap
        between traces (a branch enters the middle of a known block),
        so a feature block is kept only while its bytes are untouched
        by the wanted coverage — each block is trimmed to its unique
        prefix and dropped entirely when its entry byte is shared.
        """
        if self._is_library(self.target_module):
            return FeatureBlocks(name, self.target_module, ())
        wanted_graph = CoverageGraph.from_traces(*wanted)
        undesired_graph = CoverageGraph.from_traces(*undesired)
        wanted_bytes = wanted_graph.covered_bytes(self.target_module)

        trimmed: list[BlockRecord] = []
        seen: set[BlockRecord] = set()
        for record in undesired_graph.order:
            if record.module != self.target_module:
                continue
            if record.offset in wanted_bytes:
                continue  # entry byte is shared with wanted code
            size = 0
            while size < record.size and record.offset + size not in wanted_bytes:
                size += 1
            unique = BlockRecord(record.module, record.offset, size)
            if unique not in seen:
                seen.add(unique)
                trimmed.append(unique)
        return FeatureBlocks(name, self.target_module, tuple(trimmed))


def tracediff(
    name: str,
    wanted: list[CoverageTrace],
    undesired: list[CoverageTrace],
    target_module: str,
) -> FeatureBlocks:
    """One-shot helper mirroring ``tracediff.py <wanted> <undesired>``."""
    return TraceDiff(target_module).feature_blocks(name, wanted, undesired)
