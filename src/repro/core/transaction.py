"""Journaled-transaction support for :meth:`DynaCut.customize`.

A customize session is a transaction over two resources: the live
process tree (destroyed by the dump, recreated by the restore) and the
on-disk image directory.  The journal records which phase each attempt
reached so an operator — or a recovery tool reading the image
directory after a crash — can tell exactly how far the rewrite got:

* ``begin``          attempt started, tree still running
* ``checkpointed``   tree dumped (and destroyed); working images on disk
* ``pristine-saved`` pristine copy durable under ``<image_dir>/pristine/``
* ``rewritten``      in-memory images mutated by the session's actions
* ``saved``          rewritten images overwrote the working directory
* ``linted``         DynaLint accepted the rewritten image
* ``restored``       rewritten tree is live again
* ``committed``      transaction done; report appended to history
* ``rolled-back``    pristine tree restored after a failure
* ``retrying``       transient fault; backing off before the next attempt

Journal appends are modelled as atomic (a single sector write, the
standard write-ahead-logging assumption), so they are shielded from
fs-level fault injection; everything else in the pipeline is fair game.

On any mid-transaction failure the engine restores the *in-memory*
pristine checkpoint.  The on-disk layout guarantees a pristine copy
also exists at all times: the working directory holds pristine images
from ``checkpointed`` until ``saved`` overwrites them, and the
``pristine/`` subdirectory is durable from ``pristine-saved`` on —
the ``saved`` phase is only entered after ``pristine-saved``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import faults, telemetry
from ..telemetry import trace
from .rewriter import RewriteError

PHASE_BEGIN = "begin"
PHASE_CHECKPOINTED = "checkpointed"
PHASE_PRISTINE_SAVED = "pristine-saved"
PHASE_REWRITTEN = "rewritten"
PHASE_SAVED = "saved"
PHASE_LINTED = "linted"
PHASE_RESTORED = "restored"
PHASE_COMMITTED = "committed"
PHASE_ROLLED_BACK = "rolled-back"
PHASE_RETRYING = "retrying"

#: phase order within one attempt (terminal phases excluded)
ATTEMPT_PHASES = (
    PHASE_BEGIN,
    PHASE_CHECKPOINTED,
    PHASE_PRISTINE_SAVED,
    PHASE_REWRITTEN,
    PHASE_SAVED,
    PHASE_LINTED,
    PHASE_RESTORED,
)

JOURNAL_FILE = "journal.txt"


class CustomizationAborted(RewriteError):
    """A customize transaction rolled back instead of committing.

    Subclasses :class:`RewriteError` so callers that treated any
    rewrite failure as fatal keep working; carries the rolled-back
    :class:`~repro.core.dynacut.RewriteReport` for the ones that want
    the outcome breakdown.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class RollbackFailed(RewriteError):
    """Rollback itself could not restore the pristine tree.

    Only reachable when faults are armed to keep firing through the
    rollback path's own retries — the service is genuinely down.
    """


@dataclass(frozen=True)
class JournalEntry:
    phase: str
    attempt: int
    clock_ns: int
    note: str = ""

    def line(self) -> str:
        return f"{self.attempt}\t{self.phase}\t{self.clock_ns}\t{self.note}"

    @classmethod
    def parse(cls, line: str) -> "JournalEntry":
        attempt, phase, clock_ns, note = line.split("\t", 3)
        return cls(phase, int(attempt), int(clock_ns), note)


@dataclass
class TxJournal:
    """The per-session transaction journal, persisted in the kernel fs."""

    fs: object
    image_dir: str
    #: what opened this transaction: "customize" for a full-feature
    #: session, "shelve"/"decay" for the block-granular DynaShelve ops
    op: str = "customize"
    entries: list[JournalEntry] = field(default_factory=list)

    @property
    def path(self) -> str:
        return f"{self.image_dir.rstrip('/')}/{JOURNAL_FILE}"

    def record(
        self, phase: str, attempt: int, clock_ns: int, note: str = ""
    ) -> None:
        if phase == PHASE_BEGIN and self.op != "customize" and not note:
            note = f"op={self.op}"
        self.entries.append(JournalEntry(phase, attempt, clock_ns, note))
        context = trace.current()
        extra: dict[str, object] = (
            {"trace_id": context.trace_id} if context is not None else {}
        )
        telemetry.emit(
            "journal", phase, clock_ns=clock_ns, attempt=attempt, note=note,
            op=self.op, **extra,
        )
        telemetry.count("journal_phase_total", phase=phase)
        # journal appends are modelled atomic; see module docstring
        with faults.shielded():
            self.fs.write_file(self.path, self.serialize())

    def serialize(self) -> str:
        return "".join(entry.line() + "\n" for entry in self.entries)

    @property
    def phase(self) -> str | None:
        """The last phase reached (None before ``begin``)."""
        return self.entries[-1].phase if self.entries else None

    @property
    def attempts(self) -> int:
        return max((entry.attempt for entry in self.entries), default=0)

    def phases(self, attempt: int | None = None) -> list[str]:
        return [
            entry.phase
            for entry in self.entries
            if attempt is None or entry.attempt == attempt
        ]

    @classmethod
    def load(cls, fs, image_dir: str) -> "TxJournal":
        journal = cls(fs, image_dir)
        raw = fs.read_file(journal.path).decode("utf-8")
        journal.entries = [
            JournalEntry.parse(line) for line in raw.splitlines() if line
        ]
        return journal
