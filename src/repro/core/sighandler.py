"""The injectable SIGTRAP handler library.

DynaCut loads a position-independent shared library into the *image* of
the target process (not via the guest's dlopen — the process never
cooperates) and points the SIGTRAP sigaction at it.  The library
implements the paper's three trap policies:

* **terminate** — ``exit()`` like prior debloating work;
* **redirect** — look the trap address up in a redirect table and
  rewrite the saved instruction pointer in the sigframe, so on signal
  return the application jumps to its own error handler (e.g. the
  403-Forbidden arm of the dispatcher);
* **verify** — the feature-validation mode: restore the original first
  byte over the ``int3`` (via ``mprotect``), log the address in an
  in-library ring buffer, and re-execute — falsely-removed blocks heal
  themselves and are reported instead of crashing the program.

The redirect/original-byte tables live in the library's data section;
the rewriter fills them in after placing the library, by patching the
checkpoint image at the exported symbols' addresses.

As in the paper, the library carries its **own** ``rt_sigreturn``
restorer (``__dynacut_restore``) rather than borrowing the
application's.
"""

from __future__ import annotations

from ..binfmt.linker import link_shared
from ..binfmt.self_format import SelfImage
from ..isa.assembler import assemble
from ..minic.codegen import compile_source

HANDLER_LIB_NAME = "dynacut_handler.so"

#: exported entry points / data symbols the rewriter patches
HANDLER_SYMBOL = "dynacut_handler"
RESTORER_SYMBOL = "__dynacut_restore"
POLICY_SYMBOL = "dynacut_policy"
REDIRECT_COUNT_SYMBOL = "dynacut_table_count"
REDIRECT_TABLE_SYMBOL = "dynacut_redirect_table"
ORIG_COUNT_SYMBOL = "dynacut_orig_count"
ORIG_TABLE_SYMBOL = "dynacut_orig_table"
LOG_COUNT_SYMBOL = "dynacut_log_count"
LOG_TABLE_SYMBOL = "dynacut_log"

#: table capacities (entries); each entry is a (u64, u64) pair
REDIRECT_CAPACITY = 64
ORIG_CAPACITY = 128
LOG_CAPACITY = 64

POLICY_TERMINATE = 0
POLICY_REDIRECT = 1
POLICY_VERIFY = 2

_HANDLER_SOURCE = r"""
extern func exit;
extern func mprotect;

var dynacut_policy = 0;
var dynacut_table_count = 0;
var dynacut_redirect_table[1024];    // 64 (trap, target) u64 pairs
var dynacut_orig_count = 0;
var dynacut_orig_table[2048];        // 128 (addr, byte) u64 pairs
var dynacut_log_count = 0;
var dynacut_log[512];                // 64 trap addresses observed

// sig = signal number, frame = sigframe address (saved rip at offset 0),
// fault = address of the int3 that trapped
func dynacut_handler(sig, frame, fault) {
    if (dynacut_log_count < 64) {
        store64(dynacut_log + 8 * dynacut_log_count, fault);
        dynacut_log_count = dynacut_log_count + 1;
    }

    if (dynacut_policy == 1) {          // redirect to the app error handler
        var i = 0;
        while (i < dynacut_table_count) {
            if (load64(dynacut_redirect_table + 16 * i) == fault) {
                store64(frame, load64(dynacut_redirect_table + 16 * i + 8));
                return 0;
            }
            i = i + 1;
        }
        exit(139);
        return 0;
    }

    if (dynacut_policy == 2) {          // verify: restore and re-execute
        var i = 0;
        while (i < dynacut_orig_count) {
            if (load64(dynacut_orig_table + 16 * i) == fault) {
                var page = fault / 4096 * 4096;
                mprotect(page, 4096, 7);               // rwx
                store8(fault, load64(dynacut_orig_table + 16 * i + 8));
                mprotect(page, 4096, 5);               // r-x
                store64(frame, fault);                 // re-run restored insn
                return 0;
            }
            i = i + 1;
        }
        exit(139);
        return 0;
    }

    exit(139);                          // terminate policy / unknown trap
    return 0;
}
"""

_RESTORER_ASM = """
.section text
.global __dynacut_restore
__dynacut_restore:
    mov r1, sp
    movi r0, 17        ; SYS_SIGRETURN
    syscall
    int3
"""


_CACHE: dict[int, SelfImage] = {}


def build_handler_library(libc: SelfImage) -> SelfImage:
    """Compile and link the handler library against ``libc``'s exports.

    The result is position independent; its GOT entries become
    GLOB_DAT dynamic relocations the injector resolves against the
    *target process's* libc mapping — the paper's PLT-relocation step.
    """
    cached = _CACHE.get(id(libc))
    if cached is not None:
        return cached
    handler_module = compile_source(_HANDLER_SOURCE, "dynacut_handler.o", entry=False)
    restorer_module = assemble(_RESTORER_ASM, "dynacut_restore.o")
    library = link_shared(
        [handler_module, restorer_module], HANDLER_LIB_NAME, libraries=[libc]
    )
    _CACHE[id(libc)] = library
    return library
