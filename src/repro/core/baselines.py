"""Static-debloating baselines: RAZOR-like and CHISEL-like.

Figure 10 compares DynaCut's live-block count over time against two
static, one-shot debloaters.  We implement trace-driven analogues:

* **CHISEL-like** — aggressive: keeps exactly the traced blocks (the
  reinforcement-learned minimal program, approximated by its trace
  floor).  Smallest kept set, highest risk of breaking needed code.
* **RAZOR-like** — conservative: keeps traced blocks *plus* related
  untraced code inferred from the CFG (RAZOR's heuristic path
  inference), approximated by expanding N edges outward from the
  traced set.

Both produce (a) a live-block fraction that is **constant over the
process lifetime** — the structural property DynaCut beats — and (b)
an actually debloated binary (removed blocks filled with ``int3``)
that can be executed to observe static-debloating behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..analysis.cfg import ControlFlowGraph, build_cfg
from ..binfmt.self_format import SelfImage
from ..isa.instructions import INT3_OPCODE
from ..tracing.drcov import CoverageTrace
from .covgraph import CoverageGraph


@dataclass(frozen=True)
class DebloatResult:
    """Outcome of a static debloating pass over one binary."""

    tool: str
    module: str
    total_blocks: int
    kept_starts: frozenset[int]
    removed_starts: frozenset[int]

    @property
    def kept_count(self) -> int:
        return len(self.kept_starts)

    @property
    def removed_count(self) -> int:
        return len(self.removed_starts)

    @property
    def live_fraction(self) -> float:
        """Fraction of static blocks still reachable — flat over time."""
        if self.total_blocks == 0:
            return 0.0
        return self.kept_count / self.total_blocks

    @property
    def removed_fraction(self) -> float:
        return 1.0 - self.live_fraction


def _traced_starts(traces: list[CoverageTrace], module: str) -> set[int]:
    graph = CoverageGraph.from_traces(*traces).restrict_to_module(module)
    return {record.offset for record in graph.blocks}


def chisel_debloat(
    image: SelfImage, traces: list[CoverageTrace]
) -> DebloatResult:
    """CHISEL-like: keep exactly the traced blocks."""
    cfg = build_cfg(image)
    traced = _traced_starts(traces, image.name)
    all_starts = cfg.block_starts()
    kept = all_starts & traced
    return DebloatResult(
        tool="chisel",
        module=image.name,
        total_blocks=cfg.block_count,
        kept_starts=frozenset(kept),
        removed_starts=frozenset(all_starts - kept),
    )


def razor_debloat(
    image: SelfImage,
    traces: list[CoverageTrace],
    expansion: int = 1,
) -> DebloatResult:
    """RAZOR-like: traced blocks plus ``expansion`` hops of CFG context."""
    cfg = build_cfg(image)
    traced = _traced_starts(traces, image.name)
    all_starts = cfg.block_starts()
    kept = set(all_starts & traced)
    frontier = set(kept)
    for __ in range(expansion):
        grown: set[int] = set()
        for start in frontier:
            for successor in cfg.edges.get(start, ()):
                if successor in all_starts and successor not in kept:
                    grown.add(successor)
        kept |= grown
        frontier = grown
        if not frontier:
            break
    return DebloatResult(
        tool="razor",
        module=image.name,
        total_blocks=cfg.block_count,
        kept_starts=frozenset(kept),
        removed_starts=frozenset(all_starts - kept),
    )


def apply_debloat(
    image: SelfImage, result: DebloatResult, cfg: ControlFlowGraph | None = None
) -> SelfImage:
    """Produce the statically debloated binary (removed blocks int3'd).

    This is the one-shot rewrite RAZOR/CHISEL perform: the output binary
    permanently lacks the removed code — running a removed feature
    traps, and there is no dynamic path back.
    """
    if cfg is None:
        cfg = build_cfg(image)
    blocks_by_start = {block.start: block for block in cfg.blocks}
    new_segments = []
    for seg in image.segments:
        if seg.name not in ("text", "plt"):
            new_segments.append(seg)
            continue
        data = bytearray(seg.data)
        for start in result.removed_starts:
            block = blocks_by_start.get(start)
            if block is None:
                continue
            if seg.vaddr <= block.start < seg.vaddr + len(data):
                offset = block.start - seg.vaddr
                data[offset:offset + block.size] = bytes(
                    [INT3_OPCODE]
                ) * block.size
            # blocks outside this segment belong to the other code segment
        new_segments.append(replace(seg, data=bytes(data)))
    debloated = SelfImage(
        name=image.name,
        kind=image.kind,
        base=image.base,
        entry=image.entry,
        segments=new_segments,
        symbols=dict(image.symbols),
        dynamic_relocs=list(image.dynamic_relocs),
        plt_entries=dict(image.plt_entries),
        got_entries=dict(image.got_entries),
        needed=list(image.needed),
    )
    return debloated
