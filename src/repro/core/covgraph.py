"""Code coverage graphs (the paper's ``CovG``).

A coverage graph is the set of executed basic blocks built from one or
more drcov traces.  DynaCut's identification rules are set algebra
over these graphs:

* feature-related blocks: ``blk ∈ CovG_undesired ∧ blk ∉ CovG_wanted``;
* init-only blocks: ``blk ∈ CovG_init ∧ blk ∉ CovG_serving``.

The graph also keeps each block's first-execution order so "the first
basic block executed" of a feature is well defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..tracing.drcov import BlockRecord, CoverageTrace


@dataclass
class CoverageGraph:
    """A set of covered blocks with first-seen ordering."""

    blocks: set[BlockRecord] = field(default_factory=set)
    order: list[BlockRecord] = field(default_factory=list)

    @classmethod
    def from_traces(cls, *traces: CoverageTrace) -> "CoverageGraph":
        """Build a graph from one or more (merged) trace logs."""
        graph = cls()
        for trace in traces:
            for record in trace.order:
                graph.add(record)
        return graph

    def add(self, record: BlockRecord) -> bool:
        if record in self.blocks:
            return False
        self.blocks.add(record)
        self.order.append(record)
        return True

    def __contains__(self, record: BlockRecord) -> bool:
        return record in self.blocks

    def __len__(self) -> int:
        return len(self.blocks)

    # ------------------------------------------------------------------
    # set algebra

    def difference(self, other: "CoverageGraph") -> "CoverageGraph":
        """Blocks in self but not in ``other``, keeping self's order."""
        result = CoverageGraph()
        for record in self.order:
            if record not in other.blocks:
                result.add(record)
        return result

    def union(self, other: "CoverageGraph") -> "CoverageGraph":
        result = CoverageGraph()
        for record in self.order:
            result.add(record)
        for record in other.order:
            result.add(record)
        return result

    def intersection(self, other: "CoverageGraph") -> "CoverageGraph":
        result = CoverageGraph()
        for record in self.order:
            if record in other.blocks:
                result.add(record)
        return result

    # ------------------------------------------------------------------
    # filters

    def restrict_to_module(self, module: str) -> "CoverageGraph":
        """Keep only blocks of ``module`` (drop libraries etc.)."""
        result = CoverageGraph()
        for record in self.order:
            if record.module == module:
                result.add(record)
        return result

    def without_modules(self, names: set[str]) -> "CoverageGraph":
        """Drop blocks of the named modules (the libc filter)."""
        result = CoverageGraph()
        for record in self.order:
            if record.module not in names:
                result.add(record)
        return result

    def modules(self) -> list[str]:
        return sorted({record.module for record in self.blocks})

    def total_size(self) -> int:
        """Total bytes of covered code."""
        return sum(record.size for record in self.blocks)

    # ------------------------------------------------------------------
    # byte-granular coverage

    def covered_bytes(self, module: str) -> set[int]:
        """Every covered byte offset of ``module``.

        Dynamic tracing records entry-point-sensitive sub-blocks: the
        same code bytes can appear as different ``(start, size)``
        records in different phases (a branch enters the middle of a
        previously seen block).  Byte-level coverage is the identity
        that set differences must be computed over to be sound.
        """
        covered: set[int] = set()
        for record in self.blocks:
            if record.module == module:
                covered.update(range(record.offset, record.offset + record.size))
        return covered


def bytes_to_ranges(offsets: set[int]) -> list[tuple[int, int]]:
    """Collapse a byte set into sorted, maximal (start, size) ranges."""
    if not offsets:
        return []
    ordered = sorted(offsets)
    ranges: list[tuple[int, int]] = []
    start = previous = ordered[0]
    for value in ordered[1:]:
        if value == previous + 1:
            previous = value
            continue
        ranges.append((start, previous - start + 1))
        start = previous = value
    ranges.append((start, previous - start + 1))
    return ranges
